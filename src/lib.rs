//! # gridq — Adaptive Grid Query Processing
//!
//! A Rust reproduction of *"Adapting to Changing Resource Performance in
//! Grid Query Processing"* (Gounaris, Smith, Paton, Sakellariou, Fernandes,
//! Watson; VLDB DMG Workshop 2005): a distributed query processor whose
//! partitioned (intra-operator parallel) plans rebalance their tuple
//! workload at run time in response to changing node performance, for both
//! stateless and stateful operators.
//!
//! This umbrella crate re-exports the workspace crates:
//!
//! - [`common`] — ids, values, schemas, tuples, virtual time, RNG, stats.
//! - [`engine`] — iterator-model operators and plan representations.
//! - [`sql`] — a mini SQL front end for the paper's query class.
//! - [`recovery`] — checkpoint/acknowledgement recovery logs (the substrate
//!   for retrospective repartitioning).
//! - [`grid`] — Grid resource models: nodes, network, perturbations.
//! - [`adapt`] — the paper's contribution: monitoring events (M1/M2),
//!   `MonitoringEventDetector`, `Diagnoser` (A1/A2), `Responder` (R1/R2)
//!   wired over a publish/subscribe bus.
//! - [`sim`] — a deterministic discrete-event simulator that executes
//!   partitioned plans over the Grid models in virtual time.
//! - [`exec`] — a real multi-threaded executor running the same plans and
//!   the same adaptivity components against wall-clock time.
//! - [`obs`] — the observability layer: a shared metrics registry and the
//!   structured adaptivity timeline both substrates record into.
//! - [`workload`] — the paper's protein workloads (Q1/Q2) and experiment
//!   configurations.
//! - [`core`] — the `GridQueryProcessor` façade (GDQS equivalent):
//!   SQL → plan → schedule → adaptive execution.
//! - [`chaos`] — a deterministic fault-injection harness with invariant
//!   oracles (tuple/log conservation, recall safety, timeline causality,
//!   teardown hygiene) over both substrates.
//!
//! ## Quickstart
//!
//! ```
//! use gridq::core::{GridQueryProcessor, ExecutionOptions};
//! use gridq::workload::demo_catalog;
//!
//! let mut qp = GridQueryProcessor::with_demo_grid(2);
//! qp.register_catalog(demo_catalog(300, 470, 64, 42));
//! let report = qp
//!     .run_sql(
//!         "select EntropyAnalyser(p.sequence) from protein_sequences p",
//!         ExecutionOptions::default(),
//!     )
//!     .expect("query runs");
//! assert_eq!(report.tuples_output, 300);
//! ```

pub use gridq_adapt as adapt;
pub use gridq_chaos as chaos;
pub use gridq_common as common;
pub use gridq_core as core;
pub use gridq_engine as engine;
pub use gridq_exec as exec;
pub use gridq_grid as grid;
pub use gridq_obs as obs;
pub use gridq_recovery as recovery;
pub use gridq_sim as sim;
pub use gridq_sql as sql;
pub use gridq_workload as workload;
