//! Property-based tests on the simulator's end-to-end invariants:
//! whatever the perturbations and adaptivity policy, no tuple is ever
//! lost or duplicated, and execution is deterministic.

use std::sync::Arc;

use gridq_adapt::{AdaptivityConfig, AssessmentPolicy, ResponsePolicy};
use gridq_common::{
    DataType, DistributionVector, Field, NodeId, QueryId, Schema, SubplanId, Tuple, Value,
};
use gridq_engine::distributed::{
    DistributedPlan, ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
};
use gridq_engine::evaluator::{HashJoinFactory, ServiceCallFactory, StreamTag};
use gridq_engine::physical::Catalog;
use gridq_engine::service::{FnService, ServiceRegistry};
use gridq_engine::table::Table;
use gridq_engine::Expr;
use gridq_grid::{GridEnvironment, Perturbation};
use gridq_sim::{Simulation, SimulationConfig};
use proptest::prelude::*;

fn int_table(name: &str, values: &[i64]) -> Arc<Table> {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    let rows = values
        .iter()
        .map(|&v| Tuple::new(vec![Value::Int(v)]))
        .collect();
    Arc::new(Table::new(name, schema, rows).unwrap())
}

fn adaptivity(on: bool, retrospective: bool) -> AdaptivityConfig {
    if !on {
        AdaptivityConfig::disabled()
    } else if retrospective {
        AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R1)
    } else {
        AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R2)
    }
}

fn perturbation_strategy() -> impl Strategy<Value = Perturbation> {
    prop_oneof![
        Just(Perturbation::None),
        (2.0f64..30.0).prop_map(Perturbation::CostFactor),
        (1.0f64..40.0).prop_map(Perturbation::SleepMs),
        (10.0f64..30.0).prop_map(|m| Perturbation::NormalFactor {
            mean: m,
            lo: 1.0,
            hi: m * 2.0 - 1.0,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A service-call plan emits exactly one output per input tuple,
    /// under every perturbation and adaptivity policy, with correct
    /// values.
    #[test]
    fn call_plan_conserves_tuples(
        n in 20usize..300,
        parts in 2usize..4,
        pert in perturbation_strategy(),
        retrospective in proptest::bool::ANY,
        buffer in 1usize..40,
    ) {
        let values: Vec<i64> = (0..n as i64).collect();
        let table = int_table("t", &values);
        let factory = ServiceCallFactory::new(
            table.schema(),
            Arc::new(FnService::new(
                "Neg",
                vec![DataType::Int],
                DataType::Int,
                1.0,
                |args| Ok(Value::Int(-args[0].as_int().unwrap())),
            )),
            vec![Expr::col(0)],
            "neg",
            false,
            ServiceRegistry::new(),
        );
        let plan = DistributedPlan {
            query: QueryId::new(1),
            sources: vec![SourceSpec {
                table: "t".into(),
                node: NodeId::new(0),
                stream: StreamTag::Single,
                scan_cost_ms: 0.3,
            }],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: (0..parts).map(|i| NodeId::new(i as u32 + 1)).collect(),
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::Weighted {
                        initial: DistributionVector::uniform(parts),
                    },
                    buffer_tuples: buffer,
                },
            }],
            collect_node: NodeId::new(0),
        };
        let mut env = GridEnvironment::demo(parts);
        env.perturb(NodeId::new(parts as u32), pert);
        let mut catalog = Catalog::new();
        catalog.register(Arc::clone(&table));
        let config = SimulationConfig {
            adaptivity: adaptivity(true, retrospective),
            collect_results: true,
            receive_cost_ms: 0.5,
            ..Default::default()
        };
        let report = Simulation::new(env, catalog, config)
            .unwrap()
            .run(&plan)
            .unwrap();
        prop_assert_eq!(report.tuples_output as usize, n);
        let mut got: Vec<i64> = report
            .results
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        got.sort_unstable();
        let expect: Vec<i64> = (1 - n as i64..=0).collect();
        prop_assert_eq!(got, expect);
        prop_assert_eq!(
            report.per_partition_processed.iter().sum::<u64>() as usize,
            n
        );
    }

    /// A hash-join plan produces exactly the reference join result under
    /// perturbation and retrospective adaptation (state migration must
    /// not lose or duplicate matches).
    #[test]
    fn join_plan_matches_reference(
        build_keys in proptest::collection::vec(0i64..60, 5..80),
        probe_keys in proptest::collection::vec(0i64..80, 5..120),
        pert in perturbation_strategy(),
        adaptive in proptest::bool::ANY,
        buckets in 4u32..40,
    ) {
        let build = int_table("b", &build_keys);
        let probe = int_table("p", &probe_keys);
        let factory = HashJoinFactory::new(
            build.schema(),
            probe.schema(),
            0,
            0,
            0.2,
            1.5,
        );
        let plan = DistributedPlan {
            query: QueryId::new(2),
            sources: vec![
                SourceSpec {
                    table: "b".into(),
                    node: NodeId::new(0),
                    stream: StreamTag::Build,
                    scan_cost_ms: 0.2,
                },
                SourceSpec {
                    table: "p".into(),
                    node: NodeId::new(0),
                    stream: StreamTag::Probe,
                    scan_cost_ms: 0.2,
                },
            ],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: vec![NodeId::new(1), NodeId::new(2)],
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::HashBuckets {
                        bucket_count: buckets,
                        initial: DistributionVector::uniform(2),
                        keys: StreamKeys {
                            build: Some(0),
                            probe: Some(0),
                            single: None,
                        },
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        };
        let mut env = GridEnvironment::demo(2);
        env.perturb(NodeId::new(2), pert);
        let mut catalog = Catalog::new();
        catalog.register(Arc::clone(&build));
        catalog.register(Arc::clone(&probe));
        let config = SimulationConfig {
            adaptivity: adaptivity(adaptive, true),
            collect_results: true,
            receive_cost_ms: 0.5,
            ..Default::default()
        };
        let report = Simulation::new(env, catalog, config)
            .unwrap()
            .run(&plan)
            .unwrap();
        // Reference join (multiset of joined pairs).
        let mut expect: Vec<(i64, i64)> = Vec::new();
        for &p in &probe_keys {
            for &b in &build_keys {
                if b == p {
                    expect.push((b, p));
                }
            }
        }
        expect.sort_unstable();
        let mut got: Vec<(i64, i64)> = report
            .results
            .iter()
            .map(|t| {
                (
                    t.value(0).as_int().unwrap(),
                    t.value(1).as_int().unwrap(),
                )
            })
            .collect();
        got.sort_unstable();
        prop_assert_eq!(got, expect);
    }
}
