//! Property-based tests on the simulator's end-to-end invariants:
//! whatever the perturbations and adaptivity policy, no tuple is ever
//! lost or duplicated, and execution is deterministic.

use std::sync::Arc;

use gridq_adapt::{AdaptivityConfig, AssessmentPolicy, ResponsePolicy};
use gridq_common::check::{Check, Gen};
use gridq_common::{
    DataType, DetRng, DistributionVector, Field, NodeId, QueryId, Schema, SubplanId, Tuple, Value,
};
use gridq_engine::distributed::{
    DistributedPlan, ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
};
use gridq_engine::evaluator::{HashJoinFactory, ServiceCallFactory, StreamTag};
use gridq_engine::physical::Catalog;
use gridq_engine::service::{FnService, ServiceRegistry};
use gridq_engine::table::Table;
use gridq_engine::Expr;
use gridq_grid::{GridEnvironment, Perturbation};
use gridq_sim::{Simulation, SimulationConfig};

fn int_table(name: &str, values: &[i64]) -> Arc<Table> {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    let rows = values
        .iter()
        .map(|&v| Tuple::new(vec![Value::Int(v)]))
        .collect();
    Arc::new(Table::new(name, schema, rows).unwrap())
}

fn adaptivity(on: bool, retrospective: bool) -> AdaptivityConfig {
    if !on {
        AdaptivityConfig::disabled()
    } else if retrospective {
        AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R1)
    } else {
        AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R2)
    }
}

fn perturbation(rng: &mut DetRng) -> Perturbation {
    match rng.usize_in(0, 4) {
        0 => Perturbation::None,
        1 => Perturbation::CostFactor(rng.f64_in(2.0, 30.0)),
        2 => Perturbation::SleepMs(rng.f64_in(1.0, 40.0)),
        _ => {
            let m = rng.f64_in(10.0, 30.0);
            Perturbation::NormalFactor {
                mean: m,
                lo: 1.0,
                hi: m * 2.0 - 1.0,
            }
        }
    }
}

/// A service-call plan emits exactly one output per input tuple,
/// under every perturbation and adaptivity policy, with correct
/// values.
#[test]
fn call_plan_conserves_tuples() {
    Check::new("call plan conserves tuples").cases(24).run(
        |rng| {
            (
                rng.usize_in(20, 300),
                rng.usize_in(2, 4),
                perturbation(rng),
                rng.flip(),
                rng.usize_in(1, 40),
            )
        },
        |(n, parts, pert, retrospective, buffer)| {
            let (n, parts, buffer) = (*n, *parts, *buffer);
            let values: Vec<i64> = (0..n as i64).collect();
            let table = int_table("t", &values);
            let factory = ServiceCallFactory::new(
                table.schema(),
                Arc::new(FnService::new(
                    "Neg",
                    vec![DataType::Int],
                    DataType::Int,
                    1.0,
                    |args| Ok(Value::Int(-args[0].as_int().unwrap())),
                )),
                vec![Expr::col(0)],
                "neg",
                false,
                ServiceRegistry::new(),
            );
            let plan = DistributedPlan {
                query: QueryId::new(1),
                sources: vec![SourceSpec {
                    table: "t".into(),
                    node: NodeId::new(0),
                    stream: StreamTag::Single,
                    scan_cost_ms: 0.3,
                }],
                stages: vec![ParallelStageSpec {
                    id: SubplanId::new(1),
                    factory: Arc::new(factory),
                    nodes: (0..parts).map(|i| NodeId::new(i as u32 + 1)).collect(),
                    exchange: ExchangeSpec {
                        routing: RoutingPolicy::Weighted {
                            initial: DistributionVector::uniform(parts),
                        },
                        buffer_tuples: buffer,
                    },
                }],
                collect_node: NodeId::new(0),
            };
            let mut env = GridEnvironment::demo(parts);
            env.perturb(NodeId::new(parts as u32), pert.clone());
            let mut catalog = Catalog::new();
            catalog.register(Arc::clone(&table));
            let config = SimulationConfig {
                adaptivity: adaptivity(true, *retrospective),
                collect_results: true,
                receive_cost_ms: 0.5,
                ..Default::default()
            };
            let report = Simulation::new(env, catalog, config)
                .map_err(|e| e.to_string())?
                .run(&plan)
                .map_err(|e| e.to_string())?;
            if report.tuples_output as usize != n {
                return Err(format!("{} tuples out, expected {n}", report.tuples_output));
            }
            let mut got: Vec<i64> = report
                .results
                .iter()
                .map(|t| t.value(0).as_int().unwrap())
                .collect();
            got.sort_unstable();
            let expect: Vec<i64> = (1 - n as i64..=0).collect();
            if got != expect {
                return Err(format!("wrong values: {got:?}"));
            }
            let processed: u64 = report.per_partition_processed.iter().sum();
            if processed as usize != n {
                return Err(format!("{processed} processed, expected {n}"));
            }
            Ok(())
        },
    );
}

/// A hash-join plan produces exactly the reference join result under
/// perturbation and retrospective adaptation (state migration must
/// not lose or duplicate matches).
#[test]
fn join_plan_matches_reference() {
    Check::new("join plan matches reference").cases(24).run(
        |rng| {
            (
                rng.vec_of(5, 80, |r| r.i64_in(0, 60)),
                rng.vec_of(5, 120, |r| r.i64_in(0, 80)),
                perturbation(rng),
                rng.flip(),
                rng.u32_in(4, 40),
            )
        },
        |(build_keys, probe_keys, pert, adaptive, buckets)| {
            let build = int_table("b", build_keys);
            let probe = int_table("p", probe_keys);
            let factory = HashJoinFactory::new(build.schema(), probe.schema(), 0, 0, 0.2, 1.5);
            let plan = DistributedPlan {
                query: QueryId::new(2),
                sources: vec![
                    SourceSpec {
                        table: "b".into(),
                        node: NodeId::new(0),
                        stream: StreamTag::Build,
                        scan_cost_ms: 0.2,
                    },
                    SourceSpec {
                        table: "p".into(),
                        node: NodeId::new(0),
                        stream: StreamTag::Probe,
                        scan_cost_ms: 0.2,
                    },
                ],
                stages: vec![ParallelStageSpec {
                    id: SubplanId::new(1),
                    factory: Arc::new(factory),
                    nodes: vec![NodeId::new(1), NodeId::new(2)],
                    exchange: ExchangeSpec {
                        routing: RoutingPolicy::HashBuckets {
                            bucket_count: *buckets,
                            initial: DistributionVector::uniform(2),
                            keys: StreamKeys {
                                build: Some(0),
                                probe: Some(0),
                                single: None,
                            },
                        },
                        buffer_tuples: 10,
                    },
                }],
                collect_node: NodeId::new(0),
            };
            let mut env = GridEnvironment::demo(2);
            env.perturb(NodeId::new(2), pert.clone());
            let mut catalog = Catalog::new();
            catalog.register(Arc::clone(&build));
            catalog.register(Arc::clone(&probe));
            let config = SimulationConfig {
                adaptivity: adaptivity(*adaptive, true),
                collect_results: true,
                receive_cost_ms: 0.5,
                ..Default::default()
            };
            let report = Simulation::new(env, catalog, config)
                .map_err(|e| e.to_string())?
                .run(&plan)
                .map_err(|e| e.to_string())?;
            // Reference join (multiset of joined pairs).
            let mut expect: Vec<(i64, i64)> = Vec::new();
            for &p in probe_keys {
                for &b in build_keys {
                    if b == p {
                        expect.push((b, p));
                    }
                }
            }
            expect.sort_unstable();
            let mut got: Vec<(i64, i64)> = report
                .results
                .iter()
                .map(|t| (t.value(0).as_int().unwrap(), t.value(1).as_int().unwrap()))
                .collect();
            got.sort_unstable();
            if got != expect {
                return Err(format!(
                    "join mismatch: {} pairs got, {} expected",
                    got.len(),
                    expect.len()
                ));
            }
            Ok(())
        },
    );
}
