//! Delivery-robustness tests: data-plane loss and duplication heal
//! through recovery-log retransmission and consumer-side deduplication,
//! exhausted retry budgets degrade into explicit delivery gaps instead
//! of hangs, and node failures leave a paired NodeDown/Failover trace
//! in the adaptivity timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gridq_adapt::AdaptivityConfig;
use gridq_common::{
    ChaosHook, DataType, DistributionVector, Field, NetAction, NodeId, QueryId, Schema, SimTime,
    SubplanId, Tuple, Value,
};
use gridq_engine::distributed::{
    DistributedPlan, ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
};
use gridq_engine::evaluator::{HashJoinFactory, ServiceCallFactory, StreamTag};
use gridq_engine::physical::Catalog;
use gridq_engine::service::{FnService, ServiceRegistry};
use gridq_engine::table::Table;
use gridq_engine::Expr;
use gridq_grid::GridEnvironment;
use gridq_obs::TimelineKind;
use gridq_sim::{Simulation, SimulationConfig};

fn int_table(name: &str, n: usize) -> Arc<Table> {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    let rows = (0..n)
        .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
        .collect();
    Arc::new(Table::new(name, schema, rows).unwrap())
}

fn call_plan(table: &Arc<Table>, partitions: usize) -> DistributedPlan {
    let factory = ServiceCallFactory::new(
        table.schema(),
        Arc::new(FnService::new(
            "Square",
            vec![DataType::Int],
            DataType::Int,
            1.5,
            |args| Ok(Value::Int(args[0].as_int().unwrap().pow(2))),
        )),
        vec![Expr::col(0)],
        "sq",
        false,
        ServiceRegistry::new(),
    );
    DistributedPlan {
        query: QueryId::new(1),
        sources: vec![SourceSpec {
            table: table.name().to_string(),
            node: NodeId::new(0),
            stream: StreamTag::Single,
            scan_cost_ms: 0.5,
        }],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: (0..partitions).map(|i| NodeId::new(i as u32 + 1)).collect(),
            exchange: ExchangeSpec {
                routing: RoutingPolicy::Weighted {
                    initial: DistributionVector::uniform(partitions),
                },
                buffer_tuples: 10,
            },
        }],
        collect_node: NodeId::new(0),
    }
}

fn join_plan(build: &Arc<Table>, probe: &Arc<Table>, partitions: usize) -> DistributedPlan {
    let factory = HashJoinFactory::new(build.schema(), probe.schema(), 0, 0, 0.2, 1.5);
    DistributedPlan {
        query: QueryId::new(2),
        sources: vec![
            SourceSpec {
                table: build.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Build,
                scan_cost_ms: 0.3,
            },
            SourceSpec {
                table: probe.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Probe,
                scan_cost_ms: 0.3,
            },
        ],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: (0..partitions).map(|i| NodeId::new(i as u32 + 1)).collect(),
            exchange: ExchangeSpec {
                routing: RoutingPolicy::HashBuckets {
                    bucket_count: 32,
                    initial: DistributionVector::uniform(partitions),
                    keys: StreamKeys {
                        build: Some(0),
                        probe: Some(0),
                        single: None,
                    },
                },
                buffer_tuples: 10,
            },
        }],
        collect_node: NodeId::new(0),
    }
}

fn catalog(tables: &[&Arc<Table>]) -> Catalog {
    let mut c = Catalog::new();
    for t in tables {
        c.register(Arc::clone(t));
    }
    c
}

fn config(chaos: Option<Arc<dyn ChaosHook>>) -> SimulationConfig {
    SimulationConfig {
        adaptivity: AdaptivityConfig::disabled(),
        collect_results: true,
        receive_cost_ms: 0.5,
        checkpoint_interval: 8,
        chaos,
        ..Default::default()
    }
}

fn sorted_strs(tuples: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = tuples.iter().map(ToString::to_string).collect();
    v.sort();
    v
}

/// Drops the first `budget` data-plane buffers on every edge.
#[derive(Debug)]
struct DropFirst {
    budget: u64,
    dropped: AtomicU64,
}

impl ChaosHook for DropFirst {
    fn on_data(&self, _source: usize, _dest: usize) -> NetAction {
        if self.dropped.fetch_add(1, Ordering::Relaxed) < self.budget {
            NetAction::Drop
        } else {
            NetAction::Deliver
        }
    }
}

/// Duplicates every `nth` data-plane buffer.
#[derive(Debug)]
struct DupEvery {
    nth: u64,
    sent: AtomicU64,
}

impl ChaosHook for DupEvery {
    fn on_data(&self, _source: usize, _dest: usize) -> NetAction {
        if self
            .sent
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(self.nth)
        {
            NetAction::Duplicate
        } else {
            NetAction::Deliver
        }
    }
}

/// Severs one destination entirely: every data buffer addressed to it
/// is lost, initial deliveries and retransmissions alike.
#[derive(Debug)]
struct SeverDest(usize);

impl ChaosHook for SeverDest {
    fn on_data(&self, _source: usize, dest: usize) -> NetAction {
        if dest == self.0 {
            NetAction::Drop
        } else {
            NetAction::Deliver
        }
    }
}

#[test]
fn dropped_buffers_are_retransmitted_until_the_result_is_whole() {
    let table = int_table("t", 300);
    let plan = call_plan(&table, 2);
    let clean = Simulation::new(GridEnvironment::demo(2), catalog(&[&table]), config(None))
        .unwrap()
        .run(&plan)
        .unwrap();
    assert_eq!(clean.tuples_output, 300);

    let hook = Arc::new(DropFirst {
        budget: 6,
        dropped: AtomicU64::new(0),
    });
    let report = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&table]),
        config(Some(hook)),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    assert!(
        report.tuples_retransmitted > 0,
        "drops must trigger the retry loop: {:?}",
        report.timeline
    );
    assert!(
        report.delivery_gaps.is_empty(),
        "{:?}",
        report.delivery_gaps
    );
    assert_eq!(
        sorted_strs(&report.results),
        sorted_strs(&clean.results),
        "retransmission must restore the exact result multiset"
    );
    for audit in &report.log_audits {
        assert!(audit.conserved(), "log audit must balance: {audit:?}");
    }
}

#[test]
fn duplicated_buffers_are_absorbed_by_consumer_dedup() {
    let table = int_table("t", 300);
    let plan = call_plan(&table, 2);
    let clean = Simulation::new(GridEnvironment::demo(2), catalog(&[&table]), config(None))
        .unwrap()
        .run(&plan)
        .unwrap();

    let hook = Arc::new(DupEvery {
        nth: 3,
        sent: AtomicU64::new(0),
    });
    let report = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&table]),
        config(Some(hook)),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    assert_eq!(
        sorted_strs(&report.results),
        sorted_strs(&clean.results),
        "duplicated deliveries must not duplicate results: {:?}",
        report.timeline
    );
    assert!(report.delivery_gaps.is_empty());
    for audit in &report.log_audits {
        assert!(audit.conserved(), "log audit must balance: {audit:?}");
        assert!(
            audit.acks_duplicate > 0 || audit.acks_accepted > 0,
            "duplicated markers surface as duplicate acks: {audit:?}"
        );
    }
}

#[test]
fn join_heals_lost_build_and_probe_buffers() {
    let build = int_table("build", 96);
    let probe_schema = Schema::new(vec![Field::new("y", DataType::Int)]);
    let probe_rows: Vec<Tuple> = (0..200)
        .map(|i| Tuple::new(vec![Value::Int((i % 128) as i64)]))
        .collect();
    let probe = Arc::new(Table::new("probe", probe_schema, probe_rows).unwrap());
    let plan = join_plan(&build, &probe, 2);
    let clean = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&build, &probe]),
        config(None),
    )
    .unwrap()
    .run(&plan)
    .unwrap();

    let hook = Arc::new(DropFirst {
        budget: 4,
        dropped: AtomicU64::new(0),
    });
    let report = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&build, &probe]),
        config(Some(hook)),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    assert!(report.tuples_retransmitted > 0, "{:?}", report.timeline);
    assert!(
        report.delivery_gaps.is_empty(),
        "{:?}",
        report.delivery_gaps
    );
    assert_eq!(
        sorted_strs(&report.results),
        sorted_strs(&clean.results),
        "join state rebuilt from retained build log must reproduce the \
         clean multiset: {:?}",
        report.timeline
    );
}

#[test]
fn exhausted_retries_degrade_into_explicit_gaps_not_a_hang() {
    let table = int_table("t", 200);
    let plan = call_plan(&table, 2);
    let hook = Arc::new(SeverDest(1));
    let mut cfg = config(Some(hook));
    cfg.retry_max = 2; // keep the doomed retry ladder short
    let report = Simulation::new(GridEnvironment::demo(2), catalog(&[&table]), cfg)
        .unwrap()
        .run(&plan)
        .unwrap();
    assert!(
        !report.delivery_gaps.is_empty(),
        "a severed destination must surface as gaps: {:?}",
        report.timeline
    );
    for gap in &report.delivery_gaps {
        assert_eq!(gap.dest, 1);
        assert!(gap.tuples > 0);
    }
    let lost: u64 = report.delivery_gaps.iter().map(|g| g.tuples).sum();
    assert_eq!(
        report.tuples_output + lost,
        200,
        "every input is either delivered or accounted for in a gap: {:?}",
        report.delivery_gaps
    );
    assert!(report
        .timeline
        .iter()
        .any(|e| e.what.contains("delivery gap")));
}

#[test]
fn node_failure_pairs_node_down_with_failover_in_the_timeline() {
    let table = int_table("t", 300);
    let plan = call_plan(&table, 2);
    let sim = Simulation::new(GridEnvironment::demo(2), catalog(&[&table]), config(None)).unwrap();
    let healthy = sim.run(&plan).unwrap();
    let fail_at = SimTime::from_millis(healthy.response_time_ms / 4.0);
    let report = sim
        .run_with_failures(&plan, &[(NodeId::new(2), fail_at)])
        .unwrap();
    assert_eq!(report.tuples_output, 300, "{:?}", report.timeline);
    let obs = report.obs.expect("obs enabled by default");
    let downs: Vec<_> = obs
        .events
        .iter()
        .filter(|e| matches!(e.kind, TimelineKind::NodeDown { .. }))
        .collect();
    assert_eq!(downs.len(), 1, "one partition lost, one NodeDown");
    let failovers: Vec<_> = obs
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            TimelineKind::Failover {
                partition,
                replayed,
                down_seq,
            } => Some((partition.clone(), *replayed, *down_seq)),
            _ => None,
        })
        .collect();
    assert_eq!(
        failovers.len(),
        1,
        "each death completes exactly one failover"
    );
    let (partition, replayed, down_seq) = &failovers[0];
    assert_eq!(down_seq, &downs[0].seq, "failover links back to its death");
    match &downs[0].kind {
        TimelineKind::NodeDown { partition: p } => assert_eq!(p, partition),
        _ => unreachable!(),
    }
    assert_eq!(
        *replayed, report.failure_resent_tuples,
        "single-source plan: everything replayed belongs to this partition"
    );
}
