//! Fault-tolerance tests: evaluator nodes fail mid-query and the
//! recovery logs (the same substrate that powers retrospective
//! adaptation) restore the lost work on the survivors — exactly once.

use std::sync::Arc;

use gridq_adapt::{AdaptivityConfig, AssessmentPolicy, ResponsePolicy};
use gridq_common::{
    DataType, DistributionVector, Field, NodeId, QueryId, Schema, SimTime, SubplanId, Tuple, Value,
};
use gridq_engine::distributed::{
    DistributedPlan, ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
};
use gridq_engine::evaluator::{HashJoinFactory, ServiceCallFactory, StreamTag};
use gridq_engine::physical::Catalog;
use gridq_engine::service::{FnService, ServiceRegistry};
use gridq_engine::table::Table;
use gridq_engine::Expr;
use gridq_grid::GridEnvironment;
use gridq_sim::{Simulation, SimulationConfig};

fn int_table(name: &str, n: usize) -> Arc<Table> {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    let rows = (0..n)
        .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
        .collect();
    Arc::new(Table::new(name, schema, rows).unwrap())
}

fn call_plan(table: &Arc<Table>, partitions: usize) -> DistributedPlan {
    let factory = ServiceCallFactory::new(
        table.schema(),
        Arc::new(FnService::new(
            "Square",
            vec![DataType::Int],
            DataType::Int,
            1.5,
            |args| Ok(Value::Int(args[0].as_int().unwrap().pow(2))),
        )),
        vec![Expr::col(0)],
        "sq",
        false,
        ServiceRegistry::new(),
    );
    DistributedPlan {
        query: QueryId::new(1),
        sources: vec![SourceSpec {
            table: table.name().to_string(),
            node: NodeId::new(0),
            stream: StreamTag::Single,
            scan_cost_ms: 0.5,
        }],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: (0..partitions).map(|i| NodeId::new(i as u32 + 1)).collect(),
            exchange: ExchangeSpec {
                routing: RoutingPolicy::Weighted {
                    initial: DistributionVector::uniform(partitions),
                },
                buffer_tuples: 20,
            },
        }],
        collect_node: NodeId::new(0),
    }
}

fn join_plan(build: &Arc<Table>, probe: &Arc<Table>, partitions: usize) -> DistributedPlan {
    let factory = HashJoinFactory::new(build.schema(), probe.schema(), 0, 0, 0.2, 1.5);
    DistributedPlan {
        query: QueryId::new(2),
        sources: vec![
            SourceSpec {
                table: build.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Build,
                scan_cost_ms: 0.3,
            },
            SourceSpec {
                table: probe.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Probe,
                scan_cost_ms: 0.3,
            },
        ],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: (0..partitions).map(|i| NodeId::new(i as u32 + 1)).collect(),
            exchange: ExchangeSpec {
                routing: RoutingPolicy::HashBuckets {
                    bucket_count: 32,
                    initial: DistributionVector::uniform(partitions),
                    keys: StreamKeys {
                        build: Some(0),
                        probe: Some(0),
                        single: None,
                    },
                },
                buffer_tuples: 20,
            },
        }],
        collect_node: NodeId::new(0),
    }
}

fn catalog(tables: &[&Arc<Table>]) -> Catalog {
    let mut c = Catalog::new();
    for t in tables {
        c.register(Arc::clone(t));
    }
    c
}

fn config(adaptivity: AdaptivityConfig) -> SimulationConfig {
    SimulationConfig {
        adaptivity,
        collect_results: true,
        receive_cost_ms: 0.5,
        ..Default::default()
    }
}

fn sorted_ints(tuples: &[Tuple]) -> Vec<i64> {
    let mut v: Vec<i64> = tuples
        .iter()
        .map(|t| t.value(0).as_int().unwrap())
        .collect();
    v.sort_unstable();
    v
}

#[test]
// A dead partition's weight is assigned exactly 0.0, never computed, so
// bit-exact comparison is the correct assertion.
#[allow(clippy::float_cmp)]
fn stateless_query_survives_one_failure_exactly_once() {
    let table = int_table("t", 400);
    let plan = call_plan(&table, 2);
    let sim = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    // Kill node2 a fifth of the way through the run.
    let healthy = sim.run(&plan).unwrap();
    let fail_at = SimTime::from_millis(healthy.response_time_ms / 5.0);
    let report = sim
        .run_with_failures(&plan, &[(NodeId::new(2), fail_at)])
        .unwrap();
    assert_eq!(report.nodes_failed, 1);
    assert!(report.failure_resent_tuples > 0, "{:?}", report.timeline);
    assert_eq!(report.tuples_output, 400, "{:?}", report.timeline);
    let expect: Vec<i64> = (0..400i64).map(|i| i * i).collect();
    assert_eq!(sorted_ints(&report.results), expect);
    // The survivor did all remaining work.
    assert_eq!(report.final_distribution[1], 0.0);
    // Losing a node costs time.
    assert!(report.response_time_ms > healthy.response_time_ms);
}

#[test]
fn join_survives_failure_with_state_rebuild() {
    let build = int_table("build", 120);
    let probe_schema = Schema::new(vec![Field::new("y", DataType::Int)]);
    let probe_rows: Vec<Tuple> = (0..240)
        .map(|i| Tuple::new(vec![Value::Int((i % 160) as i64)]))
        .collect();
    let probe = Arc::new(Table::new("probe", probe_schema, probe_rows).unwrap());
    let plan = join_plan(&build, &probe, 2);
    let sim = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&build, &probe]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let healthy = sim.run(&plan).unwrap();
    let expected: u64 = (0..240).filter(|i| i % 160 < 120).count() as u64;
    assert_eq!(healthy.tuples_output, expected);
    // Fail node2 after the build phase is well under way.
    let fail_at = SimTime::from_millis(healthy.response_time_ms / 3.0);
    let report = sim
        .run_with_failures(&plan, &[(NodeId::new(2), fail_at)])
        .unwrap();
    assert_eq!(
        report.tuples_output, expected,
        "join results after recovery: {:?}",
        report.timeline
    );
    // Build state for the dead partition's buckets was rebuilt from the
    // never-acknowledged build log.
    assert!(report.failure_resent_tuples > 0);
    // Exactly-once delivery: the multisets match the healthy run.
    let mut healthy_strs: Vec<String> = healthy.results.iter().map(|t| t.to_string()).collect();
    let mut failed_strs: Vec<String> = report.results.iter().map(|t| t.to_string()).collect();
    healthy_strs.sort();
    failed_strs.sort();
    assert_eq!(healthy_strs, failed_strs);
}

#[test]
// Same as above: the dead node's weight is set to exactly 0.0.
#[allow(clippy::float_cmp)]
fn failure_with_adaptivity_never_routes_back_to_dead_node() {
    let table = int_table("t", 600);
    let plan = call_plan(&table, 3);
    let sim = Simulation::new(
        GridEnvironment::demo(3),
        catalog(&[&table]),
        config(AdaptivityConfig::with_policies(
            AssessmentPolicy::A1,
            ResponsePolicy::R1,
        )),
    )
    .unwrap();
    let healthy = sim.run(&plan).unwrap();
    let fail_at = SimTime::from_millis(healthy.response_time_ms / 4.0);
    let report = sim
        .run_with_failures(&plan, &[(NodeId::new(2), fail_at)])
        .unwrap();
    assert_eq!(report.tuples_output, 600, "{:?}", report.timeline);
    assert_eq!(
        report.final_distribution[1], 0.0,
        "dead partition must keep zero weight: {:?}",
        report.final_distribution
    );
    let expect: Vec<i64> = (0..600i64).map(|i| i * i).collect();
    assert_eq!(sorted_ints(&report.results), expect);
}

#[test]
fn two_failures_leave_one_survivor() {
    let table = int_table("t", 300);
    let plan = call_plan(&table, 3);
    let sim = Simulation::new(
        GridEnvironment::demo(3),
        catalog(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let healthy = sim.run(&plan).unwrap();
    let t1 = SimTime::from_millis(healthy.response_time_ms / 6.0);
    let t2 = SimTime::from_millis(healthy.response_time_ms / 3.0);
    let report = sim
        .run_with_failures(&plan, &[(NodeId::new(2), t1), (NodeId::new(3), t2)])
        .unwrap();
    assert_eq!(report.nodes_failed, 2);
    assert_eq!(report.tuples_output, 300, "{:?}", report.timeline);
    let expect: Vec<i64> = (0..300i64).map(|i| i * i).collect();
    assert_eq!(sorted_ints(&report.results), expect);
}

#[test]
fn all_nodes_failing_is_an_error() {
    let table = int_table("t", 100);
    let plan = call_plan(&table, 2);
    let sim = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let early = SimTime::from_millis(10.0);
    let err = sim
        .run_with_failures(&plan, &[(NodeId::new(1), early), (NodeId::new(2), early)])
        .unwrap_err();
    assert!(err.to_string().contains("failed"), "{err}");
}

#[test]
fn failing_a_non_stage_node_is_rejected() {
    let table = int_table("t", 10);
    let plan = call_plan(&table, 2);
    let sim = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let err = sim
        .run_with_failures(&plan, &[(NodeId::new(0), SimTime::from_millis(1.0))])
        .unwrap_err();
    assert!(err.to_string().contains("no stage partition"), "{err}");
}

#[test]
fn failure_after_completion_is_harmless() {
    let table = int_table("t", 50);
    let plan = call_plan(&table, 2);
    let sim = Simulation::new(
        GridEnvironment::demo(2),
        catalog(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let healthy = sim.run(&plan).unwrap();
    let late = SimTime::from_millis(healthy.response_time_ms * 10.0);
    let report = sim
        .run_with_failures(&plan, &[(NodeId::new(2), late)])
        .unwrap();
    assert_eq!(report.tuples_output, 50);
}
