//! Behavioural tests for the discrete-event simulator: result
//! correctness against single-node reference execution, balance under
//! homogeneous load, and the headline adaptive behaviours of the paper.

use std::collections::HashMap;
use std::sync::Arc;

use gridq_adapt::{AdaptivityConfig, AssessmentPolicy, ResponsePolicy};
use gridq_common::{
    DataType, DistributionVector, Field, NodeId, QueryId, Schema, SubplanId, Tuple, Value,
};
use gridq_engine::distributed::{
    DistributedPlan, ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
};
use gridq_engine::evaluator::{HashJoinFactory, ServiceCallFactory, StreamTag};
use gridq_engine::physical::Catalog;
use gridq_engine::service::{FnService, Service, ServiceRegistry};
use gridq_engine::table::Table;
use gridq_engine::Expr;
use gridq_grid::{GridEnvironment, Perturbation};
use gridq_sim::{Simulation, SimulationConfig};

fn int_table(name: &str, n: usize) -> Arc<Table> {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    let rows = (0..n)
        .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
        .collect();
    Arc::new(Table::new(name, schema, rows).unwrap())
}

fn square_service(cost_ms: f64) -> Arc<dyn Service> {
    Arc::new(FnService::new(
        "Square",
        vec![DataType::Int],
        DataType::Int,
        cost_ms,
        |args| Ok(Value::Int(args[0].as_int().unwrap().pow(2))),
    ))
}

/// Builds a Q1-shaped plan: scan -> exchange -> service call over
/// `evaluators` partitions.
fn call_plan(table: &Arc<Table>, evaluators: usize, cost_ms: f64) -> DistributedPlan {
    let factory = ServiceCallFactory::new(
        table.schema(),
        square_service(cost_ms),
        vec![Expr::col(0)],
        "sq",
        false,
        ServiceRegistry::new(),
    );
    DistributedPlan {
        query: QueryId::new(1),
        sources: vec![SourceSpec {
            table: table.name().to_string(),
            node: NodeId::new(0),
            stream: StreamTag::Single,
            scan_cost_ms: 0.5,
        }],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: (0..evaluators).map(|i| NodeId::new(i as u32 + 1)).collect(),
            exchange: ExchangeSpec {
                routing: RoutingPolicy::Weighted {
                    initial: DistributionVector::uniform(evaluators),
                },
                buffer_tuples: 20,
            },
        }],
        collect_node: NodeId::new(0),
    }
}

/// Builds a Q2-shaped plan: two scans hash-partitioned into a join.
fn join_plan(
    build: &Arc<Table>,
    probe: &Arc<Table>,
    evaluators: usize,
    probe_cost_ms: f64,
) -> DistributedPlan {
    let factory = HashJoinFactory::new(build.schema(), probe.schema(), 0, 0, 0.05, probe_cost_ms);
    DistributedPlan {
        query: QueryId::new(2),
        sources: vec![
            SourceSpec {
                table: build.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Build,
                scan_cost_ms: 0.1,
            },
            SourceSpec {
                table: probe.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Probe,
                scan_cost_ms: 0.1,
            },
        ],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: (0..evaluators).map(|i| NodeId::new(i as u32 + 1)).collect(),
            exchange: ExchangeSpec {
                routing: RoutingPolicy::HashBuckets {
                    bucket_count: 32,
                    initial: DistributionVector::uniform(evaluators),
                    keys: StreamKeys {
                        build: Some(0),
                        probe: Some(0),
                        single: None,
                    },
                },
                buffer_tuples: 20,
            },
        }],
        collect_node: NodeId::new(0),
    }
}

fn catalog_with(tables: &[&Arc<Table>]) -> Catalog {
    let mut c = Catalog::new();
    for t in tables {
        c.register(Arc::clone(t));
    }
    c
}

fn config(adaptivity: AdaptivityConfig) -> SimulationConfig {
    SimulationConfig {
        adaptivity,
        collect_results: true,
        receive_cost_ms: 0.5,
        ..Default::default()
    }
}

fn value_multiset(tuples: &[Tuple]) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for t in tuples {
        *m.entry(t.to_string()).or_insert(0) += 1;
    }
    m
}

#[test]
fn q1_results_match_reference() {
    let table = int_table("t", 200);
    let plan = call_plan(&table, 2, 1.0);
    let sim = Simulation::new(
        GridEnvironment::demo(2),
        catalog_with(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let report = sim.run(&plan).unwrap();
    assert_eq!(report.tuples_output, 200);
    // Reference: squares of 0..200.
    let expect: HashMap<String, usize> = (0..200i64).map(|i| (format!("[{}]", i * i), 1)).collect();
    assert_eq!(value_multiset(&report.results), expect);
    assert!(report.response_time_ms > 0.0);
}

#[test]
fn q1_without_adaptivity_is_balanced_when_homogeneous() {
    let table = int_table("t", 400);
    let plan = call_plan(&table, 2, 1.0);
    let sim = Simulation::new(
        GridEnvironment::demo(2),
        catalog_with(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let report = sim.run(&plan).unwrap();
    assert_eq!(report.per_partition_processed.iter().sum::<u64>(), 400);
    let ratio = report.balance_ratio().unwrap();
    assert!(ratio < 1.05, "uniform routing should be balanced: {ratio}");
    assert_eq!(report.adaptations_deployed, 0);
    assert_eq!(report.raw_m1_events, 0, "monitoring off when disabled");
}

#[test]
fn q1_perturbed_without_adaptivity_degrades() {
    let table = int_table("t", 300);
    let plan = call_plan(&table, 2, 1.0);
    let mut env = GridEnvironment::demo(2);
    env.perturb(NodeId::new(2), Perturbation::CostFactor(10.0));
    let baseline_env = GridEnvironment::demo(2);
    let sim_base = Simulation::new(
        baseline_env,
        catalog_with(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let base = sim_base.run(&plan).unwrap();
    let sim_pert = Simulation::new(
        env,
        catalog_with(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap();
    let pert = sim_pert.run(&plan).unwrap();
    assert!(
        pert.response_time_ms > 2.0 * base.response_time_ms,
        "10x perturbation must hurt a static system: {} vs {}",
        pert.response_time_ms,
        base.response_time_ms
    );
}

#[test]
fn q1_adaptivity_recovers_much_of_the_loss() {
    let table = int_table("t", 600);
    let plan = call_plan(&table, 2, 1.0);
    let catalog = catalog_with(&[&table]);
    let mk_env = || {
        let mut env = GridEnvironment::demo(2);
        env.perturb(NodeId::new(2), Perturbation::CostFactor(10.0));
        env
    };
    let static_run = Simulation::new(
        mk_env(),
        catalog.clone(),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    let adaptive = Simulation::new(
        mk_env(),
        catalog.clone(),
        config(AdaptivityConfig::with_policies(
            AssessmentPolicy::A1,
            ResponsePolicy::R2,
        )),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    assert_eq!(adaptive.tuples_output, 600);
    assert!(adaptive.adaptations_deployed >= 1);
    assert!(
        adaptive.response_time_ms < 0.7 * static_run.response_time_ms,
        "adaptive {} should beat static {}",
        adaptive.response_time_ms,
        static_run.response_time_ms
    );
    // The fast partition must have absorbed most of the work.
    let w = &adaptive.final_distribution;
    assert!(w[0] > 0.7, "final distribution should favour node1: {w:?}");
}

#[test]
fn q1_retrospective_recalls_tuples() {
    let table = int_table("t", 600);
    let plan = call_plan(&table, 2, 1.0);
    let catalog = catalog_with(&[&table]);
    let mut env = GridEnvironment::demo(2);
    env.perturb(NodeId::new(2), Perturbation::CostFactor(10.0));
    let report = Simulation::new(
        env,
        catalog,
        config(AdaptivityConfig::with_policies(
            AssessmentPolicy::A1,
            ResponsePolicy::R1,
        )),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    assert_eq!(report.tuples_output, 600);
    assert!(
        report.tuples_redistributed > 0,
        "retrospective response must recall queued tuples"
    );
    // Results stay exact under redistribution.
    let expect: HashMap<String, usize> = (0..600i64).map(|i| (format!("[{}]", i * i), 1)).collect();
    assert_eq!(value_multiset(&report.results), expect);
}

#[test]
fn q2_join_results_match_reference_with_r1_adaptation() {
    // Join x in 0..150 (build) with 2x keys 0..300 (probe): matches for
    // keys 0..150, two interactions each key in 0..75... construct probe
    // with duplicated keys to exercise multi-match.
    let build = int_table("build", 150);
    let probe_schema = Schema::new(vec![Field::new("y", DataType::Int)]);
    let probe_rows: Vec<Tuple> = (0..300)
        .map(|i| Tuple::new(vec![Value::Int((i % 200) as i64)]))
        .collect();
    let probe = Arc::new(Table::new("probe", probe_schema, probe_rows).unwrap());
    let plan = join_plan(&build, &probe, 2, 2.0);
    let mut env = GridEnvironment::demo(2);
    env.perturb(NodeId::new(2), Perturbation::SleepMs(8.0));
    let report = Simulation::new(
        env,
        catalog_with(&[&build, &probe]),
        config(AdaptivityConfig::with_policies(
            AssessmentPolicy::A1,
            ResponsePolicy::R1,
        )),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    // Reference: probe value v matches iff v < 150; probe values are
    // i % 200 for i in 0..300, so matches = #{i : i%200 < 150}.
    let expected: usize = (0..300).filter(|i| i % 200 < 150).count();
    assert_eq!(report.tuples_output as usize, expected);
    let expect_multiset: HashMap<String, usize> = {
        let mut m = HashMap::new();
        for i in 0..300 {
            let v = i % 200;
            if v < 150 {
                *m.entry(format!("[{v}, {v}]")).or_insert(0) += 1;
            }
        }
        m
    };
    assert_eq!(value_multiset(&report.results), expect_multiset);
}

#[test]
fn q2_stateful_with_prospective_response_is_rejected() {
    let build = int_table("build", 10);
    let probe = int_table("probe", 10);
    let plan = join_plan(&build, &probe, 2, 1.0);
    let sim = Simulation::new(
        GridEnvironment::demo(2),
        catalog_with(&[&build, &probe]),
        config(AdaptivityConfig::with_policies(
            AssessmentPolicy::A1,
            ResponsePolicy::R2,
        )),
    )
    .unwrap();
    let err = sim.run(&plan).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("retrospective"), "got: {msg}");
}

#[test]
fn q2_static_join_matches_reference() {
    let build = int_table("build", 80);
    let probe = int_table("probe", 120);
    let plan = join_plan(&build, &probe, 3, 0.5);
    let report = Simulation::new(
        GridEnvironment::demo(3),
        catalog_with(&[&build, &probe]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    assert_eq!(report.tuples_output, 80); // keys 0..80 match once each
}

#[test]
fn monitoring_generates_notification_funnel() {
    let table = int_table("t", 500);
    let plan = call_plan(&table, 2, 1.0);
    let mut env = GridEnvironment::demo(2);
    env.perturb(NodeId::new(2), Perturbation::CostFactor(10.0));
    let report = Simulation::new(
        env,
        catalog_with(&[&table]),
        config(AdaptivityConfig::default()),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    // The funnel narrows: raw events >> detector notifications >=
    // imbalances >= adaptations.
    assert!(report.raw_m1_events > 20);
    assert!(report.detector_notifications < report.raw_m1_events + report.raw_m2_events);
    assert!(report.detector_notifications >= report.imbalances_reported);
    assert!(report.imbalances_reported >= report.adaptations_deployed);
    assert!(report.adaptations_deployed >= 1);
}

#[test]
// Bit-exact equality is the property under test: simulated time must be
// perfectly reproducible for a fixed seed.
#[allow(clippy::float_cmp)]
fn deterministic_given_seed() {
    let table = int_table("t", 300);
    let plan = call_plan(&table, 2, 1.0);
    let run = || {
        let mut env = GridEnvironment::demo(2);
        env.perturb(NodeId::new(2), Perturbation::CostFactor(5.0));
        Simulation::new(
            env,
            catalog_with(&[&table]),
            config(AdaptivityConfig::default()),
        )
        .unwrap()
        .run(&plan)
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.response_time_ms, b.response_time_ms);
    assert_eq!(a.per_partition_processed, b.per_partition_processed);
    assert_eq!(a.adaptations_deployed, b.adaptations_deployed);
}

#[test]
fn acks_prune_recovery_logs() {
    let table = int_table("t", 300);
    let plan = call_plan(&table, 2, 1.0);
    let report = Simulation::new(
        GridEnvironment::demo(2),
        catalog_with(&[&table]),
        config(AdaptivityConfig::disabled()),
    )
    .unwrap()
    .run(&plan)
    .unwrap();
    assert!(
        report.acks_received > 0,
        "checkpoint acknowledgements must flow"
    );
}

#[test]
fn three_evaluator_run_with_one_perturbed() {
    let table = int_table("t", 600);
    let plan = call_plan(&table, 3, 1.0);
    let catalog = catalog_with(&[&table]);
    let mk = |enabled: bool| {
        let mut env = GridEnvironment::demo(3);
        env.perturb(NodeId::new(3), Perturbation::CostFactor(10.0));
        let adapt = if enabled {
            AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R1)
        } else {
            AdaptivityConfig::disabled()
        };
        Simulation::new(env, catalog.clone(), config(adapt))
            .unwrap()
            .run(&plan)
            .unwrap()
    };
    let static_run = mk(false);
    let adaptive = mk(true);
    assert_eq!(adaptive.tuples_output, 600);
    assert!(adaptive.response_time_ms < static_run.response_time_ms);
}
