//! The event queue driving the simulation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use gridq_adapt::{AdaptationCommand, CommUpdate, CostUpdate};
use gridq_common::SimTime;

/// A scheduled simulation event.
#[derive(Debug, Clone)]
pub enum Event {
    /// A source is ready to produce its next tuple.
    SourceStep {
        /// Source index.
        source: usize,
    },
    /// A buffer of items lands in a consumer's incoming queue. The
    /// payload lives in the simulation's buffer slab so that in-flight
    /// buffers can be rerouted by retrospective adaptations.
    BufferArrive {
        /// Buffer slab id.
        buffer: u64,
    },
    /// A consumer is ready to process the next queued item.
    ConsumerStep {
        /// Partition index in the stage.
        consumer: u32,
    },
    /// An acknowledgement returns to a producer.
    AckArrive {
        /// Source index the ack is addressed to.
        source: usize,
        /// Destination partition whose checkpoint is acknowledged.
        dest: u32,
        /// Checkpoint id.
        cp: u64,
        /// Producer epoch the checkpoint belongs to.
        epoch: u64,
    },
    /// A filtered processing-cost update reaches the Diagnoser.
    CostToDiagnoser {
        /// The update in flight.
        update: CostUpdate,
        /// Timeline sequence number of the detector notification that
        /// produced this update (for causal tracing).
        notify_seq: u64,
    },
    /// A filtered communication-cost update reaches the Diagnoser.
    CommToDiagnoser {
        /// The update in flight.
        update: CommUpdate,
        /// Timeline sequence number of the detector notification that
        /// produced this update.
        notify_seq: u64,
    },
    /// A deployed adaptation command reaches the producers.
    ApplyAdaptation {
        /// The command in flight.
        command: AdaptationCommand,
        /// Timeline sequence number of the diagnosis being deployed.
        diagnosis_seq: u64,
    },
    /// A buffer of result tuples reaches the collector.
    CollectArrive {
        /// Result-buffer slab id.
        buffer: u64,
    },
    /// A Grid node fails: every partition it hosts is lost, and the
    /// producers recover the unacknowledged work from their logs.
    NodeFail {
        /// The failing node.
        node: gridq_common::NodeId,
    },
    /// A finished source checks for unacknowledged checkpoint windows
    /// (resilient runs only): undelivered windows are retransmitted with
    /// jittered exponential backoff until acknowledged or the retry
    /// budget is spent, and end-of-stream is released only once the
    /// retry loop resolves.
    RetryCheck {
        /// Source index.
        source: usize,
        /// Retry round, 0-based.
        attempt: u32,
    },
}

#[derive(Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Scheduled {}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the earliest event (ties
        // broken by insertion order) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `event` at time `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|s| (s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(5.0), Event::SourceStep { source: 1 });
        q.schedule(SimTime::from_millis(1.0), Event::SourceStep { source: 2 });
        q.schedule(SimTime::from_millis(3.0), Event::SourceStep { source: 3 });
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::SourceStep { source } => source,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1.0);
        for i in 0..5 {
            q.schedule(t, Event::ConsumerStep { consumer: i });
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|(_, e)| match e {
                Event::ConsumerStep { consumer } => consumer,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, Event::SourceStep { source: 0 });
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
    }
}
