//! Simulation configuration.

use std::sync::Arc;

use gridq_adapt::AdaptivityConfig;
use gridq_common::{ChaosHook, GridError, Result};
use gridq_obs::ObsConfig;

/// Cost-model and protocol parameters of a simulated execution.
///
/// The per-tuple overhead knobs model work the real prototype performs
/// that is not captured by operator base costs: deserializing incoming
/// buffers, producing raw monitoring events, and maintaining recovery
/// logs "in a tidy manner" when retrospective responses are enabled (the
/// paper measures ~6 % overhead for prospective and ~15 % for
/// retrospective adaptivity when no imbalance exists).
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Adaptivity pipeline configuration.
    pub adaptivity: AdaptivityConfig,
    /// Tuples covered by one checkpoint window in the recovery logs.
    pub checkpoint_interval: usize,
    /// Per-tuple cost of receiving/deserializing at a consumer, in ms
    /// (the paper's "significant I/O and communication costs" per tuple).
    pub receive_cost_ms: f64,
    /// Per raw monitoring notification cost (M1/M2 generation).
    pub monitor_cost_ms: f64,
    /// Per-tuple consumer-side overhead when adaptivity is enabled
    /// (self-monitoring instrumentation and log bookkeeping).
    pub adapt_overhead_ms: f64,
    /// Additional per-tuple consumer-side overhead when the response
    /// policy is retrospective (tidy log management for discard and
    /// redistribution).
    pub r1_overhead_ms: f64,
    /// Per-tuple cost charged when a retrospective response extracts and
    /// re-sends a tuple (log drain, re-serialization).
    pub redistribute_cost_ms: f64,
    /// Per-tuple cost charged to a consumer for discarding a queued
    /// tuple during retrospective redistribution.
    pub discard_cost_ms: f64,
    /// Processing delay added by each adaptivity component hop, in ms.
    pub control_extra_ms: f64,
    /// Seed for the deterministic RNG driving noise and perturbation
    /// sampling.
    pub seed: u64,
    /// Whether to retain the full result set in the report (tests use
    /// this to compare against local reference execution).
    pub collect_results: bool,
    /// Observability layer configuration (metrics registry and
    /// adaptivity timeline).
    pub obs: ObsConfig,
    /// Fault-injection hook consulted at the chaos seams (exchange
    /// sends, checkpoint acks, monitoring notifications, per-tuple
    /// work). `None` injects nothing and leaves behavior identical to
    /// an uninstrumented run. Installing a hook switches the run into
    /// resilient mode: producers retransmit unacknowledged checkpoint
    /// windows (see `retry_base_ms`/`retry_max`) and consumers
    /// deduplicate redelivered tuples, so data-plane loss and
    /// duplication heal instead of corrupting the result.
    pub chaos: Option<Arc<dyn ChaosHook>>,
    /// Base delivery-retry backoff in virtual milliseconds (resilient
    /// runs only). Retry `k` waits `retry_base_ms * 2^k`, jittered
    /// deterministically into `[0.5, 1.0)` of the nominal value.
    pub retry_base_ms: f64,
    /// Retransmission rounds per source before undelivered windows are
    /// abandoned and reported as explicit delivery gaps.
    pub retry_max: u32,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            adaptivity: AdaptivityConfig::default(),
            checkpoint_interval: 50,
            receive_cost_ms: 0.0,
            monitor_cost_ms: 0.02,
            adapt_overhead_ms: 0.0,
            r1_overhead_ms: 0.0,
            redistribute_cost_ms: 0.02,
            discard_cost_ms: 0.01,
            control_extra_ms: 1.0,
            seed: 0x5eed,
            collect_results: false,
            obs: ObsConfig::default(),
            chaos: None,
            retry_base_ms: 25.0,
            retry_max: 6,
        }
    }
}

impl SimulationConfig {
    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        self.adaptivity.validate()?;
        self.obs.validate()?;
        if self.checkpoint_interval == 0 {
            return Err(GridError::Config(
                "checkpoint interval must be positive".into(),
            ));
        }
        for (name, v) in [
            ("receive_cost_ms", self.receive_cost_ms),
            ("monitor_cost_ms", self.monitor_cost_ms),
            ("adapt_overhead_ms", self.adapt_overhead_ms),
            ("r1_overhead_ms", self.r1_overhead_ms),
            ("redistribute_cost_ms", self.redistribute_cost_ms),
            ("discard_cost_ms", self.discard_cost_ms),
            ("control_extra_ms", self.control_extra_ms),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(GridError::Config(format!("{name} must be non-negative")));
            }
        }
        if !self.retry_base_ms.is_finite() || self.retry_base_ms <= 0.0 {
            return Err(GridError::Config(format!(
                "retry_base_ms must be positive and finite, got {}",
                self.retry_base_ms
            )));
        }
        if self.retry_max == 0 {
            return Err(GridError::Config(
                "retry_max must be at least 1; model a dead link with an \
                 all-drop chaos plan, not a zero retry budget"
                    .into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(SimulationConfig::default().validate().is_ok());
    }

    #[test]
    fn bad_values_rejected() {
        let mut c = SimulationConfig {
            checkpoint_interval: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.checkpoint_interval = 10;
        c.receive_cost_ms = -1.0;
        assert!(c.validate().is_err());
        c.receive_cost_ms = f64::NAN;
        assert!(c.validate().is_err());
        c.receive_cost_ms = 0.0;
        c.retry_base_ms = 0.0;
        assert!(c.validate().is_err());
        c.retry_base_ms = 25.0;
        c.retry_max = 0;
        assert!(c.validate().is_err());
    }
}
