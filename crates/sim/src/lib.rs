#![warn(missing_docs)]

//! A deterministic discrete-event simulator for distributed query
//! execution on the Grid.
//!
//! The paper evaluates its adaptivity architecture on three real machines
//! running Globus/OGSA-DQP; this crate substitutes that testbed with a
//! virtual-time simulation that preserves the behaviours the experiments
//! measure:
//!
//! - **pipelined parallelism** — source scans stream tuples through
//!   exchanges into the partitioned stage while it processes;
//!   "the incoming queues within exchanges can fit the complete dataset";
//! - **per-tuple costs** — processing cost scales with the hosting node's
//!   speed, perturbation schedule, and a small noise term;
//! - **buffered communication** — tuples travel in buffers whose
//!   transmission cost follows the network model and is reported in M2
//!   notifications;
//! - **checkpoint/acknowledgement recovery logs** at every exchange
//!   producer (the substrate for retrospective adaptation);
//! - **the adaptivity loop** — self-monitoring events feed per-node
//!   MonitoringEventDetectors; filtered updates travel (with control
//!   latency) to the Diagnoser; accepted proposals are deployed by the
//!   Responder either prospectively (R2) or retrospectively (R1, with
//!   queue/state migration and log management costs).
//!
//! Execution is fully deterministic given the configuration seed.

pub mod config;
pub mod events;
pub mod exec;
pub mod report;

pub use config::SimulationConfig;
pub use exec::Simulation;
pub use report::ExecutionReport;
