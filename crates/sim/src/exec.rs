//! Virtual-time execution of a distributed plan.
//!
//! The simulator executes the paper's plan shape — source scans feeding a
//! partitioned stage through an exchange, with results delivered to a
//! collector — as a deterministic discrete-event simulation. Tuples are
//! processed for real (entropy is computed, hash tables are built and
//! probed), while *time* comes from the cost models: operator base costs
//! scaled by node speed/perturbation/noise, buffer transmission costed by
//! the network model, and the adaptivity control loop paying network
//! latency per hop.

use std::collections::{HashMap, HashSet, VecDeque};

use gridq_adapt::{
    AdaptationCommand, AdaptivityConfig, CommUpdate, CostUpdate, DetectorOutput, Diagnoser,
    MonitoringEventDetector, ProducerId, Responder, ResponsePolicy, M1, M2,
};
use gridq_common::{
    DetRng, GridError, NetAction, NodeId, NotifyKind, PartitionId, Result, SimTime, StallSite,
    SubplanId, Tuple,
};
use gridq_engine::distributed::Router;
use gridq_engine::evaluator::{PartitionEvaluator, StreamTag};
use gridq_engine::physical::Catalog;
use gridq_engine::table::Table;
use gridq_engine::DistributedPlan;
use gridq_grid::GridEnvironment;
use gridq_obs::{Counter, Obs, TimelineKind};
use gridq_recovery::{DeliveryGap, RecoveryLog};

use crate::config::SimulationConfig;
use crate::events::{Event, EventQueue};
use crate::report::ExecutionReport;

/// One destination's undelivered windows, as returned by
/// [`RecoveryLog::undelivered_windows`]: each entry pairs the window's
/// checkpoint marker with the logged tuples it covers.
type UndeliveredWindows = Vec<(gridq_recovery::Checkpoint, Vec<(StreamTag, Tuple)>)>;

/// An item travelling through an exchange into a consumer queue.
#[derive(Debug, Clone)]
enum Item {
    /// A data tuple on a stream, remembering the source scan that
    /// produced it (re-logging after redistribution and failure recovery
    /// need the attribution).
    Tuple {
        stream: StreamTag,
        tuple: Tuple,
        source: usize,
        /// Carried by recall transfers and failure replay rather than
        /// first-time (or retransmitted) producer delivery. Migrated
        /// items bypass the consumer's duplicate filter: a hash bucket
        /// that ping-pongs between partitions legitimately re-delivers
        /// the same `(source, seq)` to a consumer that processed it
        /// under an earlier distribution.
        migrated: bool,
    },
    /// A checkpoint marker: when it reaches the head of the queue, all
    /// preceding tuples from `source` have been processed and can be
    /// acknowledged.
    Checkpoint { source: usize, cp: u64, epoch: u64 },
    /// End of stream from `source`.
    Eos { source: usize },
}

impl Item {
    fn payload_bytes(&self) -> usize {
        match self {
            Item::Tuple { tuple, .. } => tuple.byte_size(),
            _ => 8,
        }
    }
}

struct SourceRun {
    node: NodeId,
    stream: StreamTag,
    scan_cost_ms: f64,
    table: std::sync::Arc<Table>,
    pos: usize,
    staged: Vec<Vec<Item>>,
    log: RecoveryLog<(StreamTag, Tuple)>,
    epoch: u64,
    resume_at: SimTime,
    routed: u64,
    done: bool,
    /// Jitter stream for the delivery-retry backoff, forked per source
    /// so concurrent retry schedules decorrelate deterministically.
    retry_rng: DetRng,
}

struct ConsumerRun {
    node: NodeId,
    partition: PartitionId,
    evaluator: Box<dyn PartitionEvaluator>,
    /// Build-stream items; processed with priority so joins never probe
    /// before the matching state exists.
    build_queue: VecDeque<Item>,
    /// All other items in arrival order.
    main_queue: VecDeque<Item>,
    step_pending: bool,
    idle_since: Option<SimTime>,
    eos_remaining: HashSet<usize>,
    finished: bool,
    /// The node hosting this partition failed; the partition is gone.
    dead: bool,
    /// `(source, seq)` pairs this consumer has processed (resilient runs
    /// only): retransmitted windows redeliver tuples that already
    /// arrived, and at-least-once transport must not become
    /// more-than-once processing.
    seen: HashSet<(usize, u64)>,
    inputs: u64,
    outputs: u64,
    batch_inputs: u32,
    batch_cost_ms: f64,
    batch_wait_ms: f64,
    out_staged: Vec<Tuple>,
    penalty_ms: f64,
}

impl ConsumerRun {
    fn queues_empty(&self) -> bool {
        self.build_queue.is_empty() && self.main_queue.is_empty()
    }

    fn enqueue(&mut self, item: Item, build_sources: &HashSet<usize>) {
        match &item {
            Item::Tuple {
                stream: StreamTag::Build,
                ..
            } => self.build_queue.push_back(item),
            // A build-source checkpoint rides the build queue: it stays
            // ordered after its window's tuples yet ahead of held probe
            // tuples. Resilient runs withhold build end-of-stream until
            // these markers are acknowledged, and probes are held until
            // build end-of-stream — parking the marker behind the
            // probes would deadlock that cycle into a retry-budget
            // timeout.
            Item::Checkpoint { source, .. } if build_sources.contains(source) => {
                self.build_queue.push_back(item);
            }
            _ => self.main_queue.push_back(item),
        }
    }

    /// True when probe items may be processed: every build-stream source
    /// has signalled end-of-stream and no build items wait.
    fn build_done(&self, build_sources: &HashSet<usize>) -> bool {
        self.build_queue.is_empty()
            && build_sources
                .iter()
                .all(|s| !self.eos_remaining.contains(s))
    }

    fn next_item(&mut self, build_sources: &HashSet<usize>) -> Option<Item> {
        if let Some(item) = self.build_queue.pop_front() {
            return Some(item);
        }
        // Hold back probe tuples until the build phase is complete;
        // control items (checkpoints, EOS) always flow.
        if let Some(front) = self.main_queue.front() {
            let is_probe_tuple = matches!(
                front,
                Item::Tuple {
                    stream: StreamTag::Probe,
                    ..
                }
            );
            if is_probe_tuple && !self.build_done(build_sources) {
                // A build-source EOS may sit behind held probes and must
                // flow for the build phase to complete. Checkpoint
                // markers must NOT be pulled forward: acknowledging a
                // window before its tuples are processed would prune
                // recovery-log entries that failure recovery still
                // needs.
                if let Some(idx) = self
                    .main_queue
                    .iter()
                    .position(|i| matches!(i, Item::Eos { .. }))
                {
                    return self.main_queue.remove(idx);
                }
                return None;
            }
        }
        self.main_queue.pop_front()
    }
}

/// Executes distributed plans over a Grid environment in virtual time.
pub struct Simulation {
    env: GridEnvironment,
    catalog: Catalog,
    config: SimulationConfig,
}

impl Simulation {
    /// Creates a simulation over the given environment, catalog, and
    /// configuration.
    pub fn new(env: GridEnvironment, catalog: Catalog, config: SimulationConfig) -> Result<Self> {
        config.validate()?;
        Ok(Simulation {
            env,
            catalog,
            config,
        })
    }

    /// The Grid environment (mutable, to install perturbations between
    /// runs).
    pub fn env_mut(&mut self) -> &mut GridEnvironment {
        &mut self.env
    }

    /// The Grid environment.
    pub fn env(&self) -> &GridEnvironment {
        &self.env
    }

    /// Runs a plan to completion, returning the execution report.
    pub fn run(&self, plan: &DistributedPlan) -> Result<ExecutionReport> {
        self.run_with_failures(plan, &[])
    }

    /// Runs a plan while injecting evaluator-node failures at the given
    /// virtual times. Recovery uses the same checkpoint/acknowledgement
    /// recovery logs that power retrospective adaptation: producers
    /// re-send every unacknowledged tuple of a failed partition to the
    /// surviving partitions (rebuilding migrated operator state), and
    /// the collector deduplicates re-delivered results by sequence
    /// number. Failing a source or collector node is not supported.
    pub fn run_with_failures(
        &self,
        plan: &DistributedPlan,
        failures: &[(NodeId, SimTime)],
    ) -> Result<ExecutionReport> {
        plan.validate()?;
        if plan.stages.len() != 1 {
            return Err(GridError::Execution(
                "the simulator executes plans with exactly one partitioned stage; \
                 compose multi-stage pipelines as separate queries"
                    .into(),
            ));
        }
        for (node, _) in failures {
            if !plan.stages[0].nodes.contains(node) {
                return Err(GridError::Config(format!(
                    "failure injection targets {node}, which hosts no stage partition \
                     (source/collector failures are out of scope)"
                )));
            }
            if plan.sources.iter().any(|s| s.node == *node) || plan.collect_node == *node {
                return Err(GridError::Config(format!(
                    "failure injection targets {node}, which also hosts a source or the \
                     collector; only pure evaluator nodes may fail"
                )));
            }
        }
        let mut run = Run::new(self, plan)?;
        run.dedup_results = run.dedup_results || !failures.is_empty();
        for (node, at) in failures {
            run.queue.schedule(*at, Event::NodeFail { node: *node });
        }
        run.bootstrap();
        run.drive()?;
        Ok(run.into_report())
    }
}

struct Run<'a> {
    env: &'a GridEnvironment,
    config: &'a SimulationConfig,
    adapt: &'a AdaptivityConfig,
    plan: &'a DistributedPlan,
    queue: EventQueue,
    now: SimTime,
    rng: DetRng,
    stage_id: SubplanId,
    buffer_tuples: usize,
    router: Router,
    sources: Vec<SourceRun>,
    build_sources: HashSet<usize>,
    consumers: Vec<ConsumerRun>,
    buffers: HashMap<u64, (u32, Vec<Item>)>,
    result_buffers: HashMap<u64, Vec<Tuple>>,
    next_buffer: u64,
    detectors: HashMap<NodeId, MonitoringEventDetector>,
    diagnoser: Diagnoser,
    responder: Responder,
    diag_node: NodeId,
    total_rows: u64,
    collected: u64,
    /// A chaos hook is installed: producers retransmit unacknowledged
    /// windows, consumers deduplicate redelivered tuples, and
    /// end-of-stream is withheld until each source's retry loop
    /// resolves.
    resilient: bool,
    /// Deduplicate collected results by (sequence number, value hash);
    /// enabled for failure-injection and resilient runs, where
    /// at-least-once redelivery is expected.
    dedup_results: bool,
    seen_results: HashSet<(u64, u64)>,
    last_result_at: SimTime,
    last_finish_at: SimTime,
    report: ExecutionReport,
    /// Retrospective redistributions performed so far; each one is a
    /// redistribution epoch for the timeline.
    recalls: u64,
    monitoring_on: bool,
    adaptivity_on: bool,
    obs: Option<Obs>,
    routed_ctr: Option<std::sync::Arc<Counter>>,
    processed_ctr: Option<std::sync::Arc<Counter>>,
}

impl<'a> Run<'a> {
    fn new(sim: &'a Simulation, plan: &'a DistributedPlan) -> Result<Self> {
        let stage = &plan.stages[0];
        let partitions = stage.nodes.len() as u32;
        let router = Router::from_policy(&stage.exchange.routing, partitions)?;
        let adapt = &sim.config.adaptivity;
        if adapt.enabled && stage.factory.stateful() && adapt.response == ResponsePolicy::R2 {
            return Err(GridError::Config(
                "stateful stages require the retrospective (R1) response policy: \
                 redistributing a hash-partitioned operator without migrating its \
                 state would lose results"
                    .into(),
            ));
        }

        if plan
            .sources
            .iter()
            .filter(|s| s.stream == StreamTag::Build)
            .count()
            > 1
        {
            // State extracted from evaluators loses its source
            // attribution; re-logging it assumes a single build source
            // (sequence numbers are only unique per table).
            return Err(GridError::Execution(
                "plans with more than one build-stream source are not supported".into(),
            ));
        }
        let resilient = sim.config.chaos.is_some();
        let mut retry_root = DetRng::seeded(sim.config.seed ^ 0x0072_6574_7279); // "retry"
        let mut sources = Vec::with_capacity(plan.sources.len());
        let mut build_sources = HashSet::new();
        for (idx, spec) in plan.sources.iter().enumerate() {
            sim.env.registry().get(spec.node).map_err(|_| {
                GridError::Schedule(format!("source node {} not registered", spec.node))
            })?;
            let table = sim.catalog.get(&spec.table)?;
            if spec.stream == StreamTag::Build {
                build_sources.insert(idx);
            }
            // Build tuples form downstream operator state and must stay
            // replayable for the whole run. Without a chaos hook their
            // windows simply never close (an unreachable interval); a
            // resilient run instead checkpoints them into a *retained*
            // log, so delivery is tracked for the retry loop while every
            // entry stays available to failure recovery.
            let log = if spec.stream == StreamTag::Build {
                if resilient {
                    RecoveryLog::retained(partitions as usize, sim.config.checkpoint_interval)?
                } else {
                    RecoveryLog::new(partitions as usize, usize::MAX / 2)?
                }
            } else {
                RecoveryLog::new(partitions as usize, sim.config.checkpoint_interval)?
            };
            sources.push(SourceRun {
                node: spec.node,
                stream: spec.stream,
                scan_cost_ms: spec.scan_cost_ms,
                table,
                pos: 0,
                staged: (0..partitions).map(|_| Vec::new()).collect(),
                log,
                epoch: 0,
                resume_at: SimTime::ZERO,
                routed: 0,
                done: false,
                retry_rng: retry_root.fork(idx as u64),
            });
        }
        let all_sources: HashSet<usize> = (0..sources.len()).collect();
        let mut consumers = Vec::with_capacity(stage.nodes.len());
        for (i, &node) in stage.nodes.iter().enumerate() {
            sim.env
                .registry()
                .get(node)
                .map_err(|_| GridError::Schedule(format!("stage node {node} not registered")))?;
            consumers.push(ConsumerRun {
                node,
                partition: PartitionId::new(stage.id, i as u32),
                evaluator: stage.factory.create(i as u32),
                build_queue: VecDeque::new(),
                main_queue: VecDeque::new(),
                step_pending: false,
                idle_since: None,
                eos_remaining: all_sources.clone(),
                finished: false,
                dead: false,
                seen: HashSet::new(),
                inputs: 0,
                outputs: 0,
                batch_inputs: 0,
                batch_cost_ms: 0.0,
                batch_wait_ms: 0.0,
                out_staged: Vec::new(),
                penalty_ms: 0.0,
            });
        }
        let total_rows = sources.iter().map(|s| s.table.len() as u64).sum();
        let obs = if sim.config.obs.enabled {
            Some(Obs::new(sim.config.obs.timeline_capacity))
        } else {
            None
        };
        // Non-finite perturbation phases are rejected samples: they never
        // perturb (Perturbation::apply falls back to the base cost), and
        // the count is surfaced like `detector.rejected_samples`.
        let rejected_perturbations = sim.env.rejected_perturbation_phases();
        if rejected_perturbations > 0 {
            if let Some(o) = &obs {
                o.sink()
                    .incr("env.rejected_perturbations", rejected_perturbations);
            }
        }
        let mut diagnoser =
            Diagnoser::new(stage.id, partitions, router.current_distribution(), adapt);
        let mut responder = Responder::new(adapt);
        if let Some(o) = &obs {
            diagnoser.set_metric_sink(o.sink());
            responder.set_metric_sink(o.sink());
        }
        let (routed_ctr, processed_ctr) = obs
            .as_ref()
            .map(|o| {
                (
                    o.metrics().counter("sim.tuples_routed"),
                    o.metrics().counter("sim.tuples_processed"),
                )
            })
            .unzip();
        let report = ExecutionReport {
            per_partition_processed: vec![0; partitions as usize],
            results: Vec::new(),
            ..Default::default()
        };
        Ok(Run {
            env: &sim.env,
            config: &sim.config,
            adapt,
            plan,
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: DetRng::seeded(sim.config.seed),
            stage_id: stage.id,
            buffer_tuples: stage.exchange.buffer_tuples,
            router,
            sources,
            build_sources,
            consumers,
            buffers: HashMap::new(),
            result_buffers: HashMap::new(),
            next_buffer: 0,
            detectors: HashMap::new(),
            diagnoser,
            responder,
            diag_node: plan.collect_node,
            total_rows,
            collected: 0,
            resilient,
            dedup_results: resilient,
            seen_results: HashSet::new(),
            last_result_at: SimTime::ZERO,
            last_finish_at: SimTime::ZERO,
            report,
            recalls: 0,
            monitoring_on: adapt.monitoring_active(),
            adaptivity_on: adapt.enabled,
            obs,
            routed_ctr,
            processed_ctr,
        })
    }

    // -- chaos seams ------------------------------------------------------
    //
    // Each helper consults the installed fault hook and falls back to
    // the pass-through default, so runs without a hook are identical to
    // uninstrumented ones.

    fn chaos_data(&self, source: usize, dest: u32) -> NetAction {
        match &self.config.chaos {
            Some(h) => h.on_data(source, dest as usize),
            None => NetAction::Deliver,
        }
    }

    fn chaos_ack(&self, source: usize, worker: usize) -> NetAction {
        match &self.config.chaos {
            Some(h) => h.on_ack(source, worker),
            None => NetAction::Deliver,
        }
    }

    fn chaos_notify(&self, kind: NotifyKind, index: usize) -> bool {
        match &self.config.chaos {
            Some(h) => h.on_notification(kind, index),
            None => true,
        }
    }

    /// Extra virtual-time stall injected at `site`; guarded so a hook
    /// cannot push costs negative or non-finite.
    fn chaos_stall(&self, site: StallSite, index: usize) -> f64 {
        match &self.config.chaos {
            Some(h) => {
                let v = h.stall_ms(site, index);
                if v.is_finite() && v > 0.0 {
                    v
                } else {
                    0.0
                }
            }
            None => 0.0,
        }
    }

    /// Records a timeline event (no-op when obs is disabled; the zero
    /// sequence number is never read in that case).
    fn obs_record(&self, at: SimTime, kind: TimelineKind) -> u64 {
        match &self.obs {
            Some(obs) => obs.record(at.as_millis(), None, kind),
            None => 0,
        }
    }

    fn bootstrap(&mut self) {
        for s in 0..self.sources.len() {
            self.queue
                .schedule(SimTime::ZERO, Event::SourceStep { source: s });
        }
    }

    fn drive(&mut self) -> Result<()> {
        while let Some((at, event)) = self.queue.pop() {
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            match event {
                Event::SourceStep { source } => self.source_step(source)?,
                Event::BufferArrive { buffer } => self.buffer_arrive(buffer)?,
                Event::ConsumerStep { consumer } => self.consumer_step(consumer)?,
                Event::AckArrive {
                    source,
                    dest,
                    cp,
                    epoch,
                } => self.ack_arrive(source, dest, cp, epoch),
                Event::CostToDiagnoser { update, notify_seq } => {
                    self.cost_to_diagnoser(update, notify_seq)
                }
                Event::CommToDiagnoser { update, notify_seq } => {
                    self.comm_to_diagnoser(update, notify_seq)
                }
                Event::ApplyAdaptation {
                    command,
                    diagnosis_seq,
                } => self.apply_adaptation(command, diagnosis_seq)?,
                Event::CollectArrive { buffer } => self.collect_arrive(buffer),
                Event::NodeFail { node } => self.node_fail(node)?,
                Event::RetryCheck { source, attempt } => self.retry_check(source, attempt)?,
            }
        }
        Ok(())
    }

    // -- sources ----------------------------------------------------------

    fn source_step(&mut self, s: usize) -> Result<()> {
        let resume_at = self.sources[s].resume_at;
        if self.now < resume_at {
            self.queue
                .schedule(resume_at, Event::SourceStep { source: s });
            return Ok(());
        }
        if self.sources[s].pos >= self.sources[s].table.len() {
            self.finish_source(s)?;
            return Ok(());
        }
        let node = self.sources[s].node;
        let stream = self.sources[s].stream;
        let row = self.sources[s].table.rows()[self.sources[s].pos].clone();
        self.sources[s].pos += 1;
        let scan = self.env.effective_cost_ms(
            node,
            self.sources[s].scan_cost_ms,
            self.now,
            &mut self.rng,
        )? + self.chaos_stall(StallSite::Producer, s);
        let mut t = self.now.offset(scan);
        let dest = self.router.route(stream, &row)?;
        let marker = self.sources[s].log.record(dest, (stream, row.clone()))?;
        self.sources[s].routed += 1;
        if let Some(ctr) = &self.routed_ctr {
            ctr.add(1);
        }
        self.sources[s].staged[dest as usize].push(Item::Tuple {
            stream,
            tuple: row,
            source: s,
            migrated: false,
        });
        if let Some(cp) = marker {
            let epoch = self.sources[s].epoch;
            self.sources[s].staged[dest as usize].push(Item::Checkpoint {
                source: s,
                cp: cp.id,
                epoch,
            });
        }
        // Resilient runs flush exactly at window boundaries: an ack is
        // trusted to mean "the whole window arrived", which only holds
        // if a marker can never be delivered while the head of its
        // window was lost in an earlier, separately dropped buffer.
        // Fault-free runs keep the plain size-based batching.
        let flush = if self.resilient {
            marker.is_some()
        } else {
            self.sources[s].staged[dest as usize].len() >= self.buffer_tuples
        };
        if flush {
            t = self.send_staged(s, dest, t)?;
        }
        self.queue.schedule(t, Event::SourceStep { source: s });
        Ok(())
    }

    /// Sends the staged buffer of source `s` for destination `dest`,
    /// returning the time when the producer becomes free again.
    fn send_staged(&mut self, s: usize, dest: u32, at: SimTime) -> Result<SimTime> {
        let items = std::mem::take(&mut self.sources[s].staged[dest as usize]);
        if items.is_empty() {
            return Ok(at);
        }
        let node = self.sources[s].node;
        let dest_node = self.consumers[dest as usize].node;
        let tuples = items
            .iter()
            .filter(|i| matches!(i, Item::Tuple { .. }))
            .count();
        let bytes: usize = items.iter().map(Item::payload_bytes).sum();
        let send_cost = self.env.buffer_cost_ms(node, dest_node, tuples, bytes);
        let mut done = at.offset(send_cost);
        match self.chaos_data(s, dest) {
            NetAction::Deliver => {
                let id = self.alloc_buffer(dest, items);
                self.queue
                    .schedule(done, Event::BufferArrive { buffer: id });
            }
            NetAction::DelayMs(extra) => {
                let arrive = done.offset(if extra.is_finite() {
                    extra.max(0.0)
                } else {
                    0.0
                });
                let id = self.alloc_buffer(dest, items);
                self.queue
                    .schedule(arrive, Event::BufferArrive { buffer: id });
            }
            NetAction::Duplicate => {
                // Redelivered data: the consumer's (source, seq) filter
                // absorbs the extra copy, and a duplicated checkpoint
                // marker is absorbed by the log as a duplicate ack.
                let copy = items.clone();
                let id = self.alloc_buffer(dest, items);
                self.queue
                    .schedule(done, Event::BufferArrive { buffer: id });
                let id = self.alloc_buffer(dest, copy);
                self.queue
                    .schedule(done, Event::BufferArrive { buffer: id });
            }
            NetAction::Drop => {
                // Lost data: the covered windows stay unacknowledged in
                // the recovery log, and the producer's retry loop
                // retransmits them after backoff (only an installed
                // chaos hook can return `Drop`, and a hook always puts
                // the run in resilient mode).
            }
        }
        if self.monitoring_on && tuples > 0 {
            done = done.offset(self.config.monitor_cost_ms);
            let event = M2 {
                query: self.plan.query,
                producer: ProducerId::Source(s as u32),
                recipient: PartitionId::new(self.stage_id, dest),
                send_cost_ms: send_cost,
                tuples_in_buffer: tuples,
                at: done,
            };
            self.report.raw_m2_events += 1;
            // A lost notification was still generated (and paid for);
            // the detector simply never sees it.
            if self.chaos_notify(NotifyKind::M2, s) {
                self.feed_detector_m2(node, event);
            }
        }
        Ok(done)
    }

    fn finish_source(&mut self, s: usize) -> Result<()> {
        if self.sources[s].done {
            return Ok(());
        }
        self.sources[s].done = true;
        // Build streams are never checkpointed in non-resilient runs:
        // their tuples form downstream operator state and the pruning
        // log would discard the only copy failure recovery and
        // retrospective state migration rely on. Resilient runs use a
        // retaining log for build streams (acks mark delivery without
        // pruning), so every stream can be checkpointed and covered by
        // the delivery-retry loop.
        let checkpointed = self.resilient || self.sources[s].stream != StreamTag::Build;
        let mut t = self.now;
        for dest in 0..self.consumers.len() as u32 {
            if checkpointed {
                if let Some(cp) = self.sources[s].log.force_checkpoint(dest)? {
                    let epoch = self.sources[s].epoch;
                    self.sources[s].staged[dest as usize].push(Item::Checkpoint {
                        source: s,
                        cp: cp.id,
                        epoch,
                    });
                }
            }
            // Resilient runs withhold end-of-stream: a dropped Eos would
            // strand the consumer, so it is released chaos-exempt only
            // once the retry loop resolves (all windows acknowledged,
            // or the retry budget is spent and gaps are recorded).
            if !self.resilient {
                self.sources[s].staged[dest as usize].push(Item::Eos { source: s });
            }
            t = self.send_staged(s, dest, t)?;
        }
        if self.resilient {
            let delay = self.retry_delay_ms(s, 0);
            self.queue.schedule(
                t.offset(delay),
                Event::RetryCheck {
                    source: s,
                    attempt: 0,
                },
            );
        }
        Ok(())
    }

    /// Jittered exponential backoff before retry round `attempt`:
    /// `retry_base_ms * 2^min(attempt, 10)` scaled deterministically into
    /// `[0.5, 1.0)` by the source's forked jitter stream (mirrors the
    /// threaded executor's `RetryBackoff`).
    fn retry_delay_ms(&mut self, s: usize, attempt: u32) -> f64 {
        let nominal = self.config.retry_base_ms * f64::from(1u32 << attempt.min(10));
        nominal * (0.5 + 0.5 * self.sources[s].retry_rng.uniform())
    }

    /// Resilient-mode delivery retry: retransmits any checkpoint window
    /// that has not been acknowledged, then either schedules the next
    /// round, or — once everything is acknowledged or the retry budget
    /// is spent — releases end-of-stream.
    fn retry_check(&mut self, s: usize, attempt: u32) -> Result<()> {
        // A retrospective recall pauses producers; retrying mid-recall
        // would race the redistribution's own log replay.
        let resume_at = self.sources[s].resume_at;
        if self.now < resume_at {
            self.queue
                .schedule(resume_at, Event::RetryCheck { source: s, attempt });
            return Ok(());
        }
        let mut pending: Vec<(u32, UndeliveredWindows)> = Vec::new();
        for dest in 0..self.consumers.len() as u32 {
            if self.consumers[dest as usize].dead {
                continue; // node-failure recovery owns those windows
            }
            let windows = self.sources[s].log.undelivered_windows(dest);
            if !windows.is_empty() {
                pending.push((dest, windows));
            }
        }
        if pending.is_empty() {
            self.release_eos(s);
            return Ok(());
        }
        if attempt >= self.config.retry_max {
            for (dest, windows) in pending {
                let tuples: u64 = windows.iter().map(|(_, w)| w.len() as u64).sum();
                let gap = DeliveryGap {
                    source: s,
                    dest: dest as usize,
                    windows: windows.len() as u64,
                    tuples,
                };
                self.report.note(
                    self.now,
                    format!(
                        "delivery gap: source {s} -> partition {dest}, {} windows \
                         ({tuples} tuples) unacknowledged after {attempt} retries",
                        windows.len()
                    ),
                );
                self.report.delivery_gaps.push(gap);
            }
            self.release_eos(s);
            return Ok(());
        }
        let epoch = self.sources[s].epoch;
        let mut t = self.now;
        for (dest, windows) in pending {
            for (cp, tuples) in windows {
                for (stream, tuple) in tuples {
                    self.report.tuples_retransmitted += 1;
                    self.sources[s].staged[dest as usize].push(Item::Tuple {
                        stream,
                        tuple,
                        source: s,
                        // Retransmissions are first-class deliveries: the
                        // consumer's dedup filter decides whether the
                        // original copy already arrived.
                        migrated: false,
                    });
                }
                self.sources[s].staged[dest as usize].push(Item::Checkpoint {
                    source: s,
                    cp: cp.id,
                    epoch,
                });
            }
            // Chaos-exposed on purpose: a retransmission can be dropped
            // again, which is what the escalating backoff is for.
            t = self.send_staged(s, dest, t)?;
        }
        let delay = self.retry_delay_ms(s, attempt + 1);
        self.queue.schedule(
            t.offset(delay),
            Event::RetryCheck {
                source: s,
                attempt: attempt + 1,
            },
        );
        Ok(())
    }

    /// Delivers end-of-stream for source `s` to every live consumer,
    /// bypassing the chaos seam: the retry loop has already resolved
    /// every window, and a dropped Eos would hang the run rather than
    /// corrupt it — there is nothing left for the fault model to probe.
    fn release_eos(&mut self, s: usize) {
        let node = self.sources[s].node;
        for dest in 0..self.consumers.len() as u32 {
            if self.consumers[dest as usize].dead {
                continue;
            }
            let dest_node = self.consumers[dest as usize].node;
            let cost = self.env.buffer_cost_ms(node, dest_node, 0, 0);
            let id = self.alloc_buffer(dest, vec![Item::Eos { source: s }]);
            self.queue
                .schedule(self.now.offset(cost), Event::BufferArrive { buffer: id });
        }
    }

    // -- buffers ----------------------------------------------------------

    fn alloc_buffer(&mut self, dest: u32, items: Vec<Item>) -> u64 {
        let id = self.next_buffer;
        self.next_buffer += 1;
        self.buffers.insert(id, (dest, items));
        id
    }

    fn buffer_arrive(&mut self, id: u64) -> Result<()> {
        let Some((dest, items)) = self.buffers.remove(&id) else {
            return Ok(()); // rerouted away entirely
        };
        let c = &mut self.consumers[dest as usize];
        if c.dead {
            return Ok(()); // the partition is gone; the logs recover it
        }
        for item in items {
            c.enqueue(item, &self.build_sources);
        }
        if c.finished {
            c.finished = false;
        }
        if !c.step_pending {
            if let Some(idle_since) = c.idle_since.take() {
                c.batch_wait_ms += self.now.since(idle_since);
            }
            c.step_pending = true;
            self.queue
                .schedule(self.now, Event::ConsumerStep { consumer: dest });
        }
        Ok(())
    }

    // -- consumers --------------------------------------------------------

    fn consumer_step(&mut self, ci: u32) -> Result<()> {
        let i = ci as usize;
        self.consumers[i].step_pending = false;
        if self.consumers[i].dead {
            return Ok(());
        }
        let item = {
            let c = &mut self.consumers[i];
            c.next_item(&self.build_sources)
        };
        match item {
            None => {
                let c = &mut self.consumers[i];
                if c.eos_remaining.is_empty() && c.queues_empty() {
                    self.finish_consumer(ci)?;
                } else {
                    c.idle_since = Some(self.now);
                }
                Ok(())
            }
            Some(Item::Eos { source }) => {
                self.consumers[i].eos_remaining.remove(&source);
                self.reschedule_step(ci, self.now);
                Ok(())
            }
            Some(Item::Checkpoint { source, cp, epoch }) => {
                // Release the outputs of the acknowledged window first:
                // once the producer prunes its log, the only copies of
                // those tuples' results must be at (or on the way to)
                // the collector.
                let t = self.flush_results(ci, self.now);
                if epoch == self.sources[source].epoch {
                    let lat = self
                        .env
                        .control_cost_ms(self.consumers[i].node, self.sources[source].node);
                    let ack = Event::AckArrive {
                        source,
                        dest: ci,
                        cp,
                        epoch,
                    };
                    // Acks are best-effort control traffic: the log keeps
                    // the covered entries until a later ack supersedes a
                    // lost one, so losing/duplicating them must be safe.
                    match self.chaos_ack(source, i) {
                        NetAction::Deliver => self.queue.schedule(t.offset(lat), ack),
                        NetAction::DelayMs(extra) => {
                            let extra = if extra.is_finite() {
                                extra.max(0.0)
                            } else {
                                0.0
                            };
                            self.queue.schedule(t.offset(lat + extra), ack);
                        }
                        NetAction::Duplicate => {
                            self.queue.schedule(t.offset(lat), ack.clone());
                            self.queue.schedule(t.offset(lat), ack);
                        }
                        NetAction::Drop => {}
                    }
                }
                self.reschedule_step(ci, t);
                Ok(())
            }
            Some(Item::Tuple {
                stream,
                tuple,
                source,
                migrated,
            }) => {
                if self.resilient {
                    // Effectively-once processing over at-least-once
                    // transport: a redelivered copy (chaos duplication or
                    // retransmission racing the original) is recognised
                    // by (source, seq) and skipped, paying only the
                    // receive cost. Migrated tuples are recorded but
                    // never skipped: a recall or failure replay moves a
                    // tuple to a partition that must genuinely process
                    // it, even if it saw the same (source, seq) before a
                    // bucket ping-pong.
                    let fresh = self.consumers[i].seen.insert((source, tuple.seq()));
                    if !fresh && !migrated {
                        self.reschedule_step(ci, self.now.offset(self.config.receive_cost_ms));
                        return Ok(());
                    }
                    // A retransmission targets the window's *original*
                    // destination — by the time it lands, a recall may
                    // have moved the tuple's bucket elsewhere. Producer-
                    // side re-routing would be unsound (a processed-but-
                    // unacknowledged tuple re-routed to the new owner
                    // bypasses the old owner's dedup and duplicates
                    // output), so the stale copy is forwarded here, past
                    // the dedup filter: fresh means the original never
                    // arrived, and the current owner must process it.
                    // The recovery-log entry follows the tuple so the
                    // log invariant (every unacknowledged tuple logged
                    // under its current owner) keeps holding.
                    if !migrated && fresh && self.router.bucket_count().is_some() {
                        let owner = self.router.route(stream, &tuple)?;
                        if owner != ci {
                            let seq = tuple.seq();
                            let drained = self.sources[source]
                                .log
                                .drain_matching(ci, |(s, t)| *s == stream && t.seq() == seq)?;
                            for entry in drained {
                                let _ = self.sources[source].log.record(owner, entry)?;
                            }
                            self.report.tuples_redistributed += 1;
                            let from_node = self.consumers[i].node;
                            let to_node = self.consumers[owner as usize].node;
                            let bytes = tuple.byte_size();
                            let cost = self.env.buffer_cost_ms(from_node, to_node, 1, bytes);
                            let id = self.alloc_buffer(
                                owner,
                                vec![Item::Tuple {
                                    stream,
                                    tuple,
                                    source,
                                    migrated: true,
                                }],
                            );
                            self.queue.schedule(
                                self.now.offset(self.config.receive_cost_ms + cost),
                                Event::BufferArrive { buffer: id },
                            );
                            self.reschedule_step(ci, self.now.offset(self.config.receive_cost_ms));
                            return Ok(());
                        }
                    }
                }
                self.process_tuple(ci, stream, tuple)
            }
        }
    }

    fn process_tuple(&mut self, ci: u32, stream: StreamTag, tuple: Tuple) -> Result<()> {
        let i = ci as usize;
        let node = self.consumers[i].node;
        let outcome = self.consumers[i].evaluator.process(stream, &tuple)?;
        let proc =
            self.env
                .effective_cost_ms(node, outcome.base_cost_ms, self.now, &mut self.rng)?;
        let mut cost = proc + self.config.receive_cost_ms;
        if self.adaptivity_on {
            cost += self.config.adapt_overhead_ms;
            if self.adapt.response == ResponsePolicy::R1 {
                cost += self.config.r1_overhead_ms;
            }
        }
        cost += std::mem::take(&mut self.consumers[i].penalty_ms);
        cost += self.chaos_stall(StallSite::Consumer, i);

        let out_count = outcome.outputs.len() as u64;
        self.consumers[i].out_staged.extend(outcome.outputs);
        self.consumers[i].inputs += 1;
        self.consumers[i].outputs += out_count;
        self.consumers[i].batch_inputs += 1;
        self.consumers[i].batch_cost_ms += cost;
        self.report.per_partition_processed[i] += 1;
        if let Some(ctr) = &self.processed_ctr {
            ctr.add(1);
        }

        let mut t = self.now.offset(cost);
        if self.consumers[i].out_staged.len() >= self.buffer_tuples {
            t = self.flush_results(ci, t);
        }
        if self.monitoring_on
            && self.consumers[i].batch_inputs >= self.adapt.monitoring_interval_tuples
        {
            t = t.offset(self.config.monitor_cost_ms);
            self.emit_m1(ci, t);
        }
        self.reschedule_step(ci, t);
        Ok(())
    }

    fn reschedule_step(&mut self, ci: u32, at: SimTime) {
        let c = &mut self.consumers[ci as usize];
        if !c.step_pending {
            c.step_pending = true;
            self.queue
                .schedule(at, Event::ConsumerStep { consumer: ci });
        }
    }

    fn flush_results(&mut self, ci: u32, at: SimTime) -> SimTime {
        let i = ci as usize;
        let staged = std::mem::take(&mut self.consumers[i].out_staged);
        if staged.is_empty() {
            return at;
        }
        let bytes: usize = staged.iter().map(Tuple::byte_size).sum();
        let cost = self.env.buffer_cost_ms(
            self.consumers[i].node,
            self.plan.collect_node,
            staged.len(),
            bytes,
        );
        let done = at.offset(cost);
        let id = self.next_buffer;
        self.next_buffer += 1;
        self.result_buffers.insert(id, staged);
        self.queue
            .schedule(done, Event::CollectArrive { buffer: id });
        done
    }

    fn finish_consumer(&mut self, ci: u32) -> Result<()> {
        let t = self.flush_results(ci, self.now);
        let c = &mut self.consumers[ci as usize];
        if !c.finished {
            c.finished = true;
            self.last_finish_at = self.last_finish_at.max(t);
        }
        Ok(())
    }

    fn emit_m1(&mut self, ci: u32, at: SimTime) {
        let i = ci as usize;
        let c = &mut self.consumers[i];
        let inputs = c.batch_inputs.max(1) as f64;
        let event = M1 {
            query: self.plan.query,
            partition: c.partition,
            node: c.node,
            cost_per_tuple_ms: c.batch_cost_ms / inputs,
            leaf_wait_ms: c.batch_wait_ms / inputs,
            selectivity: if c.inputs == 0 {
                1.0
            } else {
                c.outputs as f64 / c.inputs as f64
            },
            tuples_produced: c.outputs,
            at,
        };
        c.batch_inputs = 0;
        c.batch_cost_ms = 0.0;
        c.batch_wait_ms = 0.0;
        let node = c.node;
        self.report.raw_m1_events += 1;
        if self.chaos_notify(NotifyKind::M1, i) {
            self.feed_detector_m1(node, event);
        }
    }

    // -- adaptivity control plane -----------------------------------------

    fn detector(&mut self, node: NodeId) -> &mut MonitoringEventDetector {
        let adapt = self.adapt;
        let sink = self.obs.as_ref().map(|o| o.sink());
        self.detectors.entry(node).or_insert_with(|| {
            let mut d = MonitoringEventDetector::new(adapt);
            if let Some(sink) = sink {
                d.set_metric_sink(sink);
            }
            d
        })
    }

    fn feed_detector_m1(&mut self, node: NodeId, event: M1) {
        let at = event.at;
        let output = self.detector(node).on_m1(&event);
        let raw_seq = self.obs_record(
            at,
            TimelineKind::RawM1 {
                partition: event.partition.to_string(),
                node: node.to_string(),
                cost_per_tuple_ms: event.cost_per_tuple_ms,
                leaf_wait_ms: event.leaf_wait_ms,
                gate_fired: !matches!(output, DetectorOutput::Quiet),
            },
        );
        self.route_detector_output(node, output, at, raw_seq);
    }

    fn feed_detector_m2(&mut self, node: NodeId, event: M2) {
        let at = event.at;
        let output = self.detector(node).on_m2(&event);
        let raw_seq = self.obs_record(
            at,
            TimelineKind::RawM2 {
                producer: event.producer.to_string(),
                recipient: event.recipient.to_string(),
                cost_per_tuple_ms: event.cost_per_tuple_ms(),
                gate_fired: !matches!(output, DetectorOutput::Quiet),
            },
        );
        self.route_detector_output(node, output, at, raw_seq);
    }

    fn route_detector_output(
        &mut self,
        node: NodeId,
        output: DetectorOutput,
        at: SimTime,
        raw_seq: u64,
    ) {
        let lat = self.env.control_cost_ms(node, self.diag_node) + self.config.control_extra_ms;
        match output {
            DetectorOutput::Quiet => {}
            DetectorOutput::Cost(update) => {
                let notify_seq = self.obs_record(
                    at,
                    TimelineKind::DetectorNotify {
                        scope: update.partition.to_string(),
                        avg_cost_ms: update.avg_cost_ms,
                        window_len: update.window_len,
                        raw_seq,
                    },
                );
                self.queue.schedule(
                    at.offset(lat),
                    Event::CostToDiagnoser { update, notify_seq },
                );
            }
            DetectorOutput::Comm(update) => {
                let notify_seq = self.obs_record(
                    at,
                    TimelineKind::DetectorNotify {
                        scope: format!("{}->{}", update.producer, update.recipient),
                        avg_cost_ms: update.avg_cost_per_tuple_ms,
                        window_len: update.window_len,
                        raw_seq,
                    },
                );
                self.queue.schedule(
                    at.offset(lat),
                    Event::CommToDiagnoser { update, notify_seq },
                );
            }
        }
    }

    /// Estimated query progress, in the spirit of the paper's Responder
    /// "contacting all the evaluators that produce data". The relevant
    /// notion depends on the response policy: a prospective (R2)
    /// adaptation only affects tuples not yet routed, so progress is the
    /// routed fraction; a retrospective (R1) adaptation can still recall
    /// queued tuples, so progress is the *processed* fraction.
    fn progress(&self) -> f64 {
        if self.total_rows == 0 {
            return 1.0;
        }
        let amount: u64 = if self.adapt.response == ResponsePolicy::R1 {
            self.consumers.iter().map(|c| c.inputs).sum()
        } else {
            self.sources.iter().map(|s| s.routed).sum()
        };
        // Replayed state and resent tuples inflate the processed count
        // after redistributions/failures; like the paper's estimator
        // this is a heuristic, so clamp rather than track identity.
        (amount as f64 / self.total_rows as f64).min(1.0)
    }

    fn cost_to_diagnoser(&mut self, update: CostUpdate, notify_seq: u64) {
        if let Some(imbalance) = self.diagnoser.on_cost_update(&update) {
            self.consider(imbalance, notify_seq);
        }
    }

    fn comm_to_diagnoser(&mut self, update: CommUpdate, notify_seq: u64) {
        if let Some(imbalance) = self.diagnoser.on_comm_update(&update) {
            self.consider(imbalance, notify_seq);
        }
    }

    fn consider(&mut self, imbalance: gridq_adapt::Imbalance, notify_seq: u64) {
        let diagnosis_seq = self.obs_record(
            imbalance.at,
            TimelineKind::Diagnosis {
                stage: imbalance.stage.to_string(),
                proposed: imbalance.proposed.weights().to_vec(),
                costs: imbalance.costs.clone(),
                notify_seq,
            },
        );
        // The Responder polls the producing evaluators for progress: one
        // control round trip before the decision takes effect.
        let poll = 2.0 * self.max_control_latency() + self.config.control_extra_ms;
        let progress = self.progress();
        let (decision, cmd) = self.responder.on_imbalance(&imbalance, progress);
        self.obs_record(
            self.now,
            TimelineKind::ResponderDecision {
                decision: decision.as_str().to_string(),
                diagnosis_seq,
            },
        );
        if let Some(cmd) = cmd {
            self.diagnoser
                .set_distribution(cmd.new_distribution.clone());
            let apply_at = self.now.offset(poll + self.max_control_latency());
            self.queue.schedule(
                apply_at,
                Event::ApplyAdaptation {
                    command: cmd,
                    diagnosis_seq,
                },
            );
        }
    }

    fn max_control_latency(&self) -> f64 {
        self.sources
            .iter()
            .map(|s| self.env.control_cost_ms(self.diag_node, s.node))
            .fold(0.0, f64::max)
    }

    fn ack_arrive(&mut self, source: usize, dest: u32, cp: u64, epoch: u64) {
        let s = &mut self.sources[source];
        if epoch != s.epoch {
            return; // stale ack from before a retrospective redistribution
        }
        // Retrospective drains can empty windows; tolerate benign
        // acknowledgement races.
        if s.log.acknowledge(dest, cp).is_ok() {
            self.report.acks_received += 1;
        }
    }

    // -- adaptation deployment ---------------------------------------------

    fn apply_adaptation(&mut self, cmd: AdaptationCommand, diagnosis_seq: u64) -> Result<()> {
        // Dead partitions must never regain weight, whatever the
        // Diagnoser proposed from its (possibly stale) cost picture.
        let mut target = cmd.new_distribution.clone();
        if self.consumers.iter().any(|c| c.dead) {
            let mut weights = target.weights().to_vec();
            for (i, c) in self.consumers.iter().enumerate() {
                if c.dead {
                    weights[i] = 0.0;
                }
            }
            target = gridq_common::DistributionVector::new(&weights)
                .map_err(|_| GridError::Execution("every evaluator node has failed".into()))?;
        }
        let moves = self.router.apply_distribution(&target)?;
        // Keep the Diagnoser's notion of the deployed distribution in
        // sync with what the router actually uses (the clamped target,
        // not the raw proposal).
        self.diagnoser.set_distribution(target.clone());
        let deploy_seq = self.obs_record(
            self.now,
            TimelineKind::Deploy {
                stage: cmd.stage.to_string(),
                weights: target.weights().to_vec(),
                retrospective: cmd.retrospective,
                diagnosis_seq,
            },
        );
        self.report.note(
            self.now,
            format!(
                "adaptation deployed ({}): W' = {:?}",
                if cmd.retrospective { "R1" } else { "R2" },
                cmd.new_distribution
                    .weights()
                    .iter()
                    .map(|w| (w * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>()
            ),
        );
        if cmd.retrospective {
            self.redistribute(&moves, Some(deploy_seq))?;
        }
        // The deployment is fully applied (including any recall) at this
        // point of virtual time; report it back to the Responder so the
        // cooldown runs from completion, as in the threaded substrate.
        self.responder.on_deploy_acknowledged(self.now);
        Ok(())
    }

    /// Retrospective redistribution: recall unprocessed tuples from
    /// consumer queues, in-flight buffers, and producer staging, migrate
    /// the operator state of moved hash buckets, and re-send everything
    /// under the new distribution.
    fn redistribute(
        &mut self,
        moves: &[gridq_common::BucketMove],
        deploy_seq: Option<u64>,
    ) -> Result<()> {
        let t = self.now;
        let partitions = self.consumers.len();
        // Each recall is a redistribution epoch; the timeline pair below
        // (present when this recall realises a deploy, absent on the
        // failure-recovery path) brackets it for traceability.
        self.recalls += 1;
        let epoch = self.recalls;
        let state_before = self.report.state_tuples_migrated;
        let redist_before = self.report.tuples_redistributed;
        let start_seq = deploy_seq.map(|deploy_seq| {
            self.obs_record(
                t,
                TimelineKind::RecallStart {
                    stage: self.stage_id.to_string(),
                    epoch,
                    deploy_seq,
                },
            )
        });
        // (from_consumer, to_consumer) -> items; `from == usize::MAX`
        // marks items recalled from producer staging (cost charged to the
        // producer's node instead).
        let mut transfers: HashMap<(usize, usize), Vec<Item>> = HashMap::new();

        // Moved tuples must migrate inside the recovery logs as well:
        // `(source, old_dest) -> seqs` collects what to drain, and the
        // transfer destinations say where to re-record. Checkpoint
        // windows on the old destinations stay valid — `drain_matching`
        // preserves acknowledgement semantics for the entries left
        // behind — so the log invariant holds at all times: every
        // unacknowledged tuple is logged under its current owner.
        let mut moved_log: HashMap<(usize, u32), Vec<(u64, u32)>> = HashMap::new();

        // 1. Migrate operator state of moved buckets.
        if !moves.is_empty() {
            let bucket_count = self
                .router
                .bucket_count()
                .expect("bucket moves imply hash routing");
            let mut by_from: HashMap<u32, Vec<u32>> = HashMap::new();
            for mv in moves {
                by_from.entry(mv.from).or_default().push(mv.bucket);
            }
            for (&from, buckets) in &by_from {
                let extracted = self.consumers[from as usize]
                    .evaluator
                    .extract_state(bucket_count, buckets);
                self.report.state_tuples_migrated += extracted.len() as u64;
                self.consumers[from as usize].penalty_ms +=
                    self.config.discard_cost_ms * extracted.len() as f64;
                // Extracted state loses its original attribution; the
                // build source (there is one per stream in the supported
                // plan shapes) adopts it for re-logging.
                let build_source = self.build_sources.iter().min().copied().unwrap_or(0);
                for (stream, tuple) in extracted {
                    let dest = self.router.route(stream, &tuple)? as usize;
                    moved_log
                        .entry((build_source, from))
                        .or_default()
                        .push((tuple.seq(), dest as u32));
                    transfers
                        .entry((from as usize, dest))
                        .or_default()
                        .push(Item::Tuple {
                            stream,
                            tuple,
                            source: build_source,
                            migrated: true,
                        });
                }
            }
        }

        // 2. Recall unprocessed queued tuples whose destination changed.
        for from in 0..partitions {
            let mut keep_build = VecDeque::new();
            let mut keep_main = VecDeque::new();
            let build_items = std::mem::take(&mut self.consumers[from].build_queue);
            let main_items = std::mem::take(&mut self.consumers[from].main_queue);
            let mut removed = 0u64;
            for item in build_items.into_iter().chain(main_items) {
                match item {
                    Item::Tuple {
                        stream,
                        tuple,
                        source,
                        migrated,
                    } => {
                        let dest = self.router.route(stream, &tuple)? as usize;
                        if dest == from {
                            let item = Item::Tuple {
                                stream,
                                tuple,
                                source,
                                migrated,
                            };
                            match stream {
                                StreamTag::Build => keep_build.push_back(item),
                                _ => keep_main.push_back(item),
                            }
                        } else {
                            removed += 1;
                            moved_log
                                .entry((source, from as u32))
                                .or_default()
                                .push((tuple.seq(), dest as u32));
                            transfers
                                .entry((from, dest))
                                .or_default()
                                .push(Item::Tuple {
                                    stream,
                                    tuple,
                                    source,
                                    migrated: true,
                                });
                        }
                    }
                    other => keep_main.push_back(other),
                }
            }
            self.consumers[from].build_queue = keep_build;
            self.consumers[from].main_queue = keep_main;
            self.consumers[from].penalty_ms += self.config.discard_cost_ms * removed as f64;
            self.report.tuples_redistributed += removed;
        }

        // 3. Reroute in-flight buffers.
        let buffer_ids: Vec<u64> = self.buffers.keys().copied().collect();
        for id in buffer_ids {
            let (dest, items) = self.buffers.remove(&id).expect("buffer id just listed");
            let mut staying = Vec::with_capacity(items.len());
            for item in items {
                match item {
                    Item::Tuple {
                        stream,
                        tuple,
                        source,
                        migrated,
                    } => {
                        let new_dest = self.router.route(stream, &tuple)? as usize;
                        if new_dest == dest as usize {
                            staying.push(Item::Tuple {
                                stream,
                                tuple,
                                source,
                                migrated,
                            });
                        } else {
                            self.report.tuples_redistributed += 1;
                            moved_log
                                .entry((source, dest))
                                .or_default()
                                .push((tuple.seq(), new_dest as u32));
                            transfers
                                .entry((dest as usize, new_dest))
                                .or_default()
                                .push(Item::Tuple {
                                    stream,
                                    tuple,
                                    source,
                                    migrated: true,
                                });
                        }
                    }
                    other => staying.push(other),
                }
            }
            self.buffers.insert(id, (dest, staying));
        }

        // 4. Reroute producer staging. Staged tuples already have log
        // entries under their old destination; when the destination
        // changes, migrate the entry. Staged checkpoint markers keep
        // riding with their (unchanged-destination) windows.
        for s in 0..self.sources.len() {
            let staged: Vec<Vec<Item>> = self.sources[s]
                .staged
                .iter_mut()
                .map(std::mem::take)
                .collect();
            for (old_dest, items) in staged.into_iter().enumerate() {
                for item in items {
                    match item {
                        Item::Tuple { stream, tuple, .. } => {
                            let dest = self.router.route(stream, &tuple)?;
                            if dest as usize != old_dest {
                                moved_log
                                    .entry((s, old_dest as u32))
                                    .or_default()
                                    .push((tuple.seq(), dest));
                                // Re-recorded below via moved_log drain;
                                // the staging buffer moves immediately.
                            }
                            self.sources[s].staged[dest as usize].push(Item::Tuple {
                                stream,
                                tuple,
                                source: s,
                                migrated: false,
                            });
                        }
                        marker @ Item::Checkpoint { .. } => {
                            self.sources[s].staged[old_dest].push(marker);
                        }
                        eos @ Item::Eos { .. } => {
                            self.sources[s].staged[old_dest].push(eos);
                        }
                    }
                }
            }
        }

        // Migrate the recovery-log entries of everything that moved.
        // The re-recorded entries carry no checkpoint markers of their
        // own; later markers on the same destination prune them.
        type MovedEntry = ((usize, u32), Vec<(u64, u32)>);
        let mut moved_pairs: Vec<MovedEntry> = moved_log.into_iter().collect();
        moved_pairs.sort_by_key(|(k, _)| *k);
        for ((source, old_dest), seq_dests) in moved_pairs {
            // Re-record each entry under the destination the transfer
            // actually used — re-routing here would advance the weighted
            // router's credits a second time and could disagree with
            // where the tuple physically went.
            let dest_of: HashMap<u64, u32> = seq_dests.iter().copied().collect();
            let drained = self.sources[source]
                .log
                .drain_matching(old_dest, |(_, tuple)| dest_of.contains_key(&tuple.seq()))?;
            for (stream, tuple) in drained {
                let dest = dest_of[&tuple.seq()];
                let _ = self.sources[source].log.record(dest, (stream, tuple))?;
            }
        }

        // 5. Ship transfers: build items first so join state is
        // re-established before any probe of the same bucket.
        let mut latest_arrival = t;
        let mut pairs: Vec<((usize, usize), Vec<Item>)> = transfers.into_iter().collect();
        pairs.sort_by_key(|((from, to), _)| (*from, *to));
        for ((from, to), mut items) in pairs {
            items.sort_by_key(|item| match item {
                Item::Tuple {
                    stream: StreamTag::Build,
                    ..
                } => 0u8,
                _ => 1u8,
            });
            let from_node = self.consumers[from].node;
            let to_node = self.consumers[to].node;
            let tuples = items.len();
            let bytes: usize = items.iter().map(Item::payload_bytes).sum();
            let cost = self.env.buffer_cost_ms(from_node, to_node, tuples, bytes)
                + self.config.redistribute_cost_ms * tuples as f64;
            let arrive = t.offset(cost);
            latest_arrival = latest_arrival.max(arrive);
            let id = self.alloc_buffer(to as u32, items);
            self.queue
                .schedule(arrive, Event::BufferArrive { buffer: id });
        }

        // 6. Pause sources until migrated items have landed, so that
        // newly routed tuples cannot overtake the state they depend on.
        for s in &mut self.sources {
            s.resume_at = s.resume_at.max(latest_arrival);
        }

        // Wake any idle consumers whose queues changed.
        for ci in 0..partitions as u32 {
            let c = &mut self.consumers[ci as usize];
            if !c.step_pending && !c.queues_empty() {
                if let Some(idle_since) = c.idle_since.take() {
                    c.batch_wait_ms += t.since(idle_since);
                }
                c.step_pending = true;
                self.queue.schedule(t, Event::ConsumerStep { consumer: ci });
            }
        }
        if let Some(start_seq) = start_seq {
            self.obs_record(
                t,
                TimelineKind::RecallFinish {
                    epoch,
                    state_tuples_migrated: self.report.state_tuples_migrated - state_before,
                    tuples_recalled: self.report.tuples_redistributed - redist_before,
                    start_seq,
                },
            );
        }
        Ok(())
    }

    // -- collection ---------------------------------------------------------

    fn collect_arrive(&mut self, id: u64) {
        let Some(tuples) = self.result_buffers.remove(&id) else {
            return;
        };
        self.last_result_at = self.last_result_at.max(self.now);
        for tuple in tuples {
            if self.dedup_results {
                // At-least-once redelivery after a failure: a result is
                // identified by the driving tuple's sequence number plus
                // its value content (joins emit several results per
                // probe sequence number).
                let mut value_hash = 0u64;
                for v in tuple.values() {
                    value_hash = value_hash.rotate_left(7).wrapping_add(v.stable_hash());
                }
                if !self.seen_results.insert((tuple.seq(), value_hash)) {
                    self.report.duplicates_dropped += 1;
                    continue;
                }
            }
            self.collected += 1;
            if self.config.collect_results {
                self.report.results.push(tuple);
            }
        }
    }

    // -- failure recovery ---------------------------------------------------

    /// Kills every partition hosted on `node` and recovers its
    /// unacknowledged work from the producers' recovery logs.
    fn node_fail(&mut self, node: NodeId) -> Result<()> {
        let t = self.now;
        let dead_now: Vec<usize> = self
            .consumers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.node == node && !c.dead)
            .map(|(i, _)| i)
            .collect();
        if dead_now.is_empty() {
            return Ok(());
        }
        self.report.nodes_failed += 1;
        self.report.note(
            t,
            format!("node {node} failed ({} partitions lost)", dead_now.len()),
        );
        // One NodeDown per lost partition; the matching Failover record
        // below links back here via `down_seq` so the timeline shows
        // each death paired with exactly one completed recovery.
        let mut down_seqs: HashMap<usize, u64> = HashMap::new();
        for &ci in &dead_now {
            let seq = self.obs_record(
                t,
                TimelineKind::NodeDown {
                    partition: PartitionId::new(self.stage_id, ci as u32).to_string(),
                },
            );
            down_seqs.insert(ci, seq);
        }
        for &ci in &dead_now {
            let c = &mut self.consumers[ci];
            c.dead = true;
            c.finished = true;
            c.build_queue.clear();
            c.main_queue.clear();
            c.out_staged.clear();
            c.idle_since = None;
        }
        // Evict detector window/gate state for the lost partitions — the
        // streams will never report again, and the maps must not grow
        // without bound across long sessions. The Diagnoser keeps its
        // cost entries: `assess` needs a complete cost picture, and the
        // distribution clamp below already removes the dead partitions
        // from routing.
        for &ci in &dead_now {
            let pid = PartitionId::new(self.stage_id, ci as u32);
            let query = self.plan.query;
            for d in self.detectors.values_mut() {
                d.retire_partition(query, pid);
            }
        }

        // Drop in-flight tuples addressed to dead partitions: the logs
        // still hold them and the resend below covers them exactly once.
        let dead_set: HashSet<usize> = self
            .consumers
            .iter()
            .enumerate()
            .filter(|(_, c)| c.dead)
            .map(|(i, _)| i)
            .collect();
        let buffer_ids: Vec<u64> = self.buffers.keys().copied().collect();
        for id in buffer_ids {
            if let Some((dest, items)) = self.buffers.get_mut(&id) {
                if dead_set.contains(&(*dest as usize)) {
                    items.retain(|i| !matches!(i, Item::Tuple { .. }));
                }
            }
        }

        // Exclude dead partitions from routing. If every partition is
        // dead the query cannot complete.
        let mut weights = self.router.current_distribution().weights().to_vec();
        for &ci in &dead_set {
            weights[ci] = 0.0;
        }
        let target = gridq_common::DistributionVector::new(&weights)
            .map_err(|_| GridError::Execution("every evaluator node has failed".into()))?;
        let moves = self.router.apply_distribution(&target)?;
        self.diagnoser.set_distribution(target);
        // Bucket moves between *surviving* partitions (rounding effects)
        // migrate state through the normal retrospective path; moves off
        // dead partitions have nothing left to extract — their state is
        // rebuilt from the logs.
        let alive_moves: Vec<gridq_common::BucketMove> = moves
            .iter()
            .filter(|m| !dead_set.contains(&(m.from as usize)))
            .copied()
            .collect();
        if !alive_moves.is_empty() {
            self.redistribute(&alive_moves, None)?;
        }

        // Resend every unacknowledged tuple logged for a dead partition,
        // in two waves: all build-stream buffers land strictly before
        // any probe/single buffer, so resent probes never race the join
        // state they depend on — even across different sources.
        let mut waves: [Vec<(usize, u32, Vec<Item>)>; 2] = [Vec::new(), Vec::new()];
        let mut replayed: HashMap<usize, u64> = HashMap::new();
        for s in 0..self.sources.len() {
            let mut resend: Vec<(StreamTag, Tuple)> = Vec::new();
            for &dead in &dead_set {
                let drained = self.sources[s].log.drain_all(dead as u32)?;
                *replayed.entry(dead).or_default() += drained.len() as u64;
                resend.extend(drained);
            }
            if resend.is_empty() {
                continue;
            }
            resend.sort_by_key(|(_, tuple)| tuple.seq());
            let mut per_dest: [HashMap<u32, Vec<Item>>; 2] = [HashMap::new(), HashMap::new()];
            for (stream, tuple) in resend {
                let dest = self.router.route(stream, &tuple)?;
                let _ = self.sources[s].log.record(dest, (stream, tuple.clone()))?;
                self.report.failure_resent_tuples += 1;
                let wave = usize::from(stream != StreamTag::Build);
                per_dest[wave].entry(dest).or_default().push(Item::Tuple {
                    stream,
                    tuple,
                    source: s,
                    // Replayed work may legitimately revisit a partition
                    // that half-processed the original buffer before the
                    // crash lost it; dedup must not suppress it.
                    migrated: true,
                });
            }
            for (wave, map) in per_dest.into_iter().enumerate() {
                let mut dests: Vec<(u32, Vec<Item>)> = map.into_iter().collect();
                dests.sort_by_key(|(d, _)| *d);
                for (dest, items) in dests {
                    waves[wave].push((s, dest, items));
                }
            }
        }
        let mut latest_arrival = t;
        let mut source_busy: Vec<SimTime> = self
            .sources
            .iter()
            .map(|src| t.max(src.resume_at))
            .collect();
        let mut wave_barrier = t;
        for wave in waves {
            // The second wave starts only after the first has fully
            // landed.
            for busy in &mut source_busy {
                *busy = (*busy).max(wave_barrier);
            }
            let mut wave_end = wave_barrier;
            for (s, dest, items) in wave {
                let from_node = self.sources[s].node;
                let to_node = self.consumers[dest as usize].node;
                let tuples = items.len();
                let bytes: usize = items.iter().map(Item::payload_bytes).sum();
                let cost = self.env.buffer_cost_ms(from_node, to_node, tuples, bytes)
                    + self.config.redistribute_cost_ms * tuples as f64;
                source_busy[s] = source_busy[s].offset(cost);
                wave_end = wave_end.max(source_busy[s]);
                latest_arrival = latest_arrival.max(source_busy[s]);
                let id = self.alloc_buffer(dest, items);
                self.queue
                    .schedule(source_busy[s], Event::BufferArrive { buffer: id });
            }
            wave_barrier = wave_end;
        }
        for (s, busy) in source_busy.into_iter().enumerate() {
            self.sources[s].resume_at = self.sources[s].resume_at.max(busy);
        }
        for src in &mut self.sources {
            src.resume_at = src.resume_at.max(latest_arrival);
        }
        self.report.note(
            t,
            format!(
                "recovery: {} tuples resent from recovery logs",
                self.report.failure_resent_tuples
            ),
        );
        for &ci in &dead_now {
            self.obs_record(
                t,
                TimelineKind::Failover {
                    partition: PartitionId::new(self.stage_id, ci as u32).to_string(),
                    replayed: replayed.get(&ci).copied().unwrap_or(0),
                    down_seq: down_seqs[&ci],
                },
            );
        }
        Ok(())
    }

    fn into_report(mut self) -> ExecutionReport {
        let response = self.last_result_at.max(self.last_finish_at);
        self.report.response_time_ms = response.as_millis();
        self.report.tuples_output = self.collected;
        self.report.detector_notifications =
            self.detectors.values().map(|d| d.notifications_sent).sum();
        self.report.imbalances_reported = self.diagnoser.imbalances_reported;
        self.report.adaptations_deployed = self.responder.adaptations_deployed;
        self.report.declined_near_completion = self.responder.declined_near_completion;
        self.report.declined_cooldown = self.responder.declined_cooldown;
        self.report.final_distribution = self.router.current_distribution().weights().to_vec();
        // Query teardown: record how much adaptivity state was live, then
        // evict it so detector/diagnoser maps return to zero.
        if let Some(obs) = &self.obs {
            let streams: usize = self
                .detectors
                .values()
                .map(MonitoringEventDetector::tracked_streams)
                .sum::<usize>()
                + self.diagnoser.tracked_cost_entries();
            obs.metrics()
                .gauge("adapt.tracked_streams_at_teardown")
                .set(streams as f64);
        }
        let query = self.plan.query;
        for d in self.detectors.values_mut() {
            d.reset_for_query(query);
        }
        self.diagnoser.reset_for_query();
        let after: usize = self
            .detectors
            .values()
            .map(MonitoringEventDetector::tracked_streams)
            .sum::<usize>()
            + self.diagnoser.tracked_cost_entries();
        debug_assert_eq!(after, 0);
        // Post-eviction count: chaos oracles assert this is zero even
        // after injected node crashes (retire_partition + reset must
        // leave nothing tracked).
        if let Some(obs) = &self.obs {
            obs.metrics()
                .gauge("adapt.tracked_streams_after_teardown")
                .set(after as f64);
        }
        self.report.log_audits = self.sources.iter().map(|s| s.log.audit()).collect();
        self.report.obs = self.obs.as_ref().map(Obs::report);
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::Value;

    fn consumer() -> ConsumerRun {
        ConsumerRun {
            node: NodeId::new(1),
            partition: PartitionId::new(SubplanId::new(1), 0),
            evaluator: Box::new(NoopEvaluator {
                schema: gridq_common::Schema::empty(),
            }),
            build_queue: VecDeque::new(),
            main_queue: VecDeque::new(),
            step_pending: false,
            idle_since: None,
            eos_remaining: HashSet::from([0, 1]),
            finished: false,
            dead: false,
            inputs: 0,
            outputs: 0,
            batch_inputs: 0,
            batch_cost_ms: 0.0,
            batch_wait_ms: 0.0,
            out_staged: Vec::new(),
            penalty_ms: 0.0,
            seen: HashSet::new(),
        }
    }

    struct NoopEvaluator {
        schema: gridq_common::Schema,
    }

    impl PartitionEvaluator for NoopEvaluator {
        fn schema(&self) -> &gridq_common::Schema {
            &self.schema
        }

        fn process(
            &mut self,
            _stream: StreamTag,
            _tuple: &Tuple,
        ) -> Result<gridq_engine::evaluator::ProcessOutcome> {
            Ok(gridq_engine::evaluator::ProcessOutcome {
                outputs: Vec::new(),
                base_cost_ms: 0.0,
            })
        }
    }

    fn tuple_item(stream: StreamTag, v: i64, source: usize) -> Item {
        Item::Tuple {
            stream,
            tuple: Tuple::new(vec![Value::Int(v)]),
            source,
            migrated: false,
        }
    }

    #[test]
    fn build_items_processed_before_probes() {
        let mut c = consumer();
        let build_sources = HashSet::from([0usize]);
        c.enqueue(tuple_item(StreamTag::Probe, 1, 1), &build_sources);
        c.enqueue(tuple_item(StreamTag::Build, 2, 0), &build_sources);
        // Build queue has priority.
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Tuple {
                stream: StreamTag::Build,
                ..
            })
        ));
        // Build EOS not yet seen: the probe is held.
        assert!(c.next_item(&build_sources).is_none());
        // After build EOS, the probe flows.
        c.eos_remaining.remove(&0);
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Tuple {
                stream: StreamTag::Probe,
                ..
            })
        ));
    }

    #[test]
    fn eos_skips_ahead_of_held_probes_but_checkpoints_do_not() {
        // Regression test: pulling a checkpoint marker past unprocessed
        // probe tuples would acknowledge (and prune from the recovery
        // log) tuples that were never processed, breaking failure
        // recovery.
        let mut c = consumer();
        let build_sources = HashSet::from([0usize]);
        c.enqueue(tuple_item(StreamTag::Probe, 1, 1), &build_sources);
        c.enqueue(
            Item::Checkpoint {
                source: 1,
                cp: 0,
                epoch: 0,
            },
            &build_sources,
        );
        c.enqueue(Item::Eos { source: 0 }, &build_sources);
        // Probes are held (build not done); the EOS is pulled forward.
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Eos { source: 0 })
        ));
        c.eos_remaining.remove(&0);
        // Now the probe and only then its checkpoint, in FIFO order.
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Tuple {
                stream: StreamTag::Probe,
                ..
            })
        ));
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Checkpoint { cp: 0, .. })
        ));
        assert!(c.next_item(&build_sources).is_none());
        assert!(c.queues_empty());
    }

    #[test]
    fn build_source_checkpoints_ride_the_build_queue() {
        // A build-source marker must not park behind held probe tuples:
        // resilient runs withhold build EOS until the marker is acked,
        // and probes are held until build EOS — a cycle that would only
        // resolve through a retry-budget timeout.
        let mut c = consumer();
        let build_sources = HashSet::from([0usize]);
        c.enqueue(tuple_item(StreamTag::Probe, 1, 1), &build_sources);
        c.enqueue(tuple_item(StreamTag::Build, 2, 0), &build_sources);
        c.enqueue(
            Item::Checkpoint {
                source: 0,
                cp: 0,
                epoch: 0,
            },
            &build_sources,
        );
        // Build tuple first, then its marker — both ahead of the held
        // probe, preserving tuples-before-marker order.
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Tuple {
                stream: StreamTag::Build,
                ..
            })
        ));
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Checkpoint { source: 0, .. })
        ));
        assert!(c.next_item(&build_sources).is_none(), "probe still held");
    }

    #[test]
    fn single_stream_items_flow_without_gating() {
        let mut c = consumer();
        let build_sources = HashSet::new();
        c.enqueue(tuple_item(StreamTag::Single, 1, 0), &build_sources);
        c.enqueue(
            Item::Checkpoint {
                source: 0,
                cp: 0,
                epoch: 0,
            },
            &build_sources,
        );
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Tuple { .. })
        ));
        assert!(matches!(
            c.next_item(&build_sources),
            Some(Item::Checkpoint { .. })
        ));
    }
}
