//! The Diagnoser: the assessment stage.
//!
//! "The Diagnoser gathers information produced by
//! MonitoringEventDetectors to establish whether there is workload
//! imbalance. ... To balance execution, the objective is to allocate a
//! workload `w_i` to each AGQES that is inversely proportional to
//! `c(p_i)`. The Diagnoser computes the balanced vector `W'`. However, it
//! only notifies the Responder ... if there exists a pair ... which
//! exceeds a threshold `thres_a`. This is to avoid triggering adaptations
//! with low expected benefit."

use std::collections::HashMap;
use std::sync::Arc;

use gridq_common::obs::{MetricSink, NullSink};
use gridq_common::{DistributionVector, SimTime, SubplanId};

use crate::config::{AdaptivityConfig, AssessmentPolicy};
use crate::detector::{CommUpdate, CostUpdate};
use crate::notifications::ProducerId;

/// An imbalance diagnosis delivered to the Responder.
#[derive(Debug, Clone, PartialEq)]
pub struct Imbalance {
    /// The partitioned subplan that is imbalanced.
    pub stage: SubplanId,
    /// The proposed balanced distribution `W'`.
    pub proposed: DistributionVector,
    /// The per-partition costs `c(p_i)` that produced the proposal.
    pub costs: Vec<f64>,
    /// Diagnosis time.
    pub at: SimTime,
}

/// Assesses one partitioned subplan for workload imbalance.
#[derive(Debug)]
pub struct Diagnoser {
    stage: SubplanId,
    partitions: u32,
    assessment: AssessmentPolicy,
    thres_a: f64,
    /// The distribution currently deployed ("the Diagnoser is aware of
    /// the current tuple distribution policy").
    current: DistributionVector,
    /// Latest smoothed per-partition processing cost.
    proc_cost: HashMap<u32, f64>,
    /// Latest smoothed per-tuple communication cost per
    /// (producer, recipient-partition).
    comm_cost: HashMap<(ProducerId, u32), f64>,
    sink: Arc<dyn MetricSink>,
    /// Diagnoses emitted.
    pub imbalances_reported: u64,
    /// Updates received.
    pub updates_received: u64,
}

impl Diagnoser {
    /// Creates a diagnoser for a stage with `partitions` partitions and
    /// the given initially-deployed distribution.
    pub fn new(
        stage: SubplanId,
        partitions: u32,
        initial: DistributionVector,
        config: &AdaptivityConfig,
    ) -> Self {
        assert_eq!(initial.len(), partitions as usize);
        Diagnoser {
            stage,
            partitions,
            assessment: config.assessment,
            thres_a: config.thres_a,
            current: initial,
            proc_cost: HashMap::new(),
            comm_cost: HashMap::new(),
            sink: Arc::new(NullSink),
            imbalances_reported: 0,
            updates_received: 0,
        }
    }

    /// Attaches a metrics sink; `NullSink` is used until one is set.
    pub fn set_metric_sink(&mut self, sink: Arc<dyn MetricSink>) {
        self.sink = sink;
    }

    /// The stage this diagnoser watches.
    pub fn stage(&self) -> SubplanId {
        self.stage
    }

    /// The currently deployed distribution (as known to the diagnoser).
    pub fn current_distribution(&self) -> &DistributionVector {
        &self.current
    }

    /// Records that the Responder deployed a new distribution
    /// (`W ← W'`).
    pub fn set_distribution(&mut self, dist: DistributionVector) {
        assert_eq!(dist.len(), self.partitions as usize);
        self.current = dist;
    }

    /// Feeds a processing-cost update from a detector.
    pub fn on_cost_update(&mut self, update: &CostUpdate) -> Option<Imbalance> {
        if update.partition.subplan != self.stage {
            return None;
        }
        self.updates_received += 1;
        self.sink.incr("diagnoser.updates_received", 1);
        self.proc_cost
            .insert(update.partition.index, update.avg_cost_ms);
        self.assess(update.at)
    }

    /// Feeds a communication-cost update from a detector. Only used under
    /// assessment policy A2.
    pub fn on_comm_update(&mut self, update: &CommUpdate) -> Option<Imbalance> {
        if update.recipient.subplan != self.stage {
            return None;
        }
        self.updates_received += 1;
        self.sink.incr("diagnoser.updates_received", 1);
        self.comm_cost.insert(
            (update.producer, update.recipient.index),
            update.avg_cost_per_tuple_ms,
        );
        if self.assessment == AssessmentPolicy::A2 {
            self.assess(update.at)
        } else {
            None
        }
    }

    /// The effective cost per tuple of partition `i` under the configured
    /// assessment policy, if known.
    fn cost_of(&self, i: u32) -> Option<f64> {
        let proc = *self.proc_cost.get(&i)?;
        match self.assessment {
            AssessmentPolicy::A1 => Some(proc),
            AssessmentPolicy::A2 => {
                // Average the latest per-producer delivery costs for this
                // partition; partitions with no reported communication
                // cost (e.g. co-located) contribute zero.
                let (sum, n) = self
                    .comm_cost
                    .iter()
                    .filter(|((_, recipient), _)| *recipient == i)
                    .fold((0.0, 0u32), |(s, n), (_, &c)| (s + c, n + 1));
                let comm = if n == 0 { 0.0 } else { sum / f64::from(n) };
                Some(proc + comm)
            }
        }
    }

    fn assess(&mut self, at: SimTime) -> Option<Imbalance> {
        // Need cost information for every partition before proposing a
        // rebalance: a partition that has not reported yet would be
        // assigned a default cost and could absorb the whole workload.
        let mut costs = Vec::with_capacity(self.partitions as usize);
        for i in 0..self.partitions {
            costs.push(self.cost_of(i)?);
        }
        let proposed = DistributionVector::balanced_for_costs(&costs).ok()?;
        if self.current.max_rel_diff(&proposed) > self.thres_a {
            self.imbalances_reported += 1;
            self.sink.incr("diagnoser.imbalances_reported", 1);
            Some(Imbalance {
                stage: self.stage,
                proposed,
                costs,
                at,
            })
        } else {
            None
        }
    }

    /// Number of cost entries currently tracked (per-partition processing
    /// costs plus per-link communication costs).
    pub fn tracked_cost_entries(&self) -> usize {
        self.proc_cost.len() + self.comm_cost.len()
    }

    /// Drops the cost state of one partition index. Note that the
    /// imbalance assessment requires costs for *every* partition of the
    /// stage, so retiring a live partition suppresses diagnoses until it
    /// reports again — call this only for partitions that left the stage
    /// for good.
    pub fn retire_partition(&mut self, index: u32) {
        self.proc_cost.remove(&index);
        self.comm_cost
            .retain(|(_, recipient), _| *recipient != index);
    }

    /// Drops all tracked cost state. Call at query teardown; counters are
    /// preserved for reporting.
    pub fn reset_for_query(&mut self) {
        self.proc_cost.clear();
        self.comm_cost.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ResponsePolicy;
    use gridq_common::PartitionId;

    fn cost_update(index: u32, cost: f64) -> CostUpdate {
        CostUpdate {
            partition: PartitionId::new(SubplanId::new(1), index),
            avg_cost_ms: cost,
            avg_wait_ms: 0.0,
            selectivity: 1.0,
            window_len: 1,
            at: SimTime::from_millis(10.0),
        }
    }

    fn comm_update(index: u32, cost: f64) -> CommUpdate {
        CommUpdate {
            producer: ProducerId::Source(0),
            recipient: PartitionId::new(SubplanId::new(1), index),
            avg_cost_per_tuple_ms: cost,
            window_len: 1,
            at: SimTime::from_millis(10.0),
        }
    }

    fn diagnoser(assessment: AssessmentPolicy) -> Diagnoser {
        let config = AdaptivityConfig::with_policies(assessment, ResponsePolicy::R2);
        Diagnoser::new(
            SubplanId::new(1),
            2,
            DistributionVector::uniform(2),
            &config,
        )
    }

    #[test]
    fn waits_for_all_partitions() {
        let mut d = diagnoser(AssessmentPolicy::A1);
        // Only one partition has reported: no diagnosis possible.
        assert_eq!(d.on_cost_update(&cost_update(0, 2.0)), None);
        // Second partition reports a 10x cost: diagnosis fires.
        let imb = d.on_cost_update(&cost_update(1, 20.0)).unwrap();
        let w = imb.proposed.weights();
        assert!((w[0] - 10.0 / 11.0).abs() < 1e-9);
        assert!((w[1] - 1.0 / 11.0).abs() < 1e-9);
        assert_eq!(imb.stage, SubplanId::new(1));
    }

    #[test]
    fn balanced_costs_stay_quiet() {
        let mut d = diagnoser(AssessmentPolicy::A1);
        assert_eq!(d.on_cost_update(&cost_update(0, 2.0)), None);
        assert_eq!(d.on_cost_update(&cost_update(1, 2.1)), None); // ~5% off
        assert_eq!(d.imbalances_reported, 0);
    }

    #[test]
    fn set_distribution_rebaselines() {
        let mut d = diagnoser(AssessmentPolicy::A1);
        let _ = d.on_cost_update(&cost_update(0, 2.0));
        let imb = d.on_cost_update(&cost_update(1, 20.0)).unwrap();
        d.set_distribution(imb.proposed.clone());
        // Same costs re-reported: proposal equals current, so quiet.
        assert_eq!(d.on_cost_update(&cost_update(0, 2.0)), None);
        assert_eq!(d.on_cost_update(&cost_update(1, 20.0)), None);
    }

    #[test]
    fn a1_ignores_communication() {
        let mut d = diagnoser(AssessmentPolicy::A1);
        let _ = d.on_cost_update(&cost_update(0, 2.0));
        let _ = d.on_cost_update(&cost_update(1, 2.0));
        // Huge comm cost to partition 1 — ignored by A1.
        assert_eq!(d.on_comm_update(&comm_update(1, 50.0)), None);
        assert_eq!(d.imbalances_reported, 0);
    }

    #[test]
    fn a2_adds_communication() {
        let mut d = diagnoser(AssessmentPolicy::A2);
        let _ = d.on_cost_update(&cost_update(0, 2.0));
        let _ = d.on_cost_update(&cost_update(1, 2.0));
        // Comm cost makes partition 1 effectively 2+6=8 vs 2.
        let imb = d.on_comm_update(&comm_update(1, 6.0)).unwrap();
        let w = imb.proposed.weights();
        assert!(w[0] > 0.7, "weights {w:?}");
        assert_eq!(imb.costs, vec![2.0, 8.0]);
    }

    #[test]
    fn other_stage_updates_ignored() {
        let mut d = diagnoser(AssessmentPolicy::A1);
        let other = CostUpdate {
            partition: PartitionId::new(SubplanId::new(9), 0),
            avg_cost_ms: 100.0,
            avg_wait_ms: 0.0,
            selectivity: 1.0,
            window_len: 1,
            at: SimTime::ZERO,
        };
        assert_eq!(d.on_cost_update(&other), None);
        assert_eq!(d.updates_received, 0);
    }

    #[test]
    fn retire_and_reset_evict_cost_state() {
        let mut d = diagnoser(AssessmentPolicy::A2);
        let _ = d.on_cost_update(&cost_update(0, 2.0));
        let _ = d.on_cost_update(&cost_update(1, 2.0));
        let _ = d.on_comm_update(&comm_update(0, 1.0));
        let _ = d.on_comm_update(&comm_update(1, 1.0));
        assert_eq!(d.tracked_cost_entries(), 4);
        d.retire_partition(1);
        assert_eq!(d.tracked_cost_entries(), 2);
        // With partition 1 retired, assessment is suppressed until it
        // reports again — a retired partition must not be rebalanced onto.
        assert_eq!(d.on_cost_update(&cost_update(0, 50.0)), None);
        d.reset_for_query();
        assert_eq!(d.tracked_cost_entries(), 0);
        assert!(d.updates_received > 0, "counters survive reset");
    }

    #[test]
    fn three_partition_proposal() {
        let config = AdaptivityConfig::default();
        let mut d = Diagnoser::new(
            SubplanId::new(1),
            3,
            DistributionVector::uniform(3),
            &config,
        );
        let _ = d.on_cost_update(&cost_update(0, 1.0));
        let _ = d.on_cost_update(&cost_update(1, 1.0));
        let imb = d.on_cost_update(&cost_update(2, 10.0)).unwrap();
        let w = imb.proposed.weights();
        assert!((w[0] - w[1]).abs() < 1e-12);
        assert!(w[2] < w[0] / 5.0);
    }
}
