//! A publish/subscribe notification bus.
//!
//! The paper's adaptivity components "can subscribe to each other and
//! communicate asynchronously via notifications", which decouples them
//! enough to be distributed across autonomous services. This module
//! provides that fabric for components living in one process (the
//! threaded executor, tests, and examples): publishers enqueue typed
//! notifications on topics; subscribers are drained in FIFO order, and
//! anything they publish while handling a notification is delivered in a
//! later round — asynchronous semantics with deterministic ordering.
//!
//! The virtual-time simulator routes the same notification types through
//! its event queue instead, attaching network control latencies.

use std::collections::VecDeque;

use crate::detector::{CommUpdate, CostUpdate};
use crate::diagnoser::Imbalance;
use crate::notifications::{M1, M2};
use crate::responder::AdaptationCommand;

/// Topics on the bus; one per notification kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Topic {
    /// Raw engine events (M1/M2), consumed by detectors.
    RawMonitoring,
    /// Detector outputs, consumed by Diagnosers.
    CostChanges,
    /// Diagnoser outputs, consumed by Responders.
    Imbalances,
    /// Responder outputs, consumed by exchange producers.
    Adaptations,
}

/// A typed notification carried by the bus.
#[derive(Debug, Clone, PartialEq)]
pub enum Notification {
    /// A raw M1 event.
    RawM1(M1),
    /// A raw M2 event.
    RawM2(M2),
    /// A filtered processing-cost change.
    Cost(CostUpdate),
    /// A filtered communication-cost change.
    Comm(CommUpdate),
    /// A diagnosed imbalance with a proposed distribution.
    Imbalance(Imbalance),
    /// A deployed adaptation command.
    Adaptation(AdaptationCommand),
}

impl Notification {
    /// The topic a notification belongs on.
    pub fn topic(&self) -> Topic {
        match self {
            Notification::RawM1(_) | Notification::RawM2(_) => Topic::RawMonitoring,
            Notification::Cost(_) | Notification::Comm(_) => Topic::CostChanges,
            Notification::Imbalance(_) => Topic::Imbalances,
            Notification::Adaptation(_) => Topic::Adaptations,
        }
    }
}

/// A subscriber callback: receives a notification, may publish more.
pub type SubscriberFn<'a> = Box<dyn FnMut(&Notification, &mut Publisher) + 'a>;

/// Handle through which subscribers publish follow-up notifications.
#[derive(Debug, Default)]
pub struct Publisher {
    outbox: Vec<Notification>,
}

impl Publisher {
    /// Publishes a notification for delivery in a later round.
    pub fn publish(&mut self, n: Notification) {
        self.outbox.push(n);
    }
}

/// A single-process publish/subscribe bus with deterministic FIFO
/// delivery.
#[derive(Default)]
pub struct PubSubBus<'a> {
    subscribers: Vec<(Topic, SubscriberFn<'a>)>,
    queue: VecDeque<Notification>,
    /// Notifications delivered so far.
    pub delivered: u64,
}

impl<'a> PubSubBus<'a> {
    /// Creates an empty bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Subscribes a callback to a topic.
    pub fn subscribe(&mut self, topic: Topic, f: impl FnMut(&Notification, &mut Publisher) + 'a) {
        self.subscribers.push((topic, Box::new(f)));
    }

    /// Publishes a notification.
    pub fn publish(&mut self, n: Notification) {
        self.queue.push_back(n);
    }

    /// Number of undelivered notifications.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Delivers queued notifications until the bus drains (bounded by
    /// `max_rounds` deliveries to guard against feedback loops). Returns
    /// the number delivered.
    pub fn run(&mut self, max_rounds: u64) -> u64 {
        let mut delivered = 0;
        while delivered < max_rounds {
            let Some(n) = self.queue.pop_front() else {
                break;
            };
            let topic = n.topic();
            let mut publisher = Publisher::default();
            for (t, f) in self.subscribers.iter_mut() {
                if *t == topic {
                    f(&n, &mut publisher);
                }
            }
            self.queue.extend(publisher.outbox);
            delivered += 1;
        }
        self.delivered += delivered;
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::{NodeId, PartitionId, QueryId, SimTime, SubplanId};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn m1() -> M1 {
        M1 {
            query: QueryId::new(0),
            partition: PartitionId::new(SubplanId::new(1), 0),
            node: NodeId::new(1),
            cost_per_tuple_ms: 1.0,
            leaf_wait_ms: 0.0,
            selectivity: 1.0,
            tuples_produced: 10,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn delivers_to_matching_topic_only() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let mut bus = PubSubBus::new();
        let seen_raw = Rc::clone(&seen);
        bus.subscribe(Topic::RawMonitoring, move |n, _| {
            seen_raw.borrow_mut().push(n.topic());
        });
        let seen_imb = Rc::clone(&seen);
        bus.subscribe(Topic::Imbalances, move |n, _| {
            seen_imb.borrow_mut().push(n.topic());
        });
        bus.publish(Notification::RawM1(m1()));
        assert_eq!(bus.run(10), 1);
        assert_eq!(seen.borrow().as_slice(), &[Topic::RawMonitoring]);
    }

    #[test]
    fn subscribers_can_republish() {
        let costs = Rc::new(RefCell::new(0u32));
        let mut bus = PubSubBus::new();
        bus.subscribe(Topic::RawMonitoring, |_, publisher| {
            publisher.publish(Notification::Cost(CostUpdate {
                partition: PartitionId::new(SubplanId::new(1), 0),
                avg_cost_ms: 1.0,
                avg_wait_ms: 0.0,
                selectivity: 1.0,
                window_len: 1,
                at: SimTime::ZERO,
            }));
        });
        let costs2 = Rc::clone(&costs);
        bus.subscribe(Topic::CostChanges, move |_, _| {
            *costs2.borrow_mut() += 1;
        });
        bus.publish(Notification::RawM1(m1()));
        assert_eq!(bus.run(10), 2);
        assert_eq!(*costs.borrow(), 1);
        assert_eq!(bus.pending(), 0);
    }

    #[test]
    fn run_bound_stops_feedback_loops() {
        let mut bus = PubSubBus::new();
        bus.subscribe(Topic::RawMonitoring, |n, publisher| {
            // Pathological: re-publish the same notification forever.
            publisher.publish(n.clone());
        });
        bus.publish(Notification::RawM1(m1()));
        assert_eq!(bus.run(5), 5);
        assert!(bus.pending() > 0);
    }

    #[test]
    fn full_pipeline_over_the_bus() {
        // Wire detector -> diagnoser -> responder through the bus and push
        // raw events showing a 10x imbalance; an adaptation must come out.
        use crate::config::AdaptivityConfig;
        use crate::detector::{DetectorOutput, MonitoringEventDetector};
        use crate::diagnoser::Diagnoser;
        use crate::responder::Responder;
        use gridq_common::DistributionVector;

        let config = AdaptivityConfig::default();
        let detector = Rc::new(RefCell::new(MonitoringEventDetector::new(&config)));
        let diagnoser = Rc::new(RefCell::new(Diagnoser::new(
            SubplanId::new(1),
            2,
            DistributionVector::uniform(2),
            &config,
        )));
        let responder = Rc::new(RefCell::new(Responder::new(&config)));
        let adaptations = Rc::new(RefCell::new(Vec::new()));

        let mut bus = PubSubBus::new();
        let det = Rc::clone(&detector);
        bus.subscribe(Topic::RawMonitoring, move |n, publisher| {
            if let Notification::RawM1(event) = n {
                if let DetectorOutput::Cost(update) = det.borrow_mut().on_m1(event) {
                    publisher.publish(Notification::Cost(update));
                }
            }
        });
        let dia = Rc::clone(&diagnoser);
        bus.subscribe(Topic::CostChanges, move |n, publisher| {
            if let Notification::Cost(update) = n {
                if let Some(imbalance) = dia.borrow_mut().on_cost_update(update) {
                    publisher.publish(Notification::Imbalance(imbalance));
                }
            }
        });
        let res = Rc::clone(&responder);
        bus.subscribe(Topic::Imbalances, move |n, publisher| {
            if let Notification::Imbalance(imbalance) = n {
                let (_, cmd) = res.borrow_mut().on_imbalance(imbalance, 0.2);
                if let Some(cmd) = cmd {
                    publisher.publish(Notification::Adaptation(cmd));
                }
            }
        });
        let ad = Rc::clone(&adaptations);
        bus.subscribe(Topic::Adaptations, move |n, _| {
            if let Notification::Adaptation(cmd) = n {
                ad.borrow_mut().push(cmd.clone());
            }
        });

        for i in 0..5 {
            let fast = M1 {
                partition: PartitionId::new(SubplanId::new(1), 0),
                cost_per_tuple_ms: 2.0,
                at: SimTime::from_millis(i as f64),
                ..m1()
            };
            let slow = M1 {
                partition: PartitionId::new(SubplanId::new(1), 1),
                cost_per_tuple_ms: 20.0,
                at: SimTime::from_millis(i as f64),
                ..m1()
            };
            bus.publish(Notification::RawM1(fast));
            bus.publish(Notification::RawM2(M2 {
                query: QueryId::new(0),
                producer: crate::notifications::ProducerId::Source(0),
                recipient: PartitionId::new(SubplanId::new(1), 0),
                send_cost_ms: 1.0,
                tuples_in_buffer: 10,
                at: SimTime::from_millis(i as f64),
            }));
            bus.publish(Notification::RawM1(slow));
        }
        bus.run(1000);
        let ads = adaptations.borrow();
        assert!(!ads.is_empty(), "pipeline must produce an adaptation");
        let w = ads[0].new_distribution.weights();
        assert!(w[0] > 0.8, "fast partition gets most work: {w:?}");
    }
}
