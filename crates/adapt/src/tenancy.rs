//! Cross-query (tenant-level) diagnosis for the service plane.
//!
//! The paper's Diagnoser balances *partitions of one query*. When a
//! long-lived service admits concurrent queries onto shared evaluator
//! nodes, a second kind of imbalance appears: the cost a query observes
//! on a node is inflated by a co-resident tenant, not by the node
//! itself. The [`CrossQueryDiagnoser`] watches smoothed per-partition
//! costs across *all* admitted queries, knows which queries share which
//! nodes, and — in the spirit of the multi-agent performance-tuning
//! framework of Roy et al. — proposes a *tenant rebalance*: a weight
//! shift for the affected query away from the contended node, deployed
//! through the existing adaptation (recall) protocol of that query.
//!
//! Like the per-query components it is a pure state machine driven by
//! explicit timestamps, so it runs identically under the simulator and
//! the wall-clock executors.

use std::collections::HashMap;

use gridq_common::{DistributionVector, NodeId, PartitionId, QueryId, SimTime};

/// Tuning knobs for cross-query diagnosis.
#[derive(Debug, Clone)]
pub struct TenancyConfig {
    /// Minimum relative change between the current and the proposed
    /// distribution before a rebalance is worth deploying (the tenant
    /// analogue of the paper's `thres_a`).
    pub thres_t: f64,
    /// Minimum model-time between rebalance proposals for one query,
    /// milliseconds.
    pub cooldown_ms: f64,
    /// How many cost updates a query must deliver before it is eligible
    /// for diagnosis (avoids reacting to cold windows).
    pub min_updates: u64,
}

impl Default for TenancyConfig {
    fn default() -> Self {
        TenancyConfig {
            thres_t: 0.2,
            cooldown_ms: 50.0,
            min_updates: 2,
        }
    }
}

/// A smoothed cost observation forwarded from one query's detector to
/// the shared cross-query diagnoser.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantCostUpdate {
    /// The reporting query.
    pub query: QueryId,
    /// The partition whose cost changed.
    pub partition: PartitionId,
    /// The node hosting that partition.
    pub node: NodeId,
    /// Trimmed windowed average processing cost per tuple, milliseconds.
    pub avg_cost_ms: f64,
    /// Time of the triggering detector notification.
    pub at: SimTime,
}

/// A proposed tenant rebalance: shift `query`'s weights away from a node
/// whose cost is inflated by a co-resident tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRebalance {
    /// The query whose distribution should change.
    pub query: QueryId,
    /// The co-resident tenant diagnosed as the source of contention.
    pub induced_by: QueryId,
    /// The contended node.
    pub node: NodeId,
    /// The proposed balanced distribution for `query`.
    pub proposed: DistributionVector,
    /// The per-partition costs that produced the proposal.
    pub costs: Vec<f64>,
    /// Diagnosis time.
    pub at: SimTime,
}

#[derive(Debug)]
struct TenantState {
    /// Partition index → hosting node.
    nodes: Vec<NodeId>,
    /// The distribution currently deployed for this query.
    current: DistributionVector,
    /// Latest smoothed cost per partition index.
    costs: HashMap<u32, f64>,
    updates: u64,
    last_proposal_at: Option<SimTime>,
}

/// Tenant-level diagnoser shared by every query admitted to a service
/// plane. Registration and eviction are scoped per query: one query's
/// teardown never disturbs another's state.
#[derive(Debug)]
pub struct CrossQueryDiagnoser {
    config: TenancyConfig,
    queries: HashMap<QueryId, TenantState>,
    /// Cost updates received across all tenants.
    pub updates_received: u64,
    /// Rebalance proposals issued.
    pub proposals_issued: u64,
}

impl CrossQueryDiagnoser {
    /// Creates an empty diagnoser.
    pub fn new(config: TenancyConfig) -> Self {
        CrossQueryDiagnoser {
            config,
            queries: HashMap::new(),
            updates_received: 0,
            proposals_issued: 0,
        }
    }

    /// Registers an admitted query: its partition→node placement and the
    /// initially deployed distribution.
    pub fn register_query(
        &mut self,
        query: QueryId,
        nodes: Vec<NodeId>,
        initial: DistributionVector,
    ) {
        assert_eq!(
            nodes.len(),
            initial.len(),
            "placement/distribution mismatch"
        );
        self.queries.insert(
            query,
            TenantState {
                nodes,
                current: initial,
                costs: HashMap::new(),
                updates: 0,
                last_proposal_at: None,
            },
        );
    }

    /// Evicts everything tracked for `query` (teardown). Co-resident
    /// tenants are untouched.
    pub fn deregister_query(&mut self, query: QueryId) {
        self.queries.remove(&query);
    }

    /// Number of currently registered tenants.
    pub fn tracked_queries(&self) -> usize {
        self.queries.len()
    }

    /// Records that a rebalance was deployed for `query` (`W ← W'`).
    pub fn set_distribution(&mut self, query: QueryId, dist: DistributionVector) {
        if let Some(state) = self.queries.get_mut(&query) {
            if dist.len() == state.current.len() {
                state.current = dist;
            }
        }
    }

    /// The registered tenants sharing `node` other than `query` itself.
    pub fn co_tenants(&self, query: QueryId, node: NodeId) -> Vec<QueryId> {
        let mut out: Vec<QueryId> = self
            .queries
            .iter()
            .filter(|(q, s)| **q != query && s.nodes.contains(&node))
            .map(|(q, _)| *q)
            .collect();
        out.sort_by_key(|q| q.index());
        out
    }

    /// Feeds one smoothed cost observation. Returns a rebalance proposal
    /// for the reporting query when (a) every partition has reported,
    /// (b) the balanced vector differs from the current one by more than
    /// `thres_t`, (c) the costliest partition sits on a node shared with
    /// another registered tenant, and (d) the per-query cooldown allows.
    pub fn on_cost_update(&mut self, update: &TenantCostUpdate) -> Option<TenantRebalance> {
        self.updates_received += 1;
        let min_updates = self.config.min_updates;
        let thres_t = self.config.thres_t;
        let cooldown_ms = self.config.cooldown_ms;
        let state = self.queries.get_mut(&update.query)?;
        state.updates += 1;
        state
            .costs
            .insert(update.partition.index, update.avg_cost_ms);
        if state.updates < min_updates || state.costs.len() < state.nodes.len() {
            return None;
        }
        if let Some(last) = state.last_proposal_at {
            if update.at.as_millis() - last.as_millis() < cooldown_ms {
                return None;
            }
        }
        let mut costs = Vec::with_capacity(state.nodes.len());
        for i in 0..state.nodes.len() {
            costs.push(*state.costs.get(&(i as u32))?);
        }
        let proposed = DistributionVector::balanced_for_costs(&costs).ok()?;
        if state.current.max_rel_diff(&proposed) <= thres_t {
            return None;
        }
        // The contended partition is the costliest one; contention is
        // only diagnosed as *cross-query* when its node is shared.
        let (hot_index, _) = costs.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1))?;
        let hot_node = state.nodes[hot_index];
        state.last_proposal_at = Some(update.at);
        let induced_by = *self.co_tenants(update.query, hot_node).first()?;
        self.proposals_issued += 1;
        Some(TenantRebalance {
            query: update.query,
            induced_by,
            node: hot_node,
            proposed,
            costs,
            at: update.at,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::SubplanId;

    fn update(query: u32, index: u32, node: u32, cost: f64, at_ms: f64) -> TenantCostUpdate {
        TenantCostUpdate {
            query: QueryId::new(query),
            partition: PartitionId::new(SubplanId::new(1), index),
            node: NodeId::new(node),
            avg_cost_ms: cost,
            at: SimTime::from_millis(at_ms),
        }
    }

    fn diagnoser() -> CrossQueryDiagnoser {
        let mut d = CrossQueryDiagnoser::new(TenancyConfig::default());
        // Two queries share node 2; node 1 and node 3 are private.
        d.register_query(
            QueryId::new(1),
            vec![NodeId::new(1), NodeId::new(2)],
            DistributionVector::uniform(2),
        );
        d.register_query(
            QueryId::new(2),
            vec![NodeId::new(3), NodeId::new(2)],
            DistributionVector::uniform(2),
        );
        d
    }

    #[test]
    fn contention_on_a_shared_node_proposes_a_rebalance() {
        let mut d = diagnoser();
        assert!(d.on_cost_update(&update(1, 0, 1, 1.0, 0.0)).is_none());
        let r = d
            .on_cost_update(&update(1, 1, 2, 10.0, 1.0))
            .expect("shared-node contention must propose a rebalance");
        assert_eq!(r.query, QueryId::new(1));
        assert_eq!(r.induced_by, QueryId::new(2));
        assert_eq!(r.node, NodeId::new(2));
        // Weight shifts away from the contended node.
        assert!(r.proposed.weights()[1] < 0.5);
        assert_eq!(d.proposals_issued, 1);
    }

    #[test]
    fn contention_on_a_private_node_is_not_cross_query() {
        let mut d = diagnoser();
        // Query 1's *private* node 1 is the expensive one: not tenant-induced.
        let _ = d.on_cost_update(&update(1, 0, 1, 10.0, 0.0));
        assert!(d.on_cost_update(&update(1, 1, 2, 1.0, 1.0)).is_none());
    }

    #[test]
    fn balanced_costs_stay_quiet() {
        let mut d = diagnoser();
        let _ = d.on_cost_update(&update(1, 0, 1, 2.0, 0.0));
        assert!(d.on_cost_update(&update(1, 1, 2, 2.0, 1.0)).is_none());
    }

    #[test]
    fn cooldown_gates_repeat_proposals() {
        let mut d = diagnoser();
        let _ = d.on_cost_update(&update(1, 0, 1, 1.0, 0.0));
        assert!(d.on_cost_update(&update(1, 1, 2, 10.0, 1.0)).is_some());
        // Within the cooldown: quiet, even though the imbalance persists.
        assert!(d.on_cost_update(&update(1, 1, 2, 12.0, 10.0)).is_none());
        // After the cooldown it may fire again.
        assert!(d.on_cost_update(&update(1, 1, 2, 12.0, 100.0)).is_some());
    }

    #[test]
    fn deregistration_is_scoped_per_query() {
        let mut d = diagnoser();
        let _ = d.on_cost_update(&update(2, 0, 3, 1.0, 0.0));
        d.deregister_query(QueryId::new(1));
        assert_eq!(d.tracked_queries(), 1);
        // Query 2's state survived: one more update completes its cost
        // picture, but node 2 is no longer shared so no proposal fires.
        assert!(d.on_cost_update(&update(2, 1, 2, 10.0, 1.0)).is_none());
        // Updates for the deregistered query are ignored, not tracked.
        assert!(d.on_cost_update(&update(1, 0, 1, 1.0, 2.0)).is_none());
        assert_eq!(d.tracked_queries(), 1);
    }

    #[test]
    fn deployed_distribution_resets_the_baseline() {
        let mut d = diagnoser();
        let _ = d.on_cost_update(&update(1, 0, 1, 1.0, 0.0));
        let r = d.on_cost_update(&update(1, 1, 2, 10.0, 1.0)).unwrap();
        d.set_distribution(QueryId::new(1), r.proposed.clone());
        // The same costs now match the deployed vector: quiet even after
        // the cooldown expires.
        assert!(d.on_cost_update(&update(1, 1, 2, 10.0, 200.0)).is_none());
    }
}
