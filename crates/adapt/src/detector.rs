//! The MonitoringEventDetector.
//!
//! "The MonitoringEventDetector component collects such information and
//! acts as a source of notifications on the dynamic behaviour of
//! distributed resources and of query execution": it groups M1 events by
//! the generating operator and M2 events by the (producer, recipient)
//! pair, computes a running average over a window of fixed length
//! discarding the minimum and maximum values, and emits a notification to
//! subscribed Diagnosers only when that average changes by more than
//! `thres_m`.

use std::collections::HashMap;
use std::sync::Arc;

use gridq_common::obs::{MetricSink, NullSink};
use gridq_common::stats::ChangeDetector;
use gridq_common::{PartitionId, QueryId, SimTime, TrimmedWindow};

use crate::config::AdaptivityConfig;
use crate::notifications::{ProducerId, M1, M2};

/// A filtered cost notification sent to the Diagnoser: the windowed
/// per-tuple processing cost of one subplan partition changed
/// significantly.
#[derive(Debug, Clone, PartialEq)]
pub struct CostUpdate {
    /// The partition whose cost changed.
    pub partition: PartitionId,
    /// Trimmed windowed average processing cost per tuple, milliseconds.
    pub avg_cost_ms: f64,
    /// Trimmed windowed average leaf wait per tuple, milliseconds.
    pub avg_wait_ms: f64,
    /// Latest observed selectivity.
    pub selectivity: f64,
    /// Number of samples in the detector window at notify time.
    pub window_len: usize,
    /// Time of the triggering raw event.
    pub at: SimTime,
}

/// A filtered communication-cost notification: the windowed per-tuple
/// send cost on one producer→recipient stream changed significantly.
#[derive(Debug, Clone, PartialEq)]
pub struct CommUpdate {
    /// The sending producer.
    pub producer: ProducerId,
    /// The receiving partition.
    pub recipient: PartitionId,
    /// Trimmed windowed average send cost per tuple, milliseconds.
    pub avg_cost_per_tuple_ms: f64,
    /// Number of samples in the detector window at notify time.
    pub window_len: usize,
    /// Time of the triggering raw event.
    pub at: SimTime,
}

/// Output of feeding one raw event to the detector.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorOutput {
    /// Nothing crossed the threshold.
    Quiet,
    /// Notify the Diagnoser of a processing-cost change.
    Cost(CostUpdate),
    /// Notify the Diagnoser of a communication-cost change.
    Comm(CommUpdate),
}

#[derive(Debug)]
struct Tracked {
    window: TrimmedWindow,
    gate: ChangeDetector,
    wait_window: TrimmedWindow,
}

/// Groups and filters raw monitoring events. One detector instance runs
/// on each node hosting a monitored subplan (grouping keys keep streams
/// from different partitions — and different queries — separate even
/// when co-hosted, so a service plane can share one detector across
/// concurrent queries without cross-talk).
#[derive(Debug)]
pub struct MonitoringEventDetector {
    window_len: usize,
    thres_m: f64,
    m1: HashMap<(QueryId, PartitionId), Tracked>,
    m2: HashMap<(QueryId, ProducerId, PartitionId), Tracked>,
    sink: Arc<dyn MetricSink>,
    /// Raw events received.
    pub raw_events_seen: u64,
    /// Notifications emitted to Diagnosers.
    pub notifications_sent: u64,
    /// Non-finite cost samples rejected instead of entering a window.
    pub rejected_samples: u64,
}

impl MonitoringEventDetector {
    /// Creates a detector with the configured window and threshold.
    pub fn new(config: &AdaptivityConfig) -> Self {
        MonitoringEventDetector {
            window_len: config.detector_window,
            thres_m: config.thres_m,
            m1: HashMap::new(),
            m2: HashMap::new(),
            sink: Arc::new(NullSink),
            raw_events_seen: 0,
            notifications_sent: 0,
            rejected_samples: 0,
        }
    }

    /// Attaches a metrics sink; `NullSink` is used until one is set.
    pub fn set_metric_sink(&mut self, sink: Arc<dyn MetricSink>) {
        self.sink = sink;
    }

    fn tracked<K: std::hash::Hash + Eq + Copy>(
        map: &mut HashMap<K, Tracked>,
        key: K,
        window_len: usize,
        thres_m: f64,
    ) -> &mut Tracked {
        map.entry(key).or_insert_with(|| Tracked {
            window: TrimmedWindow::new(window_len),
            gate: ChangeDetector::new(thres_m),
            wait_window: TrimmedWindow::new(window_len),
        })
    }

    fn reject(&mut self) {
        self.rejected_samples += 1;
        self.sink.incr("detector.rejected_samples", 1);
    }

    /// Feeds an M1 event.
    pub fn on_m1(&mut self, event: &M1) -> DetectorOutput {
        self.raw_events_seen += 1;
        self.sink.incr("detector.raw_events", 1);
        let key = (event.query, event.partition);
        let tracked = Self::tracked(&mut self.m1, key, self.window_len, self.thres_m);
        let cost_ok = tracked.window.push(event.cost_per_tuple_ms);
        let wait_ok = tracked.wait_window.push(event.leaf_wait_ms);
        if !cost_ok {
            self.reject();
        }
        if !wait_ok {
            self.reject();
        }
        // The window can be empty here: if every sample so far was
        // non-finite, nothing was stored. Staying Quiet (rather than
        // panicking or poisoning the gate) is the whole point of
        // rejecting such samples.
        let Some(tracked) = self.m1.get_mut(&key) else {
            return DetectorOutput::Quiet;
        };
        let Some(avg) = tracked.window.trimmed_mean() else {
            return DetectorOutput::Quiet;
        };
        self.sink.observe("detector.m1_avg_cost_ms", avg);
        if tracked.gate.observe(avg) {
            let window_len = tracked.window.len();
            let avg_wait_ms = tracked.wait_window.trimmed_mean().unwrap_or(0.0);
            self.notifications_sent += 1;
            self.sink.incr("detector.notifications", 1);
            DetectorOutput::Cost(CostUpdate {
                partition: event.partition,
                avg_cost_ms: avg,
                avg_wait_ms,
                selectivity: event.selectivity,
                window_len,
                at: event.at,
            })
        } else {
            DetectorOutput::Quiet
        }
    }

    /// Feeds an M2 event.
    pub fn on_m2(&mut self, event: &M2) -> DetectorOutput {
        self.raw_events_seen += 1;
        self.sink.incr("detector.raw_events", 1);
        let key = (event.query, event.producer, event.recipient);
        let tracked = Self::tracked(&mut self.m2, key, self.window_len, self.thres_m);
        if !tracked.window.push(event.cost_per_tuple_ms()) {
            self.reject();
        }
        let Some(tracked) = self.m2.get_mut(&key) else {
            return DetectorOutput::Quiet;
        };
        let Some(avg) = tracked.window.trimmed_mean() else {
            return DetectorOutput::Quiet;
        };
        self.sink.observe("detector.m2_avg_cost_ms", avg);
        if tracked.gate.observe(avg) {
            let window_len = tracked.window.len();
            self.notifications_sent += 1;
            self.sink.incr("detector.notifications", 1);
            DetectorOutput::Comm(CommUpdate {
                producer: event.producer,
                recipient: event.recipient,
                avg_cost_per_tuple_ms: avg,
                window_len,
                at: event.at,
            })
        } else {
            DetectorOutput::Quiet
        }
    }

    /// Number of monitored streams currently tracked (M1 partitions plus
    /// M2 producer→recipient pairs).
    pub fn tracked_streams(&self) -> usize {
        self.m1.len() + self.m2.len()
    }

    /// Drops all window/gate state for one of `query`'s partitions: its
    /// M1 stream and every M2 stream delivering to it. Call when a
    /// partition is retired (e.g. its node failed) so detector state
    /// cannot grow without bound across a long-running session. Streams
    /// belonging to other queries are untouched.
    pub fn retire_partition(&mut self, query: QueryId, partition: PartitionId) {
        self.m1.remove(&(query, partition));
        self.m2
            .retain(|(q, _, recipient), _| *q != query || *recipient != partition);
    }

    /// Drops every stream tracked for `query`. Call at that query's
    /// teardown; counters and co-resident queries' streams are
    /// preserved. (A global clear here was the service-plane footgun:
    /// one query's teardown must never evict another's windows.)
    pub fn reset_for_query(&mut self, query: QueryId) {
        self.m1.retain(|(q, _), _| *q != query);
        self.m2.retain(|(q, _, _), _| *q != query);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::{NodeId, QueryId, SubplanId};

    fn config() -> AdaptivityConfig {
        AdaptivityConfig::default()
    }

    fn m1(partition_index: u32, cost: f64, at_ms: f64) -> M1 {
        M1 {
            query: QueryId::new(0),
            partition: PartitionId::new(SubplanId::new(1), partition_index),
            node: NodeId::new(partition_index + 1),
            cost_per_tuple_ms: cost,
            leaf_wait_ms: 0.1,
            selectivity: 1.0,
            tuples_produced: 10,
            at: SimTime::from_millis(at_ms),
        }
    }

    fn m2(recipient_index: u32, cost: f64, tuples: usize) -> M2 {
        M2 {
            query: QueryId::new(0),
            producer: ProducerId::Source(0),
            recipient: PartitionId::new(SubplanId::new(1), recipient_index),
            send_cost_ms: cost,
            tuples_in_buffer: tuples,
            at: SimTime::ZERO,
        }
    }

    #[test]
    fn first_event_always_notifies() {
        let mut d = MonitoringEventDetector::new(&config());
        assert!(matches!(d.on_m1(&m1(0, 2.0, 0.0)), DetectorOutput::Cost(_)));
        assert_eq!(d.notifications_sent, 1);
    }

    #[test]
    fn stable_costs_stay_quiet() {
        let mut d = MonitoringEventDetector::new(&config());
        let _ = d.on_m1(&m1(0, 2.0, 0.0));
        for i in 1..50 {
            // ±5% jitter — under the 20% threshold.
            let cost = 2.0 * (1.0 + if i % 2 == 0 { 0.05 } else { -0.05 });
            assert_eq!(d.on_m1(&m1(0, cost, i as f64)), DetectorOutput::Quiet);
        }
        assert_eq!(d.notifications_sent, 1);
        assert_eq!(d.raw_events_seen, 50);
    }

    #[test]
    fn sustained_change_notifies() {
        let mut d = MonitoringEventDetector::new(&config());
        let _ = d.on_m1(&m1(0, 2.0, 0.0));
        // Cost jumps 10x; the windowed average needs a few samples to
        // cross the 20% gate, then fires.
        let mut fired_at = None;
        for i in 1..30 {
            if let DetectorOutput::Cost(u) = d.on_m1(&m1(0, 20.0, i as f64)) {
                fired_at = Some((i, u.avg_cost_ms));
                break;
            }
        }
        let (i, avg) = fired_at.expect("detector must notice a 10x change");
        assert!(i <= 3, "should fire within a few samples, fired at {i}");
        assert!(avg > 2.4, "reported average {avg} must reflect the jump");
    }

    #[test]
    fn outlier_spike_is_discarded_by_trimming() {
        let mut d = MonitoringEventDetector::new(&config());
        let _ = d.on_m1(&m1(0, 2.0, 0.0));
        // Fill the window with stable samples.
        for i in 1..20 {
            let _ = d.on_m1(&m1(0, 2.0, i as f64));
        }
        let before = d.notifications_sent;
        // One enormous spike: the trimmed mean discards the max, so no
        // notification fires.
        assert_eq!(d.on_m1(&m1(0, 200.0, 20.0)), DetectorOutput::Quiet);
        assert_eq!(d.notifications_sent, before);
    }

    #[test]
    fn partitions_are_tracked_independently() {
        let mut d = MonitoringEventDetector::new(&config());
        assert!(matches!(d.on_m1(&m1(0, 2.0, 0.0)), DetectorOutput::Cost(_)));
        // A different partition gets its own window and fires its own
        // first notification.
        assert!(matches!(d.on_m1(&m1(1, 2.0, 0.0)), DetectorOutput::Cost(_)));
    }

    #[test]
    fn m2_streams_grouped_by_producer_recipient() {
        let mut d = MonitoringEventDetector::new(&config());
        assert!(matches!(d.on_m2(&m2(0, 5.0, 50)), DetectorOutput::Comm(_)));
        assert!(matches!(d.on_m2(&m2(1, 5.0, 50)), DetectorOutput::Comm(_)));
        // Stable costs on an existing stream stay quiet.
        assert_eq!(d.on_m2(&m2(0, 5.0, 50)), DetectorOutput::Quiet);
    }

    #[test]
    fn m2_reports_per_tuple_cost() {
        let mut d = MonitoringEventDetector::new(&config());
        if let DetectorOutput::Comm(u) = d.on_m2(&m2(0, 10.0, 100)) {
            assert!((u.avg_cost_per_tuple_ms - 0.1).abs() < 1e-12);
            assert_eq!(u.window_len, 1);
        } else {
            panic!("first M2 must notify");
        }
    }

    #[test]
    fn non_finite_first_sample_stays_quiet_instead_of_panicking() {
        // Regression: a NaN cost on a *new* stream used to panic on
        // `trimmed_mean().expect(...)` because the rejected sample left
        // the window empty.
        let mut d = MonitoringEventDetector::new(&config());
        assert_eq!(d.on_m1(&m1(0, f64::NAN, 0.0)), DetectorOutput::Quiet);
        assert_eq!(d.rejected_samples, 1);
        assert_eq!(d.notifications_sent, 0);
        // The first finite sample then notifies as usual.
        assert!(matches!(d.on_m1(&m1(0, 2.0, 1.0)), DetectorOutput::Cost(_)));
        // Same for M2.
        let mut d = MonitoringEventDetector::new(&config());
        assert_eq!(d.on_m2(&m2(0, f64::NAN, 10)), DetectorOutput::Quiet);
        assert!(matches!(d.on_m2(&m2(0, 5.0, 10)), DetectorOutput::Comm(_)));
    }

    #[test]
    fn non_finite_samples_do_not_silence_an_established_stream() {
        // Regression: a burst of NaN costs used to enter the window,
        // poison the trimmed mean, and (worse) become the gate baseline —
        // after which no finite change ever fired again.
        let mut d = MonitoringEventDetector::new(&config());
        let _ = d.on_m1(&m1(0, 2.0, 0.0));
        for i in 1..30 {
            assert_eq!(
                d.on_m1(&m1(0, f64::NAN, i as f64)),
                DetectorOutput::Quiet,
                "NaN samples must not notify"
            );
        }
        assert_eq!(d.rejected_samples, 29);
        // A genuine 10x shift is still detected afterwards.
        let mut fired = false;
        for i in 30..60 {
            if matches!(d.on_m1(&m1(0, 20.0, i as f64)), DetectorOutput::Cost(_)) {
                fired = true;
                break;
            }
        }
        assert!(fired, "detector must recover after a NaN burst");
    }

    #[test]
    fn retire_and_reset_evict_tracked_state() {
        let mut d = MonitoringEventDetector::new(&config());
        let _ = d.on_m1(&m1(0, 2.0, 0.0));
        let _ = d.on_m1(&m1(1, 2.0, 0.0));
        let _ = d.on_m2(&m2(0, 5.0, 10));
        let _ = d.on_m2(&m2(1, 5.0, 10));
        assert_eq!(d.tracked_streams(), 4);
        // Retiring partition 0 drops its M1 stream and the M2 stream
        // delivering to it.
        d.retire_partition(QueryId::new(0), PartitionId::new(SubplanId::new(1), 0));
        assert_eq!(d.tracked_streams(), 2);
        d.reset_for_query(QueryId::new(0));
        assert_eq!(d.tracked_streams(), 0);
        // Counters survive for reporting.
        assert_eq!(d.raw_events_seen, 4);
    }

    fn m1_for(query: u32, partition_index: u32, cost: f64, at_ms: f64) -> M1 {
        let mut e = m1(partition_index, cost, at_ms);
        e.query = QueryId::new(query);
        e
    }

    #[test]
    fn queries_are_tracked_independently() {
        // Two queries sharing a detector each get their own window and
        // gate, even for the same partition index.
        let mut d = MonitoringEventDetector::new(&config());
        assert!(matches!(
            d.on_m1(&m1_for(1, 0, 2.0, 0.0)),
            DetectorOutput::Cost(_)
        ));
        assert!(matches!(
            d.on_m1(&m1_for(2, 0, 2.0, 0.0)),
            DetectorOutput::Cost(_)
        ));
        assert_eq!(d.tracked_streams(), 2);
        // Retiring query 1's partition leaves query 2's stream tracked.
        d.retire_partition(QueryId::new(1), PartitionId::new(SubplanId::new(1), 0));
        assert_eq!(d.tracked_streams(), 1);
    }

    #[test]
    fn teardown_of_one_query_leaves_the_other_adapting() {
        // Regression for the service-plane footgun: two interleaved
        // queries; tearing the first down must not evict the second's
        // detector windows, and the second must still notice a sustained
        // cost shift afterwards.
        let mut d = MonitoringEventDetector::new(&config());
        for i in 0..10 {
            let _ = d.on_m1(&m1_for(1, 0, 2.0, i as f64));
            let _ = d.on_m1(&m1_for(2, 0, 2.0, i as f64));
            let mut e2 = m2(0, 5.0, 10);
            e2.query = QueryId::new(2);
            let _ = d.on_m2(&e2);
        }
        assert_eq!(d.tracked_streams(), 3);
        // Query 1 finishes and tears down.
        d.reset_for_query(QueryId::new(1));
        assert_eq!(d.tracked_streams(), 2, "query 2's streams must survive");
        // Query 2's established baseline is intact: a stable sample stays
        // quiet (a fresh window would re-notify on first observation)...
        assert_eq!(d.on_m1(&m1_for(2, 0, 2.0, 10.0)), DetectorOutput::Quiet);
        // ...and a genuine 10x shift still fires.
        let mut fired = false;
        for i in 11..40 {
            if matches!(
                d.on_m1(&m1_for(2, 0, 20.0, i as f64)),
                DetectorOutput::Cost(_)
            ) {
                fired = true;
                break;
            }
        }
        assert!(fired, "query 2 must keep adapting after query 1 teardown");
    }
}
