//! The Responder: the response stage.
//!
//! "The Responder receives notifications about imbalance from the
//! Diagnoser in the form of proposed enhanced workload distribution
//! vectors W'. To decide whether to accept this proposal, it contacts all
//! the evaluators that produce data to estimate the progress of
//! execution. If the execution is not close to completion, it notifies
//! the evaluators that need to change their distribution policy, and the
//! Diagnosers that need to update the information about the current tuple
//! distribution."

use std::sync::Arc;

use gridq_common::obs::{MetricSink, NullSink};
use gridq_common::{DistributionVector, SimTime, SubplanId};

use crate::config::{AdaptivityConfig, ResponsePolicy};
use crate::diagnoser::Imbalance;

/// The command issued to the execution substrate when a proposal is
/// accepted.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationCommand {
    /// The stage whose exchange routing changes.
    pub stage: SubplanId,
    /// The new distribution `W'` to deploy.
    pub new_distribution: DistributionVector,
    /// When true (R1), producers additionally recall the unacknowledged
    /// tuples from their recovery logs and redistribute them (recreating
    /// operator state on the new owners); when false (R2) only future
    /// tuples are affected.
    pub retrospective: bool,
    /// Decision time.
    pub at: SimTime,
}

/// Why a proposal was declined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResponderDecision {
    /// The proposal was deployed.
    Accepted,
    /// The query was too close to completion for the adaptation to pay
    /// off.
    NearCompletion,
    /// A previous adaptation was deployed too recently.
    CoolingDown,
}

impl ResponderDecision {
    /// A stable string label for logs and timeline export.
    pub fn as_str(&self) -> &'static str {
        match self {
            ResponderDecision::Accepted => "accepted",
            ResponderDecision::NearCompletion => "declined_near_completion",
            ResponderDecision::CoolingDown => "declined_cooldown",
        }
    }
}

/// Accepts or declines imbalance proposals.
#[derive(Debug)]
pub struct Responder {
    response: ResponsePolicy,
    progress_cutoff: f64,
    cooldown_ms: f64,
    last_adaptation: Option<SimTime>,
    sink: Arc<dyn MetricSink>,
    /// Proposals received.
    pub proposals_received: u64,
    /// Adaptations deployed.
    pub adaptations_deployed: u64,
    /// Proposals declined near completion.
    pub declined_near_completion: u64,
    /// Proposals declined during cooldown.
    pub declined_cooldown: u64,
    /// Deploy acknowledgements received from the execution substrate.
    pub deploys_acknowledged: u64,
    /// Node-failure failovers accepted (never declined).
    pub node_failovers: u64,
}

impl Responder {
    /// Creates a responder with the configured policy and gates.
    pub fn new(config: &AdaptivityConfig) -> Self {
        Responder {
            response: config.response,
            progress_cutoff: config.progress_cutoff,
            cooldown_ms: config.cooldown_ms,
            last_adaptation: None,
            sink: Arc::new(NullSink),
            proposals_received: 0,
            adaptations_deployed: 0,
            declined_near_completion: 0,
            declined_cooldown: 0,
            deploys_acknowledged: 0,
            node_failovers: 0,
        }
    }

    /// Attaches a metrics sink; `NullSink` is used until one is set.
    pub fn set_metric_sink(&mut self, sink: Arc<dyn MetricSink>) {
        self.sink = sink;
    }

    /// The configured response policy.
    pub fn policy(&self) -> ResponsePolicy {
        self.response
    }

    /// Considers an imbalance proposal. `progress` is the estimated
    /// fraction of the query's input already routed (obtained from the
    /// producing evaluators). Returns the command to deploy, if accepted.
    pub fn on_imbalance(
        &mut self,
        imbalance: &Imbalance,
        progress: f64,
    ) -> (ResponderDecision, Option<AdaptationCommand>) {
        self.proposals_received += 1;
        self.sink.incr("responder.proposals", 1);
        if progress >= self.progress_cutoff {
            self.declined_near_completion += 1;
            self.sink.incr("responder.declined_near_completion", 1);
            return (ResponderDecision::NearCompletion, None);
        }
        if let Some(last) = self.last_adaptation {
            if imbalance.at.since(last) < self.cooldown_ms {
                self.declined_cooldown += 1;
                self.sink.incr("responder.declined_cooldown", 1);
                return (ResponderDecision::CoolingDown, None);
            }
        }
        self.last_adaptation = Some(imbalance.at);
        self.adaptations_deployed += 1;
        self.sink.incr("responder.deployed", 1);
        let command = AdaptationCommand {
            stage: imbalance.stage,
            new_distribution: imbalance.proposed.clone(),
            retrospective: self.response == ResponsePolicy::R1,
            at: imbalance.at,
        };
        (ResponderDecision::Accepted, Some(command))
    }

    /// Reports that the execution substrate finished applying a deployed
    /// command at `at`. A retrospective recall takes real time, so the
    /// cooldown restarts from completion rather than from the decision —
    /// otherwise a second adaptation could be accepted while the first
    /// recall is still migrating state.
    pub fn on_deploy_acknowledged(&mut self, at: SimTime) {
        self.deploys_acknowledged += 1;
        self.sink.incr("responder.deploys_acknowledged", 1);
        match self.last_adaptation {
            Some(last) if at.since(last) <= 0.0 => {}
            _ => self.last_adaptation = Some(at),
        }
    }

    /// Records a node-failure failover decision. Unlike a performance
    /// proposal this is never declined: the progress cutoff and the
    /// cooldown do not apply, because a dead partition processes nothing
    /// no matter how close the query is to completion or how recently a
    /// rebalance ran. It does *restart* the cooldown, so a performance
    /// rebalance cannot fire while the failover recall is still
    /// migrating state.
    pub fn on_node_failure(&mut self, at: SimTime) {
        self.node_failovers += 1;
        self.sink.incr("responder.node_failovers", 1);
        match self.last_adaptation {
            Some(last) if at.since(last) <= 0.0 => {}
            _ => self.last_adaptation = Some(at),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AssessmentPolicy;

    fn imbalance(at_ms: f64) -> Imbalance {
        Imbalance {
            stage: SubplanId::new(1),
            proposed: DistributionVector::new(&[0.9, 0.1]).unwrap(),
            costs: vec![1.0, 9.0],
            at: SimTime::from_millis(at_ms),
        }
    }

    #[test]
    fn accepts_and_reports_policy() {
        let config = AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R1);
        let mut r = Responder::new(&config);
        let (decision, cmd) = r.on_imbalance(&imbalance(100.0), 0.3);
        assert_eq!(decision, ResponderDecision::Accepted);
        let cmd = cmd.unwrap();
        assert!(cmd.retrospective);
        assert_eq!(cmd.stage, SubplanId::new(1));
        assert_eq!(r.adaptations_deployed, 1);
    }

    #[test]
    fn prospective_commands_are_not_retrospective() {
        let config = AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R2);
        let mut r = Responder::new(&config);
        let (_, cmd) = r.on_imbalance(&imbalance(100.0), 0.3);
        assert!(!cmd.unwrap().retrospective);
    }

    #[test]
    fn declines_near_completion() {
        let mut r = Responder::new(&AdaptivityConfig::default());
        let (decision, cmd) = r.on_imbalance(&imbalance(100.0), 0.99);
        assert_eq!(decision, ResponderDecision::NearCompletion);
        assert!(cmd.is_none());
        assert_eq!(r.declined_near_completion, 1);
        assert_eq!(r.adaptations_deployed, 0);
    }

    #[test]
    fn cooldown_gates_back_to_back_adaptations() {
        let config = AdaptivityConfig {
            cooldown_ms: 100.0,
            ..Default::default()
        };
        let mut r = Responder::new(&config);
        let (d1, _) = r.on_imbalance(&imbalance(10.0), 0.1);
        assert_eq!(d1, ResponderDecision::Accepted);
        let (d2, _) = r.on_imbalance(&imbalance(50.0), 0.1);
        assert_eq!(d2, ResponderDecision::CoolingDown);
        let (d3, _) = r.on_imbalance(&imbalance(150.0), 0.1);
        assert_eq!(d3, ResponderDecision::Accepted);
        assert_eq!(r.proposals_received, 3);
        assert_eq!(r.adaptations_deployed, 2);
        assert_eq!(r.declined_cooldown, 1);
    }

    #[test]
    fn proposal_exactly_at_cooldown_boundary_is_accepted() {
        // Pins the boundary semantics: the gate is `since(last) <
        // cooldown_ms`, so a proposal arriving *exactly* cooldown_ms
        // after the last deploy is accepted, not declined.
        let config = AdaptivityConfig {
            cooldown_ms: 100.0,
            ..Default::default()
        };
        let mut r = Responder::new(&config);
        let (d1, _) = r.on_imbalance(&imbalance(10.0), 0.1);
        assert_eq!(d1, ResponderDecision::Accepted);
        let (d2, _) = r.on_imbalance(&imbalance(110.0), 0.1);
        assert_eq!(d2, ResponderDecision::Accepted);
        assert_eq!(r.declined_cooldown, 0);
    }

    #[test]
    fn zero_cooldown_never_declines_for_cooling() {
        let config = AdaptivityConfig {
            cooldown_ms: 0.0,
            ..Default::default()
        };
        let mut r = Responder::new(&config);
        // Back-to-back proposals at the same instant: with a zero
        // cooldown every one is accepted.
        for _ in 0..3 {
            let (d, cmd) = r.on_imbalance(&imbalance(10.0), 0.1);
            assert_eq!(d, ResponderDecision::Accepted);
            assert!(cmd.is_some());
        }
        assert_eq!(r.adaptations_deployed, 3);
        assert_eq!(r.declined_cooldown, 0);
    }

    #[test]
    fn deploy_ack_restarts_cooldown_from_completion() {
        let config = AdaptivityConfig {
            cooldown_ms: 100.0,
            ..Default::default()
        };
        let mut r = Responder::new(&config);
        let (d1, _) = r.on_imbalance(&imbalance(10.0), 0.1);
        assert_eq!(d1, ResponderDecision::Accepted);
        // The recall realising the deploy finishes 80 ms later.
        r.on_deploy_acknowledged(SimTime::from_millis(90.0));
        assert_eq!(r.deploys_acknowledged, 1);
        // 120 ms after the decision but only 40 ms after completion:
        // still cooling down.
        let (d2, _) = r.on_imbalance(&imbalance(130.0), 0.1);
        assert_eq!(d2, ResponderDecision::CoolingDown);
        let (d3, _) = r.on_imbalance(&imbalance(195.0), 0.1);
        assert_eq!(d3, ResponderDecision::Accepted);
    }

    #[test]
    fn stale_deploy_ack_never_rewinds_cooldown() {
        let config = AdaptivityConfig {
            cooldown_ms: 100.0,
            ..Default::default()
        };
        let mut r = Responder::new(&config);
        let (d1, _) = r.on_imbalance(&imbalance(200.0), 0.1);
        assert_eq!(d1, ResponderDecision::Accepted);
        // An acknowledgement carrying an older timestamp (clock skew,
        // late delivery) must not shorten the cooldown window.
        r.on_deploy_acknowledged(SimTime::from_millis(50.0));
        let (d2, _) = r.on_imbalance(&imbalance(250.0), 0.1);
        assert_eq!(d2, ResponderDecision::CoolingDown);
    }

    #[test]
    fn node_failure_bypasses_gates_but_restarts_cooldown() {
        let config = AdaptivityConfig {
            cooldown_ms: 100.0,
            ..Default::default()
        };
        let mut r = Responder::new(&config);
        let (d1, _) = r.on_imbalance(&imbalance(10.0), 0.1);
        assert_eq!(d1, ResponderDecision::Accepted);
        // 20 ms later — deep inside the cooldown — a node dies. The
        // failover is accepted unconditionally...
        r.on_node_failure(SimTime::from_millis(30.0));
        assert_eq!(r.node_failovers, 1);
        // ...and restarts the cooldown: a performance proposal 80 ms
        // after the original deploy (but only 60 ms after the failover)
        // is still declined.
        let (d2, _) = r.on_imbalance(&imbalance(90.0), 0.1);
        assert_eq!(d2, ResponderDecision::CoolingDown);
        let (d3, _) = r.on_imbalance(&imbalance(140.0), 0.1);
        assert_eq!(d3, ResponderDecision::Accepted);
        // A failover stamped in the past never rewinds the cooldown.
        r.on_node_failure(SimTime::from_millis(50.0));
        let (d4, _) = r.on_imbalance(&imbalance(180.0), 0.1);
        assert_eq!(d4, ResponderDecision::CoolingDown);
    }

    #[test]
    fn decision_labels_are_stable() {
        assert_eq!(ResponderDecision::Accepted.as_str(), "accepted");
        assert_eq!(
            ResponderDecision::NearCompletion.as_str(),
            "declined_near_completion"
        );
        assert_eq!(ResponderDecision::CoolingDown.as_str(), "declined_cooldown");
    }
}
