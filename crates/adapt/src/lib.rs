#![warn(missing_docs)]

//! The adaptivity architecture — the paper's primary contribution.
//!
//! Adaptive query evaluation services (AGQESs) extend the static query
//! engine with three loosely-coupled components that separate the
//! *monitoring*, *assessment*, and *response* stages of an adaptation:
//!
//! 1. The self-monitoring query engine emits raw notifications:
//!    [`M1`] (per-tuple processing cost, leaf wait time, selectivity —
//!    one per `monitoring_interval` tuples produced) and [`M2`]
//!    (per-buffer communication cost — one per buffer sent).
//! 2. A [`MonitoringEventDetector`] on each node groups these by operator
//!    (M1) and by producer/recipient pair (M2), maintains a running
//!    average over a bounded window *discarding the minimum and maximum*,
//!    and notifies subscribed Diagnosers only when the average moves by
//!    more than `thres_m`.
//! 3. The [`Diagnoser`] knows the current distribution vector `W` and the
//!    smoothed per-partition costs `c(p_i)`; under assessment policy
//!    [`AssessmentPolicy::A1`] it uses processing costs alone, under
//!    [`AssessmentPolicy::A2`] it adds the communication cost of
//!    delivering tuples to each partition. It proposes the balanced
//!    vector `W'` with `w'_i ∝ 1/c(p_i)` and notifies the Responder when
//!    some component of `W'` differs from `W` by more than `thres_a`.
//! 4. The [`Responder`] gates proposals on query progress (adapting a
//!    nearly-finished query cannot pay for itself) and on a cooldown, and
//!    issues an [`AdaptationCommand`] that either only redirects future
//!    tuples ([`ResponsePolicy::R2`], *prospective*) or additionally
//!    recalls and redistributes the unacknowledged tuples in the
//!    producers' recovery logs ([`ResponsePolicy::R1`], *retrospective* —
//!    mandatory for stateful operators).
//!
//! All components are pure state machines driven by explicit timestamps,
//! so the same code runs against the virtual-time simulator and the
//! wall-clock threaded executor. The [`bus`] module provides the
//! publish/subscribe fabric used when components live in one process.

pub mod bus;
pub mod config;
pub mod detector;
pub mod diagnoser;
pub mod notifications;
pub mod responder;
pub mod tenancy;

pub use bus::{Notification, PubSubBus, Topic};
pub use config::{AdaptivityConfig, AssessmentPolicy, ResponsePolicy};
pub use detector::{CommUpdate, CostUpdate, DetectorOutput, MonitoringEventDetector};
pub use diagnoser::{Diagnoser, Imbalance};
pub use notifications::{ProducerId, M1, M2};
pub use responder::{AdaptationCommand, Responder, ResponderDecision};
pub use tenancy::{CrossQueryDiagnoser, TenancyConfig, TenantCostUpdate, TenantRebalance};
