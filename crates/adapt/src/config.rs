//! Adaptivity configuration.

use gridq_common::{GridError, Result};

/// How the Diagnoser computes the cost per tuple `c(p_i)` of a subplan
/// partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssessmentPolicy {
    /// Only M1 processing costs. Assumes communication overlaps with
    /// processing under pipelined parallelism (the paper finds this holds
    /// in its experiments and A1 makes the better repartitioning
    /// decisions there).
    #[default]
    A1,
    /// M1 processing costs plus the M2 communication cost of delivering
    /// tuples to the partition (same-machine delivery costs zero).
    A2,
}

/// How the Responder deploys a new distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ResponsePolicy {
    /// Prospective: only tuples not yet routed follow the new
    /// distribution. Cheap, but tuples already sent to a slow node stay
    /// there; insufficient for stateful operators.
    #[default]
    R2,
    /// Retrospective: tuples still in the producers' recovery logs are
    /// recalled and redistributed, recreating operator state on the new
    /// owners. Higher overhead, better balance under large
    /// perturbations, and required for correct stateful repartitioning.
    R1,
}

/// Tunable parameters of the adaptivity pipeline. The defaults are the
/// paper's: monitoring every 10 tuples, detector window of 25 events,
/// `thres_m` and `thres_a` of 20 %.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptivityConfig {
    /// Master switch; when false no monitoring events are produced at all.
    pub enabled: bool,
    /// One M1 notification per this many tuples produced (0 disables
    /// monitoring even when `enabled`, reproducing the paper's
    /// "frequency 0" configuration).
    pub monitoring_interval_tuples: u32,
    /// Detector window length (events).
    pub detector_window: usize,
    /// Relative change of the windowed average needed before the detector
    /// notifies the Diagnoser.
    pub thres_m: f64,
    /// Relative change of a distribution component needed before the
    /// Diagnoser notifies the Responder.
    pub thres_a: f64,
    /// Assessment policy (A1/A2).
    pub assessment: AssessmentPolicy,
    /// Response policy (R1/R2).
    pub response: ResponsePolicy,
    /// The Responder declines to adapt once estimated progress exceeds
    /// this fraction (it "contacts all the evaluators that produce data
    /// to estimate the progress of execution").
    pub progress_cutoff: f64,
    /// Minimum time between deployed adaptations, in milliseconds.
    pub cooldown_ms: f64,
}

impl Default for AdaptivityConfig {
    fn default() -> Self {
        AdaptivityConfig {
            enabled: true,
            monitoring_interval_tuples: 10,
            detector_window: 25,
            thres_m: 0.2,
            thres_a: 0.2,
            assessment: AssessmentPolicy::A1,
            response: ResponsePolicy::R2,
            progress_cutoff: 0.95,
            cooldown_ms: 50.0,
        }
    }
}

impl AdaptivityConfig {
    /// A disabled configuration (the static system).
    pub fn disabled() -> Self {
        AdaptivityConfig {
            enabled: false,
            ..Default::default()
        }
    }

    /// The paper's default configuration with the given policies.
    pub fn with_policies(assessment: AssessmentPolicy, response: ResponsePolicy) -> Self {
        AdaptivityConfig {
            assessment,
            response,
            ..Default::default()
        }
    }

    /// True when raw monitoring events should be generated.
    pub fn monitoring_active(&self) -> bool {
        self.enabled && self.monitoring_interval_tuples > 0
    }

    /// Validates parameter ranges.
    pub fn validate(&self) -> Result<()> {
        if self.detector_window == 0 {
            return Err(GridError::Config("detector window must be positive".into()));
        }
        if !(0.0..=10.0).contains(&self.thres_m) || !(0.0..=10.0).contains(&self.thres_a) {
            return Err(GridError::Config(
                "thresholds must be non-negative and sane".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.progress_cutoff) {
            return Err(GridError::Config(
                "progress cutoff must lie in [0, 1]".into(),
            ));
        }
        if !self.cooldown_ms.is_finite() || self.cooldown_ms < 0.0 {
            return Err(GridError::Config(
                "cooldown must be finite and non-negative".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    // Literal config constants round-trip bit-exactly.
    #[allow(clippy::float_cmp)]
    fn defaults_match_paper() {
        let c = AdaptivityConfig::default();
        assert_eq!(c.monitoring_interval_tuples, 10);
        assert_eq!(c.detector_window, 25);
        assert_eq!(c.thres_m, 0.2);
        assert_eq!(c.thres_a, 0.2);
        assert_eq!(c.assessment, AssessmentPolicy::A1);
        assert_eq!(c.response, ResponsePolicy::R2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn disabled_switch() {
        let c = AdaptivityConfig::disabled();
        assert!(!c.enabled);
        assert!(!c.monitoring_active());
    }

    #[test]
    fn zero_interval_disables_monitoring() {
        let c = AdaptivityConfig {
            monitoring_interval_tuples: 0,
            ..Default::default()
        };
        assert!(c.enabled);
        assert!(!c.monitoring_active());
    }

    #[test]
    fn validation_catches_bad_ranges() {
        let mut c = AdaptivityConfig {
            detector_window: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        c.detector_window = 25;
        c.progress_cutoff = 1.5;
        assert!(c.validate().is_err());
        c.progress_cutoff = 0.9;
        c.cooldown_ms = -1.0;
        assert!(c.validate().is_err());
    }
}
