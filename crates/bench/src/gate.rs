//! The bench regression gate: compares a fresh `repro threaded` artifact
//! against the committed `BENCH_threaded.json` baseline and fails loudly
//! when per-scenario throughput (result tuples per median wall
//! millisecond) regresses below a minimum ratio — or when the two
//! artifacts do not even describe the same scenario set, which would
//! silently turn the gate into a no-op.
//!
//! Lives in-tree (stdlib + `gridq-obs` JSON only) so CI and local runs
//! share one implementation: `repro gate --baseline BENCH_threaded.json
//! --current bench-current.json`.

use gridq_common::{GridError, Result};
use gridq_obs::Json;

/// The per-scenario slice of a threaded bench artifact the gate reads.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPerf {
    /// Scenario name (`q1_static`, ...).
    pub name: String,
    /// Result tuples the scenario produced.
    pub results: u64,
    /// Median wall-clock milliseconds across the samples.
    pub wall_ms_median: f64,
}

impl ScenarioPerf {
    /// Result tuples per median wall millisecond.
    pub fn throughput(&self) -> f64 {
        self.results as f64 / self.wall_ms_median
    }
}

/// The bench artifact tags the gate understands: one per wall-clock
/// substrate, plus the service-plane driver artifact (whose scenarios
/// carry the same name/results/median triple, so the same throughput
/// gate applies).
const BENCH_TAGS: [&str; 3] = ["threaded", "sockets", "service"];

/// The artifact's `bench` tag, validated against the known tags
/// (`threaded`, `sockets`, or `service`).
pub fn bench_tag(which: &str, text: &str) -> Result<String> {
    let doc = Json::parse(text)
        .map_err(|e| GridError::Config(format!("{which}: not valid JSON: {e}")))?;
    match doc.get("bench").and_then(Json::as_str) {
        Some(tag) if BENCH_TAGS.contains(&tag) => Ok(tag.to_string()),
        _ => Err(GridError::Config(format!(
            "{which}: not a bench artifact (expected `\"bench\"` of {BENCH_TAGS:?})"
        ))),
    }
}

/// Parses a `BENCH_threaded.json`/`BENCH_sockets.json`-shaped document
/// into its scenarios, rejecting anything structurally off (wrong
/// `bench` tag, empty or missing scenario array, non-positive medians)
/// — a gate that shrugs at a malformed artifact is a gate that can be
/// disabled by accident.
pub fn parse_bench(which: &str, text: &str) -> Result<Vec<ScenarioPerf>> {
    bench_tag(which, text)?;
    let doc = Json::parse(text)
        .map_err(|e| GridError::Config(format!("{which}: not valid JSON: {e}")))?;
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or_else(|| GridError::Config(format!("{which}: no `scenarios` array")))?;
    if scenarios.is_empty() {
        return Err(GridError::Config(format!("{which}: empty scenario set")));
    }
    let mut out = Vec::with_capacity(scenarios.len());
    for s in scenarios {
        let name = s
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| GridError::Config(format!("{which}: scenario without a name")))?
            .to_string();
        let results = s
            .get("results")
            .and_then(Json::as_u64)
            .ok_or_else(|| GridError::Config(format!("{which}: {name}: no `results` count")))?;
        let wall_ms_median = s
            .get("wall_ms_median")
            .and_then(Json::as_f64)
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| {
                GridError::Config(format!("{which}: {name}: missing or non-positive median"))
            })?;
        out.push(ScenarioPerf {
            name,
            results,
            wall_ms_median,
        });
    }
    Ok(out)
}

/// One scenario's verdict from the gate.
#[derive(Debug, Clone)]
pub struct GateLine {
    /// Scenario name.
    pub name: String,
    /// Baseline throughput, tuples per median wall ms.
    pub baseline_tput: f64,
    /// Current throughput, tuples per median wall ms.
    pub current_tput: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Whether the ratio cleared the gate's minimum.
    pub passed: bool,
}

/// The gate's full report: one line per scenario, in baseline order.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Per-scenario verdicts.
    pub lines: Vec<GateLine>,
    /// The minimum ratio the lines were judged against.
    pub min_ratio: f64,
}

impl GateReport {
    /// True when every scenario cleared the minimum ratio.
    pub fn passed(&self) -> bool {
        self.lines.iter().all(|l| l.passed)
    }

    /// Human-readable per-scenario summary plus verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(&format!(
                "{}: baseline {:.2} tuples/ms, current {:.2} ({:.2}x){}\n",
                l.name,
                l.baseline_tput,
                l.current_tput,
                l.ratio,
                if l.passed { "" } else { "  << REGRESSION" }
            ));
        }
        out.push_str(&if self.passed() {
            format!("bench gate OK (min ratio {:.2})", self.min_ratio)
        } else {
            format!("bench gate FAILED (min ratio {:.2})", self.min_ratio)
        });
        out
    }
}

/// Judges `current` against `baseline`. A scenario-set mismatch is an
/// *error*, not a failure: the artifacts are incomparable and the run
/// must stop loudly instead of gating whatever subset happens to align.
pub fn evaluate(baseline: &str, current: &str, min_ratio: f64) -> Result<GateReport> {
    let base_tag = bench_tag("baseline", baseline)?;
    let cur_tag = bench_tag("current", current)?;
    if base_tag != cur_tag {
        return Err(GridError::Config(format!(
            "bench tag mismatch: baseline is `{base_tag}`, current is `{cur_tag}` — \
             the gate only compares artifacts from the same substrate"
        )));
    }
    let base = parse_bench("baseline", baseline)?;
    let cur = parse_bench("current", current)?;
    let base_names: Vec<&str> = base.iter().map(|s| s.name.as_str()).collect();
    let cur_names: Vec<&str> = cur.iter().map(|s| s.name.as_str()).collect();
    if base_names != cur_names {
        return Err(GridError::Config(format!(
            "scenario set mismatch: baseline has {base_names:?}, current has {cur_names:?} — \
             regenerate the baseline (`repro threaded --small --json-out BENCH_threaded.json`) \
             when the scenario set changes deliberately"
        )));
    }
    let lines = base
        .iter()
        .zip(&cur)
        .map(|(b, c)| {
            // A zero-throughput baseline cell makes the plain quotient
            // degenerate: current/0 is +inf (any regression would pass
            // vacuously) and 0/0 is NaN (NaN >= x is false, failing a
            // cell that did not regress). Make both explicit: against a
            // zero baseline, any current throughput is at least as good.
            // Medians are validated positive, so zero throughput is
            // exactly `results == 0` — compare the integers.
            let (ratio, passed) = if b.results == 0 {
                let ratio = if c.results == 0 { 1.0 } else { f64::INFINITY };
                (ratio, true)
            } else {
                let ratio = c.throughput() / b.throughput();
                (ratio, ratio >= min_ratio)
            };
            GateLine {
                name: b.name.clone(),
                baseline_tput: b.throughput(),
                current_tput: c.throughput(),
                ratio,
                passed,
            }
        })
        .collect();
    Ok(GateReport { lines, min_ratio })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn artifact(scenarios: &[(&str, u64, f64)]) -> String {
        let items: Vec<String> = scenarios
            .iter()
            .map(|(name, results, median)| {
                format!("{{\"name\":\"{name}\",\"results\":{results},\"wall_ms_median\":{median}}}")
            })
            .collect();
        format!(
            "{{\"bench\":\"threaded\",\"scenarios\":[{}]}}",
            items.join(",")
        )
    }

    #[test]
    fn matching_scenarios_with_equal_throughput_pass() {
        let base = artifact(&[("q1_static", 600, 60.0), ("q2_r1_recall", 940, 175.0)]);
        let report = evaluate(&base, &base, 0.8).unwrap();
        assert!(report.passed());
        assert_eq!(report.lines.len(), 2);
        assert!(report.lines.iter().all(|l| (l.ratio - 1.0).abs() < 1e-12));
    }

    #[test]
    fn a_regressed_scenario_fails_and_names_itself() {
        let base = artifact(&[("q1_static", 600, 60.0)]);
        let cur = artifact(&[("q1_static", 600, 120.0)]); // 0.5x throughput
        let report = evaluate(&base, &cur, 0.8).unwrap();
        assert!(!report.passed());
        assert!(report.render().contains("q1_static"));
        assert!(report.render().contains("REGRESSION"));
    }

    #[test]
    fn scenario_set_mismatch_is_a_loud_error_not_a_pass() {
        let base = artifact(&[("q1_static", 600, 60.0), ("q2_r1_recall", 940, 175.0)]);
        let cur = artifact(&[("q1_static", 600, 60.0)]);
        let err = evaluate(&base, &cur, 0.8).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("scenario set mismatch"), "{msg}");
        // Both sets are named so the mismatch is actionable.
        assert!(msg.contains("q2_r1_recall"), "{msg}");
        // Reordering is a mismatch too: positional comparison of
        // misaligned sets would gate the wrong pairs.
        let reordered = artifact(&[("q2_r1_recall", 940, 175.0), ("q1_static", 600, 60.0)]);
        assert!(evaluate(&base, &reordered, 0.8).is_err());
    }

    #[test]
    fn zero_throughput_baseline_cells_are_explicit_not_vacuous() {
        // zero/zero: nothing regressed; the ratio is pinned to 1.0, not
        // NaN (which would fail the >= comparison despite no regression).
        let base = artifact(&[("q1_static", 0, 60.0)]);
        let report = evaluate(&base, &base, 0.8).unwrap();
        assert!(report.passed());
        assert!((report.lines[0].ratio - 1.0).abs() < 1e-12);

        // zero/nonzero: strictly better than the baseline; passes with an
        // explicit infinite ratio rather than by NaN/inf accident — and a
        // *regression* against a nonzero baseline still fails even when
        // another cell has a zero baseline.
        let cur = artifact(&[("q1_static", 600, 60.0)]);
        let report = evaluate(&base, &cur, 0.8).unwrap();
        assert!(report.passed());
        assert!(report.lines[0].ratio.is_infinite());

        let base = artifact(&[("q1_static", 0, 60.0), ("q2_r1_recall", 940, 175.0)]);
        let cur = artifact(&[("q1_static", 600, 60.0), ("q2_r1_recall", 940, 350.0)]);
        let report = evaluate(&base, &cur, 0.8).unwrap();
        assert!(!report.passed());
        assert!(
            report.render().contains("q2_r1_recall"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        let good = artifact(&[("q1_static", 600, 60.0)]);
        for bad in [
            "not json",
            "{\"bench\":\"threaded\",\"scenarios\":[]}",
            "{\"bench\":\"simulated\",\"scenarios\":[{\"name\":\"x\",\"results\":1,\"wall_ms_median\":1.0}]}",
            "{\"bench\":\"threaded\",\"scenarios\":[{\"name\":\"x\",\"results\":1,\"wall_ms_median\":0.0}]}",
        ] {
            assert!(evaluate(&good, bad, 0.8).is_err(), "{bad}");
            assert!(evaluate(bad, &good, 0.8).is_err(), "{bad}");
        }
    }

    #[test]
    fn sockets_artifacts_gate_against_sockets_baselines_only() {
        let sockets = "{\"bench\":\"sockets\",\"scenarios\":[{\"name\":\"q1_static\",\
             \"results\":600,\"wall_ms_median\":6.0}]}";
        // Same-substrate comparison works.
        let report = evaluate(sockets, sockets, 0.8).unwrap();
        assert!(report.passed());
        // Cross-substrate comparison is a loud error, not a ratio.
        let threaded = artifact(&[("q1_static", 600, 60.0)]);
        let err = evaluate(&threaded, sockets, 0.8).unwrap_err();
        assert!(err.to_string().contains("bench tag mismatch"), "{err}");
    }
}
