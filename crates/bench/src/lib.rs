#![warn(missing_docs)]

//! The reproduction harness: one runner per table/figure of the paper's
//! evaluation (§3.2), shared by the `repro` binary, the benches, and the
//! integration tests.
//!
//! Each runner executes the relevant experiment configurations on the
//! virtual-time simulator and reports response times *normalised to the
//! unperturbed static system*, exactly as the paper does ("the results
//! are normalised, so that the response time corresponding to
//! no ad / no imb is set to 1 unit for each query").

pub mod gate;
pub mod harness;
pub mod runners;
pub mod trajectory;

pub use runners::{Cell, Series};
