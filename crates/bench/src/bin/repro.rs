//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [table1|fig2a|fig2b|fig3a|fig3b|fig4|fig5|overheads|monfreq|ablation|obsdemo|threaded|sockets|service|all]
//!       [--small] [--obs-out PATH] [--json-out PATH]
//! repro gate --baseline PATH --current PATH [--min-ratio 0.8]
//! repro trajectory --bench PATH --label NAME --out PATH
//! ```
//!
//! `gate` judges a fresh threaded bench artifact against the committed
//! baseline: per-scenario throughput below the minimum ratio fails with
//! exit 1, and a baseline/current scenario-set mismatch (or a malformed
//! artifact) is a loud exit-2 error rather than a silently vacuous pass.
//!
//! `trajectory` appends (or replaces, by label) one condensed entry to
//! the committed `BENCH_trajectory.json` perf record.
//!
//! Values are response times normalised to the unperturbed static
//! system, printed alongside the paper's reported value where the paper
//! states one numerically (— otherwise).
//!
//! `obsdemo` runs Q1 under a 10x perturbation on both substrates (the
//! simulator and the threaded executor); with `--obs-out PATH` it also
//! writes both runs' metrics snapshots and adaptivity timelines to PATH
//! as JSON lines (one `"kind":"metrics"` line opens each run's
//! document).
//!
//! `threaded` benchmarks the wall-clock executor (static, prospective
//! R2, and retrospective R1 recall scenarios); with `--json-out PATH`
//! it also writes the per-scenario wall-clock quantiles and adaptivity
//! counters to PATH (the `BENCH_threaded.json` CI artifact).
//!
//! `sockets` benchmarks the socket substrate in the same three shapes
//! (with the routing swap and recall scripted); `--json-out PATH`
//! writes the `BENCH_sockets.json` CI artifact.
//!
//! `service` drives the query service plane with the closed-loop load
//! driver (concurrent sessions over both substrates through one
//! admission-bounded service, seeds 1/7/1303); `--json-out PATH` writes
//! the `BENCH_service.json` CI artifact. `GRIDQ_SERVICE_SESSIONS`
//! overrides the session count (default 64).

use gridq_bench::runners::{self, ReproConfig, Series};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gate") => run_gate(&args[1..]),
        Some("trajectory") => run_trajectory(&args[1..]),
        _ => {}
    }
    let mut obs_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--obs-out") {
        if i + 1 >= args.len() {
            eprintln!("error: --obs-out requires a path");
            std::process::exit(2);
        }
        obs_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let mut json_out: Option<String> = None;
    if let Some(i) = args.iter().position(|a| a == "--json-out") {
        if i + 1 >= args.len() {
            eprintln!("error: --json-out requires a path");
            std::process::exit(2);
        }
        json_out = Some(args.remove(i + 1));
        args.remove(i);
    }
    let small = args.iter().any(|a| a == "--small");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    let config = if small {
        ReproConfig::small()
    } else {
        ReproConfig::default()
    };
    if obs_out.is_some() && which != "obsdemo" {
        eprintln!("error: --obs-out only applies to the obsdemo experiment");
        std::process::exit(2);
    }
    if json_out.is_some() && which != "threaded" && which != "sockets" && which != "service" {
        eprintln!(
            "error: --json-out only applies to the threaded, sockets, and service benchmarks"
        );
        std::process::exit(2);
    }
    let result = if which == "threaded" {
        runners::threaded_bench(&config).and_then(|bench| {
            if let Some(path) = &json_out {
                std::fs::write(path, &bench.json).map_err(|e| {
                    gridq_common::GridError::Execution(format!("cannot write {path}: {e}"))
                })?;
                eprintln!("threaded benchmark artifact written to {path}");
            }
            Ok(bench.series)
        })
    } else if which == "sockets" {
        runners::sockets_bench(&config).and_then(|bench| {
            if let Some(path) = &json_out {
                std::fs::write(path, &bench.json).map_err(|e| {
                    gridq_common::GridError::Execution(format!("cannot write {path}: {e}"))
                })?;
                eprintln!("sockets benchmark artifact written to {path}");
            }
            Ok(bench.series)
        })
    } else if which == "service" {
        runners::service_bench(&config).and_then(|bench| {
            if let Some(path) = &json_out {
                std::fs::write(path, &bench.json).map_err(|e| {
                    gridq_common::GridError::Execution(format!("cannot write {path}: {e}"))
                })?;
                eprintln!("service benchmark artifact written to {path}");
            }
            Ok(bench.series)
        })
    } else if which == "obsdemo" {
        runners::obsdemo(&config).and_then(|demo| {
            if let Some(path) = &obs_out {
                let mut text = demo.sim.to_json_lines();
                text.push_str(&demo.threaded.to_json_lines());
                std::fs::write(path, text).map_err(|e| {
                    gridq_common::GridError::Execution(format!("cannot write {path}: {e}"))
                })?;
                eprintln!("observability export written to {path}");
            }
            Ok(demo.series)
        })
    } else {
        run(which, &config)
    };
    match result {
        Ok(series) => {
            println!(
                "Reproduction of Gounaris et al., \"Adapting to Changing Resource \
                 Performance in Grid Query Processing\" (VLDB DMG 2005)\n\
                 scale: {}\n",
                if small {
                    "small (--small)"
                } else {
                    "paper (Q1: 3000 tuples, Q2: 3000 x 4700)"
                }
            );
            for s in series {
                println!("{}", s.render());
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(1);
        }
    }
}

/// Pulls `--flag value` out of an argument slice.
fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn run_gate(args: &[String]) -> ! {
    let (Some(baseline), Some(current)) = (
        flag_value(args, "--baseline"),
        flag_value(args, "--current"),
    ) else {
        eprintln!("usage: repro gate --baseline PATH --current PATH [--min-ratio 0.8]");
        std::process::exit(2);
    };
    let min_ratio: f64 = match flag_value(args, "--min-ratio") {
        None => 0.8,
        Some(v) => match v.parse() {
            Ok(r) => r,
            Err(_) => {
                eprintln!("error: --min-ratio must be a number, got `{v}`");
                std::process::exit(2);
            }
        },
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match gridq_bench::gate::evaluate(&read(&baseline), &read(&current), min_ratio) {
        Ok(report) => {
            println!("{}", report.render());
            std::process::exit(if report.passed() { 0 } else { 1 });
        }
        Err(err) => {
            // Incomparable artifacts (scenario-set mismatch, malformed
            // JSON): a distinct exit code so CI cannot mistake it for
            // either a pass or an ordinary perf regression.
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    }
}

fn run_trajectory(args: &[String]) -> ! {
    let (Some(bench), Some(label), Some(out)) = (
        flag_value(args, "--bench"),
        flag_value(args, "--label"),
        flag_value(args, "--out"),
    ) else {
        eprintln!("usage: repro trajectory --bench PATH --label NAME --out PATH");
        std::process::exit(2);
    };
    let bench_json = match std::fs::read_to_string(&bench) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read {bench}: {e}");
            std::process::exit(2);
        }
    };
    let existing = match std::fs::read_to_string(&out) {
        Ok(text) => Some(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(e) => {
            eprintln!("error: cannot read {out}: {e}");
            std::process::exit(2);
        }
    };
    match gridq_bench::trajectory::append(existing.as_deref(), &label, &bench_json) {
        Ok(doc) => {
            if let Err(e) = std::fs::write(&out, doc) {
                eprintln!("error: cannot write {out}: {e}");
                std::process::exit(2);
            }
            eprintln!("trajectory entry `{label}` written to {out}");
            std::process::exit(0);
        }
        Err(err) => {
            eprintln!("error: {err}");
            std::process::exit(2);
        }
    }
}

fn run(which: &str, config: &ReproConfig) -> gridq_common::Result<Vec<Series>> {
    match which {
        "table1" => runners::table1(config),
        "fig2a" => runners::fig2a(config),
        "fig2b" => runners::fig2b(config),
        "fig3a" => runners::fig3a(config),
        "fig3b" => runners::fig3b(config),
        "fig4" => runners::fig4(config),
        "fig5" => runners::fig5(config),
        "overheads" => runners::overheads(config),
        "monfreq" => runners::monitor_freq(config),
        "ablation" => runners::ablation(config),
        "all" => runners::all(config),
        other => Err(gridq_common::GridError::Config(format!(
            "unknown experiment `{other}`; expected one of table1, fig2a, fig2b, \
             fig3a, fig3b, fig4, fig5, overheads, monfreq, ablation, obsdemo, \
             threaded, sockets, service, all"
        ))),
    }
}
