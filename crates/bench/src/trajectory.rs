//! The performance trajectory: an append-only record of the threaded
//! substrate's per-scenario throughput across PRs, committed as
//! `BENCH_trajectory.json`. Each entry condenses one `BENCH_threaded.json`
//! artifact to its name/results/median triple per scenario; re-appending
//! an existing label replaces that entry in place, so regenerating a
//! PR's numbers does not duplicate its row.

use gridq_common::{GridError, Result};
use gridq_obs::json::JsonObj;
use gridq_obs::Json;

use crate::gate::{parse_bench, ScenarioPerf};

/// One PR's (or CI run's) condensed bench result.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryEntry {
    /// The entry's label — by convention the PR (`pr7`) or `ci`.
    pub label: String,
    /// Per-scenario performance, in bench artifact order.
    pub scenarios: Vec<ScenarioPerf>,
}

/// Parses a `BENCH_trajectory.json` document.
pub fn parse_trajectory(text: &str) -> Result<Vec<TrajectoryEntry>> {
    let doc = Json::parse(text)
        .map_err(|e| GridError::Config(format!("trajectory: not valid JSON: {e}")))?;
    if doc.get("trajectory").and_then(Json::as_str) != Some("threaded") {
        return Err(GridError::Config(
            "trajectory: missing `\"trajectory\": \"threaded\"` tag".into(),
        ));
    }
    let entries = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| GridError::Config("trajectory: no `entries` array".into()))?;
    let mut out = Vec::with_capacity(entries.len());
    for e in entries {
        let label = e
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| GridError::Config("trajectory: entry without a label".into()))?
            .to_string();
        let scenarios = e.get("scenarios").and_then(Json::as_array).ok_or_else(|| {
            GridError::Config(format!("trajectory: {label}: no `scenarios` array"))
        })?;
        let mut perf = Vec::with_capacity(scenarios.len());
        for s in scenarios {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| {
                    GridError::Config(format!("trajectory: {label}: scenario without a name"))
                })?
                .to_string();
            let results = s.get("results").and_then(Json::as_u64).ok_or_else(|| {
                GridError::Config(format!("trajectory: {label}: {name}: no `results`"))
            })?;
            let wall_ms_median = s
                .get("wall_ms_median")
                .and_then(Json::as_f64)
                .filter(|v| v.is_finite() && *v > 0.0)
                .ok_or_else(|| {
                    GridError::Config(format!(
                        "trajectory: {label}: {name}: missing or non-positive median"
                    ))
                })?;
            perf.push(ScenarioPerf {
                name,
                results,
                wall_ms_median,
            });
        }
        out.push(TrajectoryEntry {
            label,
            scenarios: perf,
        });
    }
    Ok(out)
}

/// Serializes entries back to the committed document shape. Throughput
/// is emitted per scenario as a derived convenience column; `results`
/// and `wall_ms_median` stay authoritative.
pub fn render_trajectory(entries: &[TrajectoryEntry]) -> String {
    let items: Vec<String> = entries
        .iter()
        .map(|e| {
            let scenarios: Vec<String> = e
                .scenarios
                .iter()
                .map(|s| {
                    let mut obj = JsonObj::new();
                    obj.str("name", &s.name)
                        .int("results", s.results)
                        .num("wall_ms_median", s.wall_ms_median)
                        .num("tuples_per_ms", s.throughput());
                    obj.finish()
                })
                .collect();
            let mut obj = JsonObj::new();
            obj.str("label", &e.label)
                .raw("scenarios", &format!("[{}]", scenarios.join(",")));
            obj.finish()
        })
        .collect();
    let mut doc = JsonObj::new();
    doc.str("trajectory", "threaded")
        .raw("entries", &format!("[{}]", items.join(",")));
    doc.finish()
}

/// Appends (or replaces, when `label` already exists) one entry derived
/// from a threaded bench artifact. `existing` is the current trajectory
/// document, or `None` to start a fresh one.
pub fn append(existing: Option<&str>, label: &str, bench_json: &str) -> Result<String> {
    if label.is_empty() {
        return Err(GridError::Config("trajectory: empty label".into()));
    }
    let mut entries = match existing {
        Some(text) => parse_trajectory(text)?,
        None => Vec::new(),
    };
    let entry = TrajectoryEntry {
        label: label.to_string(),
        scenarios: parse_bench("bench", bench_json)?,
    };
    match entries.iter_mut().find(|e| e.label == label) {
        Some(slot) => *slot = entry,
        None => entries.push(entry),
    }
    Ok(render_trajectory(&entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(median: f64) -> String {
        format!(
            "{{\"bench\":\"threaded\",\"scenarios\":[{{\"name\":\"q1_static\",\
             \"results\":600,\"wall_ms_median\":{median}}}]}}"
        )
    }

    #[test]
    fn append_starts_extends_and_round_trips() {
        let one = append(None, "pr6", &bench(60.0)).unwrap();
        let two = append(Some(&one), "pr7", &bench(6.0)).unwrap();
        let entries = parse_trajectory(&two).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].label, "pr6");
        assert_eq!(entries[1].label, "pr7");
        // 10x the throughput at one tenth the median.
        let t6 = entries[0].scenarios[0].throughput();
        let t7 = entries[1].scenarios[0].throughput();
        assert!((t7 / t6 - 10.0).abs() < 1e-9);
        // Round trip: render(parse(x)) == x.
        assert_eq!(render_trajectory(&entries), two);
    }

    #[test]
    fn reappending_a_label_replaces_in_place() {
        let one = append(None, "pr7", &bench(60.0)).unwrap();
        let two = append(Some(&one), "pr7", &bench(6.0)).unwrap();
        let entries = parse_trajectory(&two).unwrap();
        assert_eq!(entries.len(), 1);
        assert!((entries[0].scenarios[0].wall_ms_median - 6.0).abs() < 1e-12);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(append(Some("not json"), "pr7", &bench(1.0)).is_err());
        assert!(append(None, "", &bench(1.0)).is_err());
        assert!(append(None, "pr7", "{\"bench\":\"threaded\"}").is_err());
        assert!(parse_trajectory("{\"trajectory\":\"simulated\",\"entries\":[]}").is_err());
    }
}
