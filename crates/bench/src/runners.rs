//! Experiment runners, one per paper artifact.

use gridq_adapt::{AdaptivityConfig, AssessmentPolicy, ResponsePolicy};
use gridq_common::{GridError, NodeId, Result};
use gridq_exec::{ThreadedConfig, ThreadedExecutor};
use gridq_grid::Perturbation;
use gridq_obs::json::JsonObj;
use gridq_obs::ObsReport;
use gridq_sim::ExecutionReport;
use gridq_workload::experiments::{EvaluatorPerturbation, Q1Experiment, Q2Experiment};

/// One measured point, with the paper's value where the paper prints one.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Configuration label (matches the paper's axis/bar label).
    pub label: String,
    /// The paper's reported value, when the paper states it numerically.
    pub paper: Option<f64>,
    /// Our measured value.
    pub measured: f64,
}

impl Cell {
    fn new(label: impl Into<String>, paper: Option<f64>, measured: f64) -> Self {
        Cell {
            label: label.into(),
            paper,
            measured,
        }
    }
}

/// One row/series of a table or figure.
#[derive(Debug, Clone)]
pub struct Series {
    /// Experiment id (e.g. `"table1"`, `"fig2a"`).
    pub id: &'static str,
    /// Human-readable series title.
    pub title: String,
    /// The measured cells.
    pub cells: Vec<Cell>,
}

impl Series {
    /// Renders the series as an aligned text block.
    pub fn render(&self) -> String {
        let mut out = format!("[{}] {}\n", self.id, self.title);
        for cell in &self.cells {
            let paper = cell
                .paper
                .map(|p| format!("{p:>7.2}"))
                .unwrap_or_else(|| "      —".to_string());
            out.push_str(&format!(
                "    {:<38} paper {}   measured {:>7.2}\n",
                cell.label, paper, cell.measured
            ));
        }
        out
    }
}

/// Scale of the reproduction runs.
#[derive(Debug, Clone, Default)]
pub struct ReproConfig {
    /// Q1 template (tuples, costs, evaluators are overridden per
    /// experiment where the paper varies them).
    pub q1: Q1Experiment,
    /// Q2 template.
    pub q2: Q2Experiment,
}

impl ReproConfig {
    /// A minimal-scale configuration for Criterion benches: the same
    /// cost model over ~15x smaller datasets, so measuring the harness
    /// stays cheap on small machines.
    pub fn tiny() -> Self {
        ReproConfig {
            q1: Q1Experiment {
                tuples: 200,
                ..Default::default()
            },
            q2: Q2Experiment {
                sequences: 200,
                interactions: 320,
                ..Default::default()
            },
        }
    }

    /// A reduced-scale configuration for fast tests and Criterion
    /// benches (same cost model, ~5x smaller datasets).
    pub fn small() -> Self {
        ReproConfig {
            q1: Q1Experiment {
                tuples: 600,
                ..Default::default()
            },
            q2: Q2Experiment {
                sequences: 600,
                interactions: 940,
                ..Default::default()
            },
        }
    }
}

fn a1r2() -> AdaptivityConfig {
    AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R2)
}

fn a1r1() -> AdaptivityConfig {
    AdaptivityConfig::with_policies(AssessmentPolicy::A1, ResponsePolicy::R1)
}

fn a2r2() -> AdaptivityConfig {
    AdaptivityConfig::with_policies(AssessmentPolicy::A2, ResponsePolicy::R2)
}

fn off() -> AdaptivityConfig {
    AdaptivityConfig::disabled()
}

fn ws_pert(k: f64) -> Vec<EvaluatorPerturbation> {
    vec![EvaluatorPerturbation::new(1, Perturbation::CostFactor(k))]
}

fn sleep_pert(ms: f64) -> Vec<EvaluatorPerturbation> {
    vec![EvaluatorPerturbation::new(1, Perturbation::SleepMs(ms))]
}

fn norm(report: &ExecutionReport, base: &ExecutionReport) -> f64 {
    report.response_time_ms / base.response_time_ms
}

/// Table 1: performance of queries in normalised units for
/// {no ad/no imb, ad/no imb, no ad/imb, ad/imb}.
pub fn table1(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = &config.q1;
    let q2 = &config.q2;
    let q1_base = q1.run(off(), &[])?;
    let q2_base = q2.run(off(), &[])?;
    let mut out = Vec::new();

    // Row 1: Q1 with prospective response (R2), 10x WS perturbation.
    let cells = vec![
        Cell::new("no ad / no imb", Some(1.0), 1.0),
        Cell::new(
            "ad / no imb",
            Some(1.059),
            norm(&q1.run(a1r2(), &[])?, &q1_base),
        ),
        Cell::new(
            "no ad / imb (10x WS)",
            Some(3.53),
            norm(&q1.run(off(), &ws_pert(10.0))?, &q1_base),
        ),
        Cell::new(
            "ad / imb (10x WS)",
            Some(1.45),
            norm(&q1.run(a1r2(), &ws_pert(10.0))?, &q1_base),
        ),
    ];
    out.push(Series {
        id: "table1",
        title: "Q1 - R2 (prospective)".into(),
        cells,
    });

    // Row 2: Q1 with retrospective response (R1).
    let cells = vec![
        Cell::new("no ad / no imb", Some(1.0), 1.0),
        Cell::new(
            "ad / no imb",
            Some(1.15),
            norm(&q1.run(a1r1(), &[])?, &q1_base),
        ),
        Cell::new(
            "no ad / imb (10x WS)",
            Some(3.53),
            norm(&q1.run(off(), &ws_pert(10.0))?, &q1_base),
        ),
        Cell::new(
            "ad / imb (10x WS)",
            Some(1.57),
            norm(&q1.run(a1r1(), &ws_pert(10.0))?, &q1_base),
        ),
    ];
    out.push(Series {
        id: "table1",
        title: "Q1 - R1 (retrospective)".into(),
        cells,
    });

    // Row 3: Q2 with retrospective response, sleep(10ms) perturbation.
    let cells = vec![
        Cell::new("no ad / no imb", Some(1.0), 1.0),
        Cell::new(
            "ad / no imb",
            Some(1.11),
            norm(&q2.run(a1r1(), &[])?, &q2_base),
        ),
        Cell::new(
            "no ad / imb (sleep 10ms)",
            Some(1.71),
            norm(&q2.run(off(), &sleep_pert(10.0))?, &q2_base),
        ),
        Cell::new(
            "ad / imb (sleep 10ms)",
            Some(1.31),
            norm(&q2.run(a1r1(), &sleep_pert(10.0))?, &q2_base),
        ),
    ];
    out.push(Series {
        id: "table1",
        title: "Q2 - R1 (retrospective)".into(),
        cells,
    });
    Ok(out)
}

/// Fig. 2(a): Q1, prospective adaptations, perturbation 10/20/30x,
/// adaptivity disabled vs enabled.
pub fn fig2a(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = &config.q1;
    let base = q1.run(off(), &[])?;
    let paper_noad = [3.53, 6.66, 9.76];
    let paper_ad = [1.45, 2.48, 3.79];
    let mut disabled = Vec::new();
    let mut enabled = Vec::new();
    for (i, k) in [10.0, 20.0, 30.0].into_iter().enumerate() {
        disabled.push(Cell::new(
            format!("{k:.0} times"),
            Some(paper_noad[i]),
            norm(&q1.run(off(), &ws_pert(k))?, &base),
        ));
        enabled.push(Cell::new(
            format!("{k:.0} times"),
            Some(paper_ad[i]),
            norm(&q1.run(a1r2(), &ws_pert(k))?, &base),
        ));
    }
    Ok(vec![
        Series {
            id: "fig2a",
            title: "Q1 prospective — adaptivity disabled".into(),
            cells: disabled,
        },
        Series {
            id: "fig2a",
            title: "Q1 prospective — adaptivity enabled".into(),
            cells: enabled,
        },
    ])
}

/// Fig. 2(b): Q1 under the three adaptivity policies A1-R2, A1-R1,
/// A2-R2 at 10/20/30x (the paper prints the bars without numeric
/// labels; the expected ordering is A1-R1 <= A1-R2 <= A2-R2 at large
/// perturbations, with A1-R1 nearly flat in the perturbation size).
pub fn fig2b(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = &config.q1;
    let base = q1.run(off(), &[])?;
    let policies: [(&str, AdaptivityConfig); 3] =
        [("A1-R2", a1r2()), ("A1-R1", a1r1()), ("A2-R2", a2r2())];
    let mut out = Vec::new();
    for (name, adapt) in policies {
        let mut cells = Vec::new();
        for k in [10.0, 20.0, 30.0] {
            cells.push(Cell::new(
                format!("{k:.0} times"),
                None,
                norm(&q1.run(adapt.clone(), &ws_pert(k))?, &base),
            ));
        }
        out.push(Series {
            id: "fig2b",
            title: format!("Q1 policy {name}"),
            cells,
        });
    }
    Ok(out)
}

/// Fig. 3(a): Q2, retrospective adaptations, sleep 10/50/100 ms,
/// adaptivity disabled vs enabled (paper states 1.71 -> 1.31 for 10 ms;
/// the 50/100 ms bars are printed without numeric labels).
pub fn fig3a(config: &ReproConfig) -> Result<Vec<Series>> {
    let q2 = &config.q2;
    let base = q2.run(off(), &[])?;
    let paper_noad = [Some(1.71), None, None];
    let paper_ad = [Some(1.31), None, None];
    let mut disabled = Vec::new();
    let mut enabled = Vec::new();
    for (i, ms) in [10.0, 50.0, 100.0].into_iter().enumerate() {
        disabled.push(Cell::new(
            format!("{ms:.0}msec"),
            paper_noad[i],
            norm(&q2.run(off(), &sleep_pert(ms))?, &base),
        ));
        enabled.push(Cell::new(
            format!("{ms:.0}msec"),
            paper_ad[i],
            norm(&q2.run(a1r1(), &sleep_pert(ms))?, &base),
        ));
    }
    Ok(vec![
        Series {
            id: "fig3a",
            title: "Q2 retrospective — adaptivity disabled".into(),
            cells: disabled,
        },
        Series {
            id: "fig3a",
            title: "Q2 retrospective — adaptivity enabled".into(),
            cells: enabled,
        },
    ])
}

/// Fig. 3(b): Q1 with the dataset doubled (6000 tuples), prospective
/// adaptations, 10/20/30x. The paper reports the results come "very
/// close to those when adaptations are retrospective".
pub fn fig3b(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = Q1Experiment {
        tuples: config.q1.tuples * 2,
        ..config.q1.clone()
    };
    let base = q1.run(off(), &[])?;
    let mut disabled = Vec::new();
    let mut enabled = Vec::new();
    for k in [10.0, 20.0, 30.0] {
        disabled.push(Cell::new(
            format!("{k:.0} times"),
            None,
            norm(&q1.run(off(), &ws_pert(k))?, &base),
        ));
        enabled.push(Cell::new(
            format!("{k:.0} times"),
            None,
            norm(&q1.run(a1r2(), &ws_pert(k))?, &base),
        ));
    }
    Ok(vec![
        Series {
            id: "fig3b",
            title: "Q1 double data — adaptivity disabled".into(),
            cells: disabled,
        },
        Series {
            id: "fig3b",
            title: "Q1 double data — adaptivity enabled (prospective)".into(),
            cells: enabled,
        },
    ])
}

/// Fig. 4(a–c): Q1 over three evaluators, retrospective adaptations,
/// varying the number of perturbed machines (0–3) for perturbation
/// sizes 10/20/30x.
pub fn fig4(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = Q1Experiment {
        evaluators: 3,
        ..config.q1.clone()
    };
    let base = q1.run(off(), &[])?;
    let mut out = Vec::new();
    for k in [10.0, 20.0, 30.0] {
        for (title, adapt) in [("disabled", off()), ("enabled", a1r1())] {
            let mut cells = Vec::new();
            for perturbed in 0..=3usize {
                let perts: Vec<EvaluatorPerturbation> = (0..perturbed)
                    .map(|e| EvaluatorPerturbation::new(e, Perturbation::CostFactor(k)))
                    .collect();
                cells.push(Cell::new(
                    format!("{perturbed} perturbed"),
                    None,
                    norm(&q1.run(adapt.clone(), &perts)?, &base),
                ));
            }
            out.push(Series {
                id: "fig4",
                title: format!("Q1 3 evaluators, {k:.0}x — adaptivity {title}"),
                cells,
            });
        }
    }
    Ok(out)
}

/// Fig. 5: Q1 under rapidly changing perturbations — per-tuple factors
/// drawn from clamped normals around a stable mean of 30x, for both
/// response policies. The stable 30x bar is included for comparison.
pub fn fig5(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = &config.q1;
    let base = q1.run(off(), &[])?;
    let variants: [(&str, Perturbation); 4] = [
        ("stable 30x", Perturbation::CostFactor(30.0)),
        (
            "[25,35]",
            Perturbation::NormalFactor {
                mean: 30.0,
                lo: 25.0,
                hi: 35.0,
            },
        ),
        (
            "[20,40]",
            Perturbation::NormalFactor {
                mean: 30.0,
                lo: 20.0,
                hi: 40.0,
            },
        ),
        (
            "[1,60]",
            Perturbation::NormalFactor {
                mean: 30.0,
                lo: 1.0,
                hi: 60.0,
            },
        ),
    ];
    let mut out = Vec::new();
    for (name, adapt) in [("prospective", a1r2()), ("retrospective", a1r1())] {
        let mut cells = Vec::new();
        for (label, pert) in &variants {
            let perts = vec![EvaluatorPerturbation::new(0, pert.clone())];
            cells.push(Cell::new(
                label.to_string(),
                None,
                norm(&q1.run(adapt.clone(), &perts)?, &base),
            ));
        }
        out.push(Series {
            id: "fig5",
            title: format!("Q1 changing perturbations — {name}"),
            cells,
        });
    }
    Ok(out)
}

/// §3.2 "Overheads": unnecessary-adaptivity overheads and the
/// notification funnel.
pub fn overheads(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = &config.q1;
    let base = q1.run(off(), &[])?;
    let r2 = q1.run(a1r2(), &[])?;
    let r1 = q1.run(a1r1(), &[])?;
    let overhead_cells = vec![
        Cell::new(
            "prospective (R2) overhead, % of runtime",
            Some(5.9),
            (norm(&r2, &base) - 1.0) * 100.0,
        ),
        Cell::new(
            "retrospective (R1) overhead, % of runtime",
            Some(15.3),
            (norm(&r1, &base) - 1.0) * 100.0,
        ),
        Cell::new(
            "tuple ratio between machines (R2)",
            Some(1.21),
            r2.balance_ratio().unwrap_or(f64::NAN),
        ),
        Cell::new(
            "tuple ratio between machines (R1)",
            Some(1.01),
            r1.balance_ratio().unwrap_or(f64::NAN),
        ),
    ];
    // The notification funnel under an actual 10x imbalance.
    let imb = q1.run(a1r2(), &ws_pert(10.0))?;
    let funnel_cells = vec![
        Cell::new(
            "raw engine notifications (100-300)",
            None,
            (imb.raw_m1_events + imb.raw_m2_events) as f64,
        ),
        Cell::new(
            "detector -> diagnoser notifications (~10)",
            Some(10.0),
            imb.detector_notifications as f64,
        ),
        Cell::new(
            "rebalances deployed (1-3)",
            Some(2.0),
            imb.adaptations_deployed as f64,
        ),
    ];
    Ok(vec![
        Series {
            id: "overheads",
            title: "Q1 unnecessary-adaptivity overheads".into(),
            cells: overhead_cells,
        },
        Series {
            id: "overheads",
            title: "Q1 notification funnel (10x imbalance)".into(),
            cells: funnel_cells,
        },
    ])
}

/// §3.2 monitoring-frequency sensitivity (the paper's figure omitted
/// for space): Q1 at 10x with raw-event frequency 0 / per-10 / per-20 /
/// per-30 tuples — both adaptation quality and overhead should be
/// insensitive (frequency 0 means no monitoring, i.e. no adaptation).
pub fn monitor_freq(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = &config.q1;
    let base = q1.run(off(), &[])?;
    let mut cells = Vec::new();
    for interval in [0u32, 10, 20, 30] {
        let adapt = AdaptivityConfig {
            monitoring_interval_tuples: interval,
            ..a1r2()
        };
        let report = q1.run(adapt, &ws_pert(10.0))?;
        cells.push(Cell::new(
            if interval == 0 {
                "no monitoring".to_string()
            } else {
                format!("1 per {interval} tuples")
            },
            None,
            norm(&report, &base),
        ));
    }
    Ok(vec![Series {
        id: "monfreq",
        title: "Q1 10x — monitoring frequency sensitivity".into(),
        cells,
    }])
}

/// Ablations over the design choices DESIGN.md calls out: the
/// Diagnoser threshold `thres_a`, the detector window length, the
/// hash-bucket granularity of stateful repartitioning, and the
/// Responder's progress cutoff. Values are normalised response times
/// (Q1 at 10x for the stateless knobs, Q2 at sleep 50 ms for bucket
/// granularity), with the deployed-adaptation count appended so
/// threshold-churn is visible.
pub fn ablation(config: &ReproConfig) -> Result<Vec<Series>> {
    let q1 = &config.q1;
    let q1_base = q1.run(off(), &[])?;
    // A churn schedule that keeps the adaptivity loop honest: load
    // arrives at a quarter of the baseline runtime, disappears at half,
    // and returns twice as strong at three quarters. Static perturbation
    // converges in one adaptation and hides the knobs' effects.
    let churn = |base_ms: f64| {
        use gridq_common::SimTime;
        gridq_grid::PerturbationSchedule::none()
            .then_at(
                SimTime::from_millis(base_ms * 0.25),
                Perturbation::CostFactor(10.0),
            )
            .then_at(SimTime::from_millis(base_ms * 0.5), Perturbation::None)
            .then_at(
                SimTime::from_millis(base_ms * 0.75),
                Perturbation::CostFactor(20.0),
            )
    };
    let schedule = churn(q1_base.response_time_ms);
    let mut out = Vec::new();

    let mut cells = Vec::new();
    for thres_a in [0.05, 0.2, 0.5] {
        let adapt = AdaptivityConfig { thres_a, ..a1r1() };
        let report = q1.run_scheduled(adapt, &[(1, schedule.clone())])?;
        cells.push(Cell::new(
            format!(
                "thres_a = {thres_a} ({} adaptations)",
                report.adaptations_deployed
            ),
            None,
            norm(&report, &q1_base),
        ));
    }
    out.push(Series {
        id: "ablation",
        title: "Q1 churn — Diagnoser threshold thres_a".into(),
        cells,
    });

    let mut cells = Vec::new();
    for window in [5usize, 25, 100] {
        let adapt = AdaptivityConfig {
            detector_window: window,
            ..a1r1()
        };
        let report = q1.run_scheduled(adapt, &[(1, schedule.clone())])?;
        cells.push(Cell::new(
            format!(
                "window = {window} ({} adaptations)",
                report.adaptations_deployed
            ),
            None,
            norm(&report, &q1_base),
        ));
    }
    out.push(Series {
        id: "ablation",
        title: "Q1 churn — detector window length".into(),
        cells,
    });

    let mut cells = Vec::new();
    for cutoff in [0.5, 0.95, 1.0] {
        let adapt = AdaptivityConfig {
            progress_cutoff: cutoff,
            ..a1r1()
        };
        let report = q1.run_scheduled(adapt, &[(1, schedule.clone())])?;
        cells.push(Cell::new(
            format!(
                "progress cutoff = {cutoff} ({} deployed, {} declined)",
                report.adaptations_deployed, report.declined_near_completion
            ),
            None,
            norm(&report, &q1_base),
        ));
    }
    out.push(Series {
        id: "ablation",
        title: "Q1 churn — Responder progress cutoff".into(),
        cells,
    });

    let q2_base = config.q2.run(off(), &[])?;
    let mut cells = Vec::new();
    for buckets in [8u32, 64, 256] {
        let q2 = Q2Experiment {
            bucket_count: buckets,
            ..config.q2.clone()
        };
        let report = q2.run(a1r1(), &sleep_pert(50.0))?;
        cells.push(Cell::new(
            format!(
                "{buckets} buckets ({} state tuples migrated)",
                report.state_tuples_migrated
            ),
            None,
            norm(&report, &q2_base),
        ));
    }
    out.push(Series {
        id: "ablation",
        title: "Q2 sleep 50ms R1 — hash-bucket granularity".into(),
        cells,
    });
    Ok(out)
}

/// Output of the observability demo: the rendered summary plus the two
/// JSON-lines documents (`repro obsdemo --obs-out PATH` writes them).
#[derive(Debug, Clone)]
pub struct ObsDemo {
    /// Summary series (event/deploy counts per substrate).
    pub series: Vec<Series>,
    /// The simulated run's registry snapshot and adaptivity timeline.
    pub sim: ObsReport,
    /// The threaded run's registry snapshot and adaptivity timeline.
    pub threaded: ObsReport,
}

/// Observability demo: Q1 under a 10x perturbation on one evaluator,
/// executed on *both* substrates — the deterministic simulator and the
/// threaded wall-clock executor — with the obs layer capturing each hop
/// of the control loop. The two timelines answer the same questions
/// ("what fired, why, what was deployed") with the same schema.
pub fn obsdemo(config: &ReproConfig) -> Result<ObsDemo> {
    let q1 = &config.q1;

    // Simulated run (virtual time; `wall_ms` is null in the export).
    let sim_report = q1.run(a1r2(), &ws_pert(10.0))?;
    let sim = sim_report
        .obs
        .ok_or_else(|| GridError::Execution("simulation ran with obs disabled".into()))?;

    // Threaded run of the same plan (wall-clock time; evaluator 1 =
    // NodeId 2 is the perturbed machine, as in the sim run).
    let mut perturbations = std::collections::HashMap::new();
    perturbations.insert(NodeId::new(2), Perturbation::CostFactor(10.0));
    let exec = ThreadedExecutor::new(
        q1.catalog(),
        ThreadedConfig {
            adaptivity: a1r2(),
            cost_scale: 0.01,
            perturbations,
            receive_cost_ms: 1.0,
            ..Default::default()
        },
    );
    let threaded_report = exec.run(&q1.plan())?;
    let threaded = threaded_report
        .obs
        .ok_or_else(|| GridError::Execution("threaded run with obs disabled".into()))?;

    let summarise = |label: &str, obs: &ObsReport, deployed: u64| {
        vec![
            Cell::new(
                format!("{label}: timeline events"),
                None,
                obs.events.len() as f64,
            ),
            Cell::new(
                format!("{label}: adaptations deployed"),
                None,
                deployed as f64,
            ),
            Cell::new(
                format!("{label}: events dropped"),
                None,
                obs.dropped_events as f64,
            ),
        ]
    };
    let mut cells = summarise("sim", &sim, sim_report.adaptations_deployed);
    cells.extend(summarise(
        "threaded",
        &threaded,
        threaded_report.adaptations_deployed,
    ));
    Ok(ObsDemo {
        series: vec![Series {
            id: "obsdemo",
            title: "Q1 10x — observability demo (sim + threaded)".into(),
            cells,
        }],
        sim,
        threaded,
    })
}

/// The threaded-substrate benchmark artifact.
pub struct ThreadedBench {
    /// Summary series for the console.
    pub series: Vec<Series>,
    /// The JSON document for `BENCH_threaded.json`.
    pub json: String,
}

/// Benchmarks the wall-clock executor in three configurations — Q1
/// static, Q1 under a 10x perturbation with prospective (R2) adaptation,
/// and the stateful Q2 hash join under the same perturbation with
/// retrospective (R1) recall — and serializes per-scenario wall-clock
/// quantiles plus the adaptivity counters as a JSON artifact, so the
/// threaded substrate's performance trajectory can be tracked across
/// commits. `GRIDQ_BENCH_SAMPLES` overrides the per-scenario run count
/// (default 3; these are whole-query macro runs, not microbenchmarks).
pub fn threaded_bench(config: &ReproConfig) -> Result<ThreadedBench> {
    let samples: usize = std::env::var("GRIDQ_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    let q1 = &config.q1;
    // The R1 scenario mirrors the substrate-parity test: cheap join
    // costs and a slow probe scan keep the producers streaming when the
    // imbalance is diagnosed, so the recall protocol actually runs.
    let q2 = Q2Experiment {
        probe_cost_ms: 0.5,
        build_cost_ms: 0.1,
        receive_cost_ms: 1.0,
        bucket_count: 16,
        buffer_tuples: 10,
        ..config.q2.clone()
    };
    let mut q2_plan = q2.plan();
    q2_plan.sources[0].scan_cost_ms = 1.0;
    q2_plan.sources[1].scan_cost_ms = 10.0;

    let perturbed = || {
        let mut p = std::collections::HashMap::new();
        p.insert(NodeId::new(2), Perturbation::CostFactor(10.0));
        p
    };
    let mut cells = Vec::new();
    let mut scenario_objs = Vec::new();
    let mut bench_scenario =
        |name: &str, run: &dyn Fn() -> Result<gridq_exec::ThreadedReport>| -> Result<()> {
            let mut wall = Vec::with_capacity(samples);
            let mut last = None;
            for _ in 0..samples {
                let report = run()?;
                wall.push(report.wall_ms);
                last = Some(report);
            }
            let report = last.expect("samples >= 1");
            wall.sort_by(|a, b| a.total_cmp(b));
            let median = wall[wall.len() / 2];
            cells.push(Cell::new(format!("{name}: median wall ms"), None, median));
            cells.push(Cell::new(
                format!("{name}: adaptations deployed"),
                None,
                report.adaptations_deployed as f64,
            ));
            cells.push(Cell::new(
                format!("{name}: recalls completed"),
                None,
                report.recalls_completed as f64,
            ));
            let mut obj = JsonObj::new();
            obj.str("name", name)
                .int("samples", samples as u64)
                .num("wall_ms_min", wall[0])
                .num("wall_ms_median", median)
                .num("wall_ms_max", wall[wall.len() - 1])
                .int("results", report.results.len() as u64)
                .int("raw_m1_events", report.raw_m1_events)
                .int("adaptations_deployed", report.adaptations_deployed)
                .int("recalls_completed", report.recalls_completed)
                .int("recalls_aborted", report.recalls_aborted)
                .int("state_tuples_migrated", report.state_tuples_migrated)
                .int("tuples_recalled", report.tuples_recalled);
            scenario_objs.push(obj.finish());
            Ok(())
        };

    bench_scenario("q1_static", &|| {
        ThreadedExecutor::new(
            q1.catalog(),
            ThreadedConfig {
                adaptivity: off(),
                cost_scale: 0.002,
                ..Default::default()
            },
        )
        .run(&q1.plan())
    })?;
    bench_scenario("q1_r2_perturbed", &|| {
        ThreadedExecutor::new(
            q1.catalog(),
            ThreadedConfig {
                adaptivity: a1r2(),
                cost_scale: 0.01,
                perturbations: perturbed(),
                receive_cost_ms: 1.0,
                ..Default::default()
            },
        )
        .run(&q1.plan())
    })?;
    bench_scenario("q2_r1_recall", &|| {
        ThreadedExecutor::new(
            q2.catalog(),
            ThreadedConfig {
                adaptivity: a1r1(),
                cost_scale: 0.01,
                perturbations: perturbed(),
                checkpoint_interval: 8,
                ..Default::default()
            },
        )
        .run(&q2_plan)
    })?;

    let mut doc = JsonObj::new();
    doc.str("bench", "threaded")
        .int("q1_tuples", q1.tuples as u64)
        .int("q2_sequences", q2.sequences as u64)
        .int("q2_interactions", q2.interactions as u64)
        .int("samples", samples as u64)
        .raw("scenarios", &format!("[{}]", scenario_objs.join(",")));
    Ok(ThreadedBench {
        series: vec![Series {
            id: "threaded",
            title: "threaded executor — wall-clock smoke (static / R2 / R1 recall)".into(),
            cells,
        }],
        json: doc.finish(),
    })
}

/// The socket-substrate benchmark artifact.
pub struct SocketsBench {
    /// Summary series for the console.
    pub series: Vec<Series>,
    /// The JSON document for `BENCH_sockets.json`.
    pub json: String,
}

/// Benchmarks the socket substrate in the same three shapes as
/// [`threaded_bench`] — Q1 static, Q1 with a prospective routing swap
/// under the 10x perturbation, and the stateful Q2 join with a
/// retrospective recall — but over real socket connections, with the
/// swap/recall scripted (the decision stack is benchmarked on the other
/// substrates; what this artifact tracks is the wire data plane's
/// cost). `GRIDQ_BENCH_SAMPLES` overrides the per-scenario run count.
pub fn sockets_bench(config: &ReproConfig) -> Result<SocketsBench> {
    use gridq_exec::socket::{
        ScriptedAdaptation, ServiceResolver, SocketConfig, SocketExecutor, WireStageSpec,
    };
    use gridq_workload::{protein_interactions, protein_sequences, EntropyAnalyser};
    use std::sync::Arc;

    let samples: usize = std::env::var("GRIDQ_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
        .max(1);

    let q1 = &config.q1;
    let q2 = Q2Experiment {
        probe_cost_ms: 0.5,
        build_cost_ms: 0.1,
        receive_cost_ms: 1.0,
        bucket_count: 16,
        buffer_tuples: 10,
        ..config.q2.clone()
    };
    let mut q2_plan = q2.plan();
    q2_plan.sources[0].scan_cost_ms = 1.0;
    q2_plan.sources[1].scan_cost_ms = 10.0;

    let resolver: ServiceResolver = Arc::new(|name: &str, cost_ms: f64| {
        (name == "EntropyAnalyser").then(|| {
            Arc::new(EntropyAnalyser::new(cost_ms)) as Arc<dyn gridq_engine::service::Service>
        })
    });
    let q1_spec = || WireStageSpec::ServiceCall {
        input_schema: protein_sequences(1, q1.seq_len, q1.seed).schema().clone(),
        service: "EntropyAnalyser".into(),
        service_cost_ms: q1.ws_cost_ms,
        arg_cols: vec![1],
        output_name: "entropy".into(),
        keep_input: false,
    };
    let q2_spec = || WireStageSpec::HashJoin {
        build_schema: protein_sequences(1, q2.seq_len, q2.seed).schema().clone(),
        probe_schema: protein_interactions(1, 1, q2.seed).schema().clone(),
        build_key: 0,
        probe_key: 0,
        build_cost_ms: q2.build_cost_ms,
        probe_cost_ms: q2.probe_cost_ms,
    };
    let perturbed = || {
        let mut p = std::collections::HashMap::new();
        p.insert(NodeId::new(2), Perturbation::CostFactor(10.0));
        p
    };

    let mut cells = Vec::new();
    let mut scenario_objs = Vec::new();
    let mut bench_scenario =
        |name: &str, run: &dyn Fn() -> Result<gridq_exec::socket::SocketReport>| -> Result<()> {
            let mut wall = Vec::with_capacity(samples);
            let mut last = None;
            for _ in 0..samples {
                let report = run()?;
                wall.push(report.wall_ms);
                last = Some(report);
            }
            let report = last.expect("samples >= 1");
            wall.sort_by(|a, b| a.total_cmp(b));
            let median = wall[wall.len() / 2];
            cells.push(Cell::new(format!("{name}: median wall ms"), None, median));
            cells.push(Cell::new(
                format!("{name}: adaptations deployed"),
                None,
                report.adaptations_deployed as f64,
            ));
            cells.push(Cell::new(
                format!("{name}: recalls completed"),
                None,
                report.recalls_completed as f64,
            ));
            let mut obj = JsonObj::new();
            obj.str("name", name)
                .int("samples", samples as u64)
                .num("wall_ms_min", wall[0])
                .num("wall_ms_median", median)
                .num("wall_ms_max", wall[wall.len() - 1])
                .int("results", report.results.len() as u64)
                .int("adaptations_deployed", report.adaptations_deployed)
                .int("recalls_completed", report.recalls_completed)
                .int("recalls_aborted", report.recalls_aborted)
                .int("state_tuples_migrated", report.state_tuples_migrated)
                .int("tuples_recalled", report.tuples_recalled)
                .int("tuples_retransmitted", report.tuples_retransmitted)
                .int("dedup_peak_entries", report.dedup_peak_entries)
                .int("reconnects", report.reconnects);
            scenario_objs.push(obj.finish());
            Ok(())
        };

    bench_scenario("q1_static", &|| {
        let mut sc = SocketConfig::new(q1_spec(), Arc::clone(&resolver));
        sc.cost_scale = 0.002;
        SocketExecutor::new(q1.catalog(), sc).run(&q1.plan())
    })?;
    bench_scenario("q1_r2_scripted", &|| {
        let mut sc = SocketConfig::new(q1_spec(), Arc::clone(&resolver));
        sc.cost_scale = 0.01;
        sc.perturbations = perturbed();
        sc.adaptations = vec![ScriptedAdaptation {
            after_routed: q1.tuples as u64 / 4,
            weights: vec![0.9, 0.1],
            retrospective: false,
        }];
        SocketExecutor::new(q1.catalog(), sc).run(&q1.plan())
    })?;
    bench_scenario("q2_r1_recall", &|| {
        let mut sc = SocketConfig::new(q2_spec(), Arc::clone(&resolver));
        sc.cost_scale = 0.05;
        sc.checkpoint_interval = 8;
        sc.perturbations = perturbed();
        sc.adaptations = vec![ScriptedAdaptation {
            after_routed: (q2.sequences + q2.interactions / 4) as u64,
            weights: vec![0.25, 0.75],
            retrospective: true,
        }];
        SocketExecutor::new(q2.catalog(), sc).run(&q2_plan)
    })?;

    let mut doc = JsonObj::new();
    doc.str("bench", "sockets")
        .int("q1_tuples", q1.tuples as u64)
        .int("q2_sequences", q2.sequences as u64)
        .int("q2_interactions", q2.interactions as u64)
        .int("samples", samples as u64)
        .raw("scenarios", &format!("[{}]", scenario_objs.join(",")));
    Ok(SocketsBench {
        series: vec![Series {
            id: "sockets",
            title: "socket substrate — wall-clock smoke (static / scripted R2 / R1 recall)".into(),
            cells,
        }],
        json: doc.finish(),
    })
}

/// The service-plane benchmark artifact.
pub struct ServiceBench {
    /// Summary series for the console.
    pub series: Vec<Series>,
    /// The JSON document for `BENCH_service.json`.
    pub json: String,
}

/// Drives the query service plane with the closed-loop load driver: for
/// each schedule seed (1, 7, 1303), a population of concurrent sessions
/// submits small Q1 queries — even sessions on the threaded substrate,
/// odd sessions over sockets — through one [`QueryService`] with a
/// 4-slot admission bound. What this artifact tracks is the *service
/// plane's* cost (admission, queueing, multiplexing over shared nodes),
/// not raw substrate throughput (`BENCH_threaded.json` does that), so
/// each query is deliberately tiny. The run is loud about correctness:
/// any incomplete or wrong-cardinality query fails the bench.
/// `GRIDQ_SERVICE_SESSIONS` overrides the session count (default 64).
///
/// [`QueryService`]: gridq_exec::QueryService
pub fn service_bench(config: &ReproConfig) -> Result<ServiceBench> {
    use gridq_engine::AdmissionConfig;
    use gridq_exec::socket::{ServiceResolver, SocketConfig, WireStageSpec};
    use gridq_exec::{QueryOutcome, QueryRun, QueryService, QuerySubmission, ServiceConfig};
    use gridq_workload::driver::{self, LoadConfig, QueryBackend, SessionOutcome};
    use gridq_workload::{protein_sequences, EntropyAnalyser};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    let sessions: usize = std::env::var("GRIDQ_SERVICE_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
        .max(1);

    // Per-query shape: a Q1 an order of magnitude smaller than the
    // paper's, so dozens of concurrent queries stay cheap.
    let q1 = Q1Experiment {
        tuples: (config.q1.tuples / 20).max(40),
        ..config.q1.clone()
    };

    struct Backend<'a> {
        service: &'a QueryService,
        q1: Q1Experiment,
        resolver: ServiceResolver,
        expected: usize,
        result_tuples: AtomicU64,
    }

    impl Backend<'_> {
        fn q1_spec(&self) -> WireStageSpec {
            WireStageSpec::ServiceCall {
                input_schema: protein_sequences(1, self.q1.seq_len, self.q1.seed)
                    .schema()
                    .clone(),
                service: "EntropyAnalyser".into(),
                service_cost_ms: self.q1.ws_cost_ms,
                arg_cols: vec![1],
                output_name: "entropy".into(),
                keep_input: false,
            }
        }
    }

    impl QueryBackend for Backend<'_> {
        fn run_query(&self, session: usize, _seq: usize) -> SessionOutcome {
            let run = if session.is_multiple_of(2) {
                QueryRun::threaded(ThreadedConfig {
                    adaptivity: off(),
                    cost_scale: 0.002,
                    ..Default::default()
                })
            } else {
                let mut sc = SocketConfig::new(self.q1_spec(), Arc::clone(&self.resolver));
                sc.cost_scale = 0.002;
                QueryRun::Socket(Box::new(sc))
            };
            let (_id, outcome) = self.service.submit_and_wait(QuerySubmission {
                catalog: self.q1.catalog(),
                plan: self.q1.plan(),
                run,
            });
            match outcome {
                QueryOutcome::Rejected { .. } => SessionOutcome::Rejected,
                QueryOutcome::Failed { error } => SessionOutcome::Failed(error),
                done => {
                    let n = done.results().map_or(0, <[_]>::len);
                    self.result_tuples.fetch_add(n as u64, Ordering::Relaxed);
                    SessionOutcome::Completed {
                        correct: n == self.expected,
                    }
                }
            }
        }
    }

    let resolver: ServiceResolver = Arc::new(|name: &str, cost_ms: f64| {
        (name == "EntropyAnalyser").then(|| {
            Arc::new(EntropyAnalyser::new(cost_ms)) as Arc<dyn gridq_engine::service::Service>
        })
    });

    let mut cells = Vec::new();
    let mut scenario_objs = Vec::new();
    for seed in [1u64, 7, 1303] {
        let service = QueryService::new(ServiceConfig {
            admission: AdmissionConfig {
                max_concurrent: 4,
                // Deep enough that no session is rejected: the bench
                // measures queueing, and a rejection is a correctness
                // failure here.
                queue_depth: sessions,
            },
            ..ServiceConfig::default()
        })?;
        let backend = Backend {
            service: &service,
            q1: q1.clone(),
            resolver: Arc::clone(&resolver),
            expected: q1.tuples,
            result_tuples: AtomicU64::new(0),
        };
        let load = LoadConfig {
            sessions,
            queries_per_session: 1,
            seed,
            arrival_window_ms: 50.0,
            mean_think_ms: 5.0,
            time_scale: 1.0,
        };
        let report = driver::run(&load, &backend);
        if !report.all_correct() {
            return Err(GridError::Execution(format!(
                "service bench seed {seed}: {} submitted, {} completed, {} correct, \
                 {} rejected, {} failed — the service plane dropped or corrupted queries",
                report.submitted, report.completed, report.correct, report.rejected, report.failed
            )));
        }
        let stats = service.admission_stats();
        let results = backend.result_tuples.load(Ordering::Relaxed);
        let name = format!("service_seed{seed}");
        cells.push(Cell::new(format!("{name}: wall ms"), None, report.wall_ms));
        cells.push(Cell::new(
            format!("{name}: latency p95 ms"),
            None,
            report.latency.p95_ms,
        ));
        cells.push(Cell::new(
            format!("{name}: peak queued"),
            None,
            stats.peak_queued as f64,
        ));
        let mut obj = JsonObj::new();
        obj.str("name", &name)
            .int("samples", 1)
            .int("sessions", sessions as u64)
            .int("results", results)
            .num("wall_ms_median", report.wall_ms)
            .int("submitted", report.submitted)
            .int("completed", report.completed)
            .int("correct", report.correct)
            .int("rejected", report.rejected)
            .int("failed", report.failed)
            .num("latency_mean_ms", report.latency.mean_ms)
            .num("latency_p50_ms", report.latency.p50_ms)
            .num("latency_p95_ms", report.latency.p95_ms)
            .num("latency_max_ms", report.latency.max_ms)
            .int("admitted", stats.admitted)
            .int("enqueued", stats.enqueued)
            .int("peak_running", stats.peak_running as u64)
            .int("peak_queued", stats.peak_queued as u64);
        scenario_objs.push(obj.finish());
    }

    let mut doc = JsonObj::new();
    doc.str("bench", "service")
        .int("sessions", sessions as u64)
        .int("q1_tuples", q1.tuples as u64)
        .raw("scenarios", &format!("[{}]", scenario_objs.join(",")));
    Ok(ServiceBench {
        series: vec![Series {
            id: "service",
            title: format!(
                "query service plane — closed-loop driver ({sessions} sessions, \
                 threaded + sockets, seeds 1/7/1303)"
            ),
            cells,
        }],
        json: doc.finish(),
    })
}

/// Every artifact, in paper order.
pub fn all(config: &ReproConfig) -> Result<Vec<Series>> {
    let mut out = Vec::new();
    out.extend(table1(config)?);
    out.extend(fig2a(config)?);
    out.extend(fig2b(config)?);
    out.extend(fig3a(config)?);
    out.extend(fig3b(config)?);
    out.extend(fig4(config)?);
    out.extend(fig5(config)?);
    out.extend(overheads(config)?);
    out.extend(monitor_freq(config)?);
    out.extend(ablation(config)?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threaded_bench_emits_parseable_json() {
        use gridq_obs::Json;
        let bench = threaded_bench(&ReproConfig::tiny()).unwrap();
        let doc = Json::parse(&bench.json).expect("artifact must be valid JSON");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("threaded"));
        let scenarios = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .expect("scenarios array");
        assert_eq!(scenarios.len(), 3);
        for s in scenarios {
            assert!(s.get("name").and_then(Json::as_str).is_some());
            assert!(s.get("wall_ms_median").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(s.get("results").and_then(Json::as_u64).unwrap() > 0);
        }
        // The recall scenario actually exercised the R1 protocol.
        let r1 = &scenarios[2];
        assert_eq!(r1.get("name").and_then(Json::as_str), Some("q2_r1_recall"));
        assert!(r1.get("recalls_completed").and_then(Json::as_u64).unwrap() >= 1);
        assert!(!bench.series.is_empty());
    }

    #[test]
    fn service_bench_emits_parseable_json_the_gate_accepts() {
        use gridq_obs::Json;
        // Only this test reads the override, so the process-global env
        // write cannot race another test.
        std::env::set_var("GRIDQ_SERVICE_SESSIONS", "8");
        let bench = service_bench(&ReproConfig::tiny()).unwrap();
        std::env::remove_var("GRIDQ_SERVICE_SESSIONS");
        let doc = Json::parse(&bench.json).expect("artifact must be valid JSON");
        assert_eq!(doc.get("bench").and_then(Json::as_str), Some("service"));
        let scenarios = doc
            .get("scenarios")
            .and_then(Json::as_array)
            .expect("scenarios array");
        assert_eq!(scenarios.len(), 3, "one scenario per schedule seed");
        for s in scenarios {
            assert_eq!(s.get("submitted").and_then(Json::as_u64), Some(8));
            assert_eq!(
                s.get("completed").and_then(Json::as_u64),
                s.get("correct").and_then(Json::as_u64),
                "every completed query must verify"
            );
            assert_eq!(s.get("rejected").and_then(Json::as_u64), Some(0));
            assert!(s.get("wall_ms_median").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(s.get("results").and_then(Json::as_u64).unwrap() > 0);
            assert!(s.get("peak_running").and_then(Json::as_u64).unwrap() <= 4);
        }
        // The regression gate and the trajectory record both accept the
        // service artifact.
        let gate = crate::gate::evaluate(&bench.json, &bench.json, 0.8).unwrap();
        assert!(gate.passed());
        assert!(crate::trajectory::append(None, "test", &bench.json).is_ok());
    }

    #[test]
    // The baseline cell is normalised by itself, so it is exactly 1.0 by
    // construction (x / x), not approximately.
    #[allow(clippy::float_cmp)]
    fn table1_shape_holds_at_small_scale() {
        let series = table1(&ReproConfig::small()).unwrap();
        assert_eq!(series.len(), 3);
        for row in &series {
            assert_eq!(row.cells.len(), 4);
            let no_ad_no_imb = row.cells[0].measured;
            let ad_no_imb = row.cells[1].measured;
            let no_ad_imb = row.cells[2].measured;
            let ad_imb = row.cells[3].measured;
            assert_eq!(no_ad_no_imb, 1.0);
            assert!(ad_no_imb >= 1.0, "adaptivity costs something: {row:?}");
            assert!(ad_no_imb < 1.35, "unnecessary overhead stays low: {row:?}");
            assert!(no_ad_imb > ad_imb, "adaptivity must help: {row:?}");
        }
    }

    #[test]
    fn fig2a_degradation_grows_without_adaptivity() {
        // Paper scale: at small scale the source finishes distributing
        // before the first adaptation lands and prospective responses
        // cannot help — which is exactly the effect Fig. 3(b) studies.
        let series = fig2a(&ReproConfig::default()).unwrap();
        let disabled = &series[0].cells;
        let enabled = &series[1].cells;
        assert!(disabled[0].measured < disabled[1].measured);
        assert!(disabled[1].measured < disabled[2].measured);
        for (d, e) in disabled.iter().zip(enabled) {
            assert!(
                e.measured < 0.7 * d.measured,
                "adaptivity must recover most of the loss: {d:?} vs {e:?}"
            );
        }
    }

    #[test]
    fn fig5_adaptivity_handles_rapid_changes() {
        let series = fig5(&ReproConfig::small()).unwrap();
        for s in &series {
            let stable = s.cells[0].measured;
            for noisy in &s.cells[1..] {
                // Performance under rapidly varying perturbations stays
                // within ~35% of the stable-perturbation case.
                assert!(
                    (noisy.measured - stable).abs() / stable < 0.35,
                    "{}: stable {stable} vs {noisy:?}",
                    s.title
                );
            }
        }
    }

    #[test]
    fn render_includes_paper_column() {
        let s = Series {
            id: "x",
            title: "demo".into(),
            cells: vec![Cell::new("a", Some(1.5), 1.6), Cell::new("b", None, 2.0)],
        };
        let text = s.render();
        assert!(text.contains("paper    1.50"));
        assert!(text.contains("—"));
    }
}
