//! A minimal, dependency-free benchmarking harness.
//!
//! Criterion is excellent, but it is an external dependency, and this
//! workspace must build and test on machines with no crates.io access
//! (the same offline-first constraint that motivates the in-tree
//! property-testing harness in `gridq-common`). This module provides the
//! small slice the repro benches need: warmup, automatic per-sample
//! iteration batching so fast functions are timed over a meaningful
//! interval, and a min/median/mean/max report.
//!
//! Bench binaries keep `harness = false` in `Cargo.toml` and call
//! [`Group::bench`] from `main`. `cargo bench` passes a `--bench` flag
//! (and test filters); unrecognised arguments are ignored so the
//! binaries run under both `cargo bench` and direct invocation.
//! `GRIDQ_BENCH_SAMPLES` overrides the per-benchmark sample count.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall time for one sample; the harness batches iterations of
/// fast functions until a sample takes at least this long.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// A named collection of benchmarks sharing a sample budget.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// A group with the default budget (10 samples, or
    /// `GRIDQ_BENCH_SAMPLES`).
    pub fn new(name: impl Into<String>) -> Self {
        let samples = std::env::var("GRIDQ_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10)
            .max(1);
        Group {
            name: name.into(),
            samples,
        }
    }

    /// Overrides the number of timed samples.
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples.max(1);
        self
    }

    /// Times `f`, printing a one-line report. Returns the per-iteration
    /// sample durations so callers (and tests) can assert on them.
    pub fn bench(&self, name: &str, mut f: impl FnMut()) -> Vec<Duration> {
        // Warmup + calibration: run until TARGET_SAMPLE has elapsed to
        // learn how many iterations one sample needs.
        let calibrate_started = Instant::now();
        let mut calibration_iters = 0u64;
        while calibrate_started.elapsed() < TARGET_SAMPLE {
            f();
            calibration_iters += 1;
        }
        let per_iter = calibrate_started.elapsed() / calibration_iters.max(1) as u32;
        let iters_per_sample = if per_iter >= TARGET_SAMPLE {
            1
        } else {
            (TARGET_SAMPLE.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64
        };

        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let started = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            samples.push(started.elapsed() / iters_per_sample as u32);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        println!(
            "{}",
            report_line(&self.name, name, self.samples, iters_per_sample, &sorted)
        );
        samples
    }
}

/// Formats the one-line bench report. This is a stdout contract: CI log
/// readers and ad-hoc `grep median=` pipelines parse these lines, so the
/// field names, their order, and the `group/name` prefix are stable. The
/// bench name is left-padded to a fixed column so reports align.
fn report_line(
    group: &str,
    name: &str,
    samples: usize,
    iters_per_sample: u64,
    sorted: &[Duration],
) -> String {
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    format!(
        "{group}/{name:<28} samples={samples} iters/sample={iters_per_sample} \
         min={:?} median={median:?} mean={mean:?} max={:?}",
        sorted[0],
        sorted[sorted.len() - 1],
    )
}

/// Entry point helper for `harness = false` bench binaries: runs `body`
/// unless the caller asked for the test-mode no-op (`cargo test` invokes
/// bench binaries with `--test`; there is nothing to test, so exit
/// cleanly instead of burning minutes re-running experiments).
pub fn bench_main(body: impl FnOnce()) {
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    body();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_requested_samples() {
        let samples = Group::new("test").samples(3).bench("noop", || {
            black_box(1 + 1);
        });
        assert_eq!(samples.len(), 3);
    }

    #[test]
    fn samples_are_positive_durations() {
        let samples = Group::new("test").samples(2).bench("spin", || {
            let mut x = 0u64;
            for i in 0..1000 {
                x = x.wrapping_add(black_box(i));
            }
            black_box(x);
        });
        assert!(samples.iter().all(|d| d.as_nanos() > 0));
    }

    // Regression coverage for the `no-println` lint-baseline entry on
    // this file: the one allowed `println!` exists to print exactly this
    // line, so the line's shape is pinned here. If the format drifts,
    // these tests fail before any downstream grep pipeline does.
    #[test]
    fn report_line_format_is_a_stable_contract() {
        let sorted = [
            Duration::from_micros(10),
            Duration::from_micros(20),
            Duration::from_micros(40),
        ];
        let line = report_line("micro", "hash_join", 3, 128, &sorted);
        assert_eq!(
            line,
            "micro/hash_join                    samples=3 iters/sample=128 \
             min=10µs median=20µs mean=23.333µs max=40µs"
        );
    }

    #[test]
    fn report_line_fields_appear_in_grep_order() {
        let sorted = [Duration::from_millis(2), Duration::from_millis(5)];
        let line = report_line("g", "b", 2, 1, &sorted);
        let mut last = 0;
        for field in [
            "g/b",
            "samples=2",
            "iters/sample=1",
            "min=2ms",
            "median=5ms",
            "mean=3.5ms",
            "max=5ms",
        ] {
            let at = line
                .find(field)
                .unwrap_or_else(|| panic!("field {field:?} missing from report line {line:?}"));
            assert!(at >= last, "field {field:?} out of order in {line:?}");
            last = at;
        }
    }

    #[test]
    fn samples_floor_is_one() {
        let samples = Group::new("test").samples(0).bench("noop", || {
            black_box(());
        });
        assert_eq!(samples.len(), 1);
    }
}
