//! Fig. 4: Q1 on three evaluators with 0-3 perturbed machines
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- fig4`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("fig4").bench("regenerate", || {
            runners::fig4(&config).expect("experiment runs");
        });
    });
}
