//! Fig. 3(b): Q1 with doubled dataset, prospective adaptations
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- fig3b`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("fig3b").bench("regenerate", || {
            runners::fig3b(&config).expect("experiment runs");
        });
    });
}
