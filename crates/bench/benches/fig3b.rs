//! Fig. 3(b): Q1 with doubled dataset, prospective adaptations
//!
//! Criterion measures the wall-clock cost of regenerating the artifact on
//! the virtual-time simulator at reduced scale; the artifact's *values*
//! (normalised response times) are printed by `cargo run --release --bin
//! repro -- fig3b`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use gridq_bench::runners::{self, ReproConfig};

fn bench(c: &mut Criterion) {
    let config = ReproConfig::tiny();
    let mut group = c.benchmark_group("fig3b");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(5));
    group.bench_function("regenerate", |bencher| {
        bencher.iter(|| runners::fig3b(&config).expect("experiment runs"));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
