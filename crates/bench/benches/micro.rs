//! Microbenchmarks of the hot data structures underneath the adaptivity
//! pipeline: exchange routing, windowed monitoring statistics, recovery
//! logging, bucket-map rebalancing, and the entropy service.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gridq_common::{DistributionVector, TrimmedWindow, Tuple, Value};
use gridq_engine::distributed::{Router, RoutingPolicy, StreamKeys};
use gridq_engine::evaluator::StreamTag;
use gridq_recovery::RecoveryLog;
use gridq_workload::shannon_entropy;

fn bench_weighted_routing(c: &mut Criterion) {
    let policy = RoutingPolicy::Weighted {
        initial: DistributionVector::new(&[5.0, 3.0, 2.0]).unwrap(),
    };
    let mut router = Router::from_policy(&policy, 3).unwrap();
    let tuple = Tuple::new(vec![Value::Int(7)]);
    c.bench_function("router/weighted_route", |b| {
        b.iter(|| black_box(router.route(StreamTag::Single, black_box(&tuple)).unwrap()));
    });
}

fn bench_hash_routing(c: &mut Criterion) {
    let policy = RoutingPolicy::HashBuckets {
        bucket_count: 64,
        initial: DistributionVector::uniform(4),
        keys: StreamKeys {
            single: Some(0),
            ..Default::default()
        },
    };
    let mut router = Router::from_policy(&policy, 4).unwrap();
    let tuples: Vec<Tuple> = (0..64)
        .map(|i| Tuple::new(vec![Value::str(format!("ORF{i:06}"))]))
        .collect();
    let mut i = 0;
    c.bench_function("router/hash_route", |b| {
        b.iter(|| {
            i = (i + 1) % tuples.len();
            black_box(router.route(StreamTag::Single, &tuples[i]).unwrap())
        });
    });
}

fn bench_trimmed_window(c: &mut Criterion) {
    let mut window = TrimmedWindow::new(25);
    let mut x = 0.0f64;
    c.bench_function("stats/trimmed_window_push_mean", |b| {
        b.iter(|| {
            x += 1.0;
            window.push(x % 17.0);
            black_box(window.trimmed_mean())
        });
    });
}

fn bench_recovery_log(c: &mut Criterion) {
    c.bench_function("recovery/record_ack_cycle", |b| {
        b.iter(|| {
            let mut log = RecoveryLog::<u64>::new(2, 10).unwrap();
            let mut cps = Vec::new();
            for i in 0..100u64 {
                if let Some(cp) = log.record((i % 2) as u32, i).unwrap() {
                    cps.push(cp);
                }
            }
            for cp in cps {
                log.acknowledge(cp.dest, cp.id).unwrap();
            }
            black_box(log.total_unacked())
        });
    });
}

fn bench_bucket_rebalance(c: &mut Criterion) {
    let uniform = DistributionVector::uniform(4);
    let skewed = DistributionVector::new(&[6.0, 2.0, 1.0, 1.0]).unwrap();
    c.bench_function("dist/bucket_rebalance_64", |b| {
        b.iter(|| {
            let mut map = gridq_common::BucketMap::new(64, 4, &uniform).unwrap();
            black_box(map.rebalance(&skewed).unwrap())
        });
    });
}

fn bench_entropy(c: &mut Criterion) {
    let seq = "ACDEFGHIKLMNPQRSTVWY".repeat(4);
    c.bench_function("workload/shannon_entropy_80", |b| {
        b.iter(|| black_box(shannon_entropy(black_box(&seq))));
    });
}

criterion_group!(
    benches,
    bench_weighted_routing,
    bench_hash_routing,
    bench_trimmed_window,
    bench_recovery_log,
    bench_bucket_rebalance,
    bench_entropy
);
criterion_main!(benches);
