//! Microbenchmarks of the hot data structures underneath the adaptivity
//! pipeline: exchange routing, windowed monitoring statistics, recovery
//! logging, bucket-map rebalancing, and the entropy service.

use gridq_bench::harness::{bench_main, black_box, Group};
use gridq_common::{DistributionVector, TrimmedWindow, Tuple, Value};
use gridq_engine::distributed::{Router, RoutingPolicy, StreamKeys};
use gridq_engine::evaluator::StreamTag;
use gridq_recovery::RecoveryLog;
use gridq_workload::shannon_entropy;

fn bench_weighted_routing(g: &Group) {
    let policy = RoutingPolicy::Weighted {
        initial: DistributionVector::new(&[5.0, 3.0, 2.0]).unwrap(),
    };
    let mut router = Router::from_policy(&policy, 3).unwrap();
    let tuple = Tuple::new(vec![Value::Int(7)]);
    g.bench("router/weighted_route", || {
        black_box(router.route(StreamTag::Single, black_box(&tuple)).unwrap());
    });
}

fn bench_hash_routing(g: &Group) {
    let policy = RoutingPolicy::HashBuckets {
        bucket_count: 64,
        initial: DistributionVector::uniform(4),
        keys: StreamKeys {
            single: Some(0),
            ..Default::default()
        },
    };
    let mut router = Router::from_policy(&policy, 4).unwrap();
    let tuples: Vec<Tuple> = (0..64)
        .map(|i| Tuple::new(vec![Value::str(format!("ORF{i:06}"))]))
        .collect();
    let mut i = 0;
    g.bench("router/hash_route", || {
        i = (i + 1) % tuples.len();
        black_box(router.route(StreamTag::Single, &tuples[i]).unwrap());
    });
}

fn bench_trimmed_window(g: &Group) {
    let mut window = TrimmedWindow::new(25);
    let mut x = 0.0f64;
    g.bench("stats/trimmed_window_push_mean", || {
        x += 1.0;
        window.push(x % 17.0);
        black_box(window.trimmed_mean());
    });
}

fn bench_recovery_log(g: &Group) {
    g.bench("recovery/record_ack_cycle", || {
        let mut log = RecoveryLog::<u64>::new(2, 10).unwrap();
        let mut cps = Vec::new();
        for i in 0..100u64 {
            if let Some(cp) = log.record((i % 2) as u32, i).unwrap() {
                cps.push(cp);
            }
        }
        for cp in cps {
            log.acknowledge(cp.dest, cp.id).unwrap();
        }
        black_box(log.total_unacked());
    });
}

fn bench_bucket_rebalance(g: &Group) {
    let uniform = DistributionVector::uniform(4);
    let skewed = DistributionVector::new(&[6.0, 2.0, 1.0, 1.0]).unwrap();
    g.bench("dist/bucket_rebalance_64", || {
        let mut map = gridq_common::BucketMap::new(64, 4, &uniform).unwrap();
        black_box(map.rebalance(&skewed).unwrap());
    });
}

fn bench_entropy(g: &Group) {
    let seq = "ACDEFGHIKLMNPQRSTVWY".repeat(4);
    g.bench("workload/shannon_entropy_80", || {
        black_box(shannon_entropy(black_box(&seq)));
    });
}

fn main() {
    bench_main(|| {
        let g = Group::new("micro");
        bench_weighted_routing(&g);
        bench_hash_routing(&g);
        bench_trimmed_window(&g);
        bench_recovery_log(&g);
        bench_bucket_rebalance(&g);
        bench_entropy(&g);
    });
}
