//! Fig. 5: Q1 under rapidly changing (normally distributed) perturbations
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- fig5`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("fig5").bench("regenerate", || {
            runners::fig5(&config).expect("experiment runs");
        });
    });
}
