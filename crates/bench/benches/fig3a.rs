//! Fig. 3(a): Q2 retrospective adaptations under sleep 10/50/100 ms
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- fig3a`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("fig3a").bench("regenerate", || {
            runners::fig3a(&config).expect("experiment runs");
        });
    });
}
