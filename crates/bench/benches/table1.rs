//! Table 1: normalised Q1/Q2 performance under the four ad/imb configurations
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- table1`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("table1").bench("regenerate", || {
            runners::table1(&config).expect("experiment runs");
        });
    });
}
