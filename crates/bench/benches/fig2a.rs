//! Fig. 2(a): Q1 prospective adaptations at 10/20/30x perturbation
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- fig2a`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("fig2a").bench("regenerate", || {
            runners::fig2a(&config).expect("experiment runs");
        });
    });
}
