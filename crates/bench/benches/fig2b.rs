//! Fig. 2(b): Q1 under policies A1-R2, A1-R1, A2-R2
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- fig2b`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("fig2b").bench("regenerate", || {
            runners::fig2b(&config).expect("experiment runs");
        });
    });
}
