//! Ablations: thresholds, detector window, bucket granularity, progress gate
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- ablation`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("ablation").bench("regenerate", || {
            runners::ablation(&config).expect("experiment runs");
        });
    });
}
