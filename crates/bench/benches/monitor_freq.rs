//! Monitoring-frequency sensitivity (paper figure omitted for space)
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- monitor_freq`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("monitor_freq").bench("regenerate", || {
            runners::monitor_freq(&config).expect("experiment runs");
        });
    });
}
