//! Overheads: unnecessary-adaptivity cost and the notification funnel
//!
//! The harness measures the wall-clock cost of regenerating the artifact
//! on the virtual-time simulator at reduced scale; the artifact's
//! *values* (normalised response times) are printed by `cargo run
//! --release --bin repro -- overheads`.

use gridq_bench::harness::{bench_main, Group};
use gridq_bench::runners::{self, ReproConfig};

fn main() {
    bench_main(|| {
        let config = ReproConfig::tiny();
        Group::new("overheads").bench("regenerate", || {
            runners::overheads(&config).expect("experiment runs");
        });
    });
}
