//! Relational values.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::schema::DataType;

/// A single column value inside a tuple.
///
/// Strings are reference counted so that cloning tuples while routing them
/// through exchanges does not copy payload bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (shared).
    Str(Arc<str>),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Creates a string value from anything stringy.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The data type this value inhabits, or `None` for NULL (which
    /// inhabits every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True if the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Integer view, if the value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view: floats directly, integers widened.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String view, if the value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if the value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Approximate in-memory/serialized size in bytes, used by the network
    /// cost model.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len(),
        }
    }

    /// A stable 64-bit hash used for hash partitioning. NULL hashes to a
    /// fixed sentinel; numeric types hash by bit pattern so that the same
    /// logical key always lands in the same bucket.
    pub fn stable_hash(&self) -> u64 {
        // FNV-1a over a type tag plus the payload bytes: simple, stable
        // across runs and platforms, and good enough for bucket routing.
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn fnv(mut h: u64, bytes: &[u8]) -> u64 {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
            h
        }
        match self {
            Value::Null => fnv(OFFSET, &[0]),
            Value::Int(v) => fnv(OFFSET ^ 1, &v.to_le_bytes()),
            Value::Float(v) => fnv(OFFSET ^ 2, &v.to_bits().to_le_bytes()),
            Value::Str(s) => fnv(OFFSET ^ 3, s.as_bytes()),
            Value::Bool(b) => fnv(OFFSET ^ 4, &[u8::from(*b)]),
        }
    }

    /// SQL-style equality: NULL equals nothing, numeric types compare by
    /// value across Int/Float.
    pub fn sql_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => false,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }

    /// SQL-style ordering comparison; `None` when either side is NULL or
    /// the types are incomparable.
    pub fn sql_cmp(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                _ => None,
            },
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.stable_hash().hash(state);
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(4).as_int(), Some(4));
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::str("ab").as_str(), Some("ab"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), None);
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(0).byte_size(), 8);
        assert_eq!(Value::str("abcd").byte_size(), 4);
        assert_eq!(Value::Null.byte_size(), 1);
    }

    #[test]
    fn stable_hash_is_deterministic_and_discriminates() {
        assert_eq!(Value::Int(7).stable_hash(), Value::Int(7).stable_hash());
        assert_ne!(Value::Int(7).stable_hash(), Value::Int(8).stable_hash());
        assert_ne!(Value::str("a").stable_hash(), Value::str("b").stable_hash());
        // Type-tagged: Int(0) and Bool(false) must not collide by accident
        // of byte representation.
        assert_ne!(
            Value::Int(0).stable_hash(),
            Value::Bool(false).stable_hash()
        );
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Int(1).sql_eq(&Value::Null));
        assert!(Value::Int(1).sql_eq(&Value::Int(1)));
        assert!(Value::Int(1).sql_eq(&Value::Float(1.0)));
        assert!(!Value::str("x").sql_eq(&Value::Int(1)));
    }

    #[test]
    fn sql_cmp_numeric_and_string() {
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(2.0)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::str("b").sql_cmp(&Value::str("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::str("a").sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(String::from("hi")), Value::str("hi"));
        assert_eq!(Value::from(1.25f64), Value::Float(1.25));
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::str("p").to_string(), "p");
    }
}
