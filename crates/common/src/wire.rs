//! Wire serialization for values and tuples.
//!
//! The socket substrate moves tuple blocks between processes, so the
//! payload types need a byte-level encoding. This module is the single
//! place that knows it: LEB128 varints for lengths and sequence numbers,
//! zigzag varints for signed integers, IEEE-754 little-endian for
//! floats, and length-prefixed UTF-8 for strings. Everything is
//! deterministic (no per-process hashing, no pointer identity) so the
//! same tuple always encodes to the same bytes — which is what lets the
//! parity oracles compare runs across substrates and lets retransmitted
//! frames be byte-identical to the originals.
//!
//! Decoding is defensive: every read checks remaining length, string
//! payloads are validated as UTF-8, and unknown tags are loud
//! [`GridError::Execution`] errors rather than panics, because the bytes
//! come from another process over a real socket.

use std::sync::Arc;

use crate::error::{GridError, Result};
use crate::tuple::Tuple;
use crate::value::Value;

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit
/// set on every byte but the last). At most 10 bytes for a `u64`.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-mapped (`0, -1, 1, -2, ...` → `0, 1, 2, 3, ...`)
/// so small negative integers stay small on the wire.
pub fn put_varint_signed(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// A cursor over a received byte slice. All reads are bounds-checked and
/// return [`GridError::Execution`] on truncation or malformed input.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wraps `buf` with the cursor at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn truncated(&self, what: &str) -> GridError {
        GridError::Execution(format!(
            "wire: truncated {what} at offset {} of {} bytes",
            self.pos,
            self.buf.len()
        ))
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| self.truncated("byte"))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an LEB128 varint, rejecting encodings longer than 10 bytes.
    pub fn varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(GridError::Execution(
            "wire: varint longer than 10 bytes".into(),
        ))
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn varint_signed(&mut self) -> Result<i64> {
        let z = self.varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads exactly `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(self.truncated("payload"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

// Value tags. Stable on the wire: new variants append, never renumber.
const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;
const TAG_BOOL_FALSE: u8 = 4;
const TAG_BOOL_TRUE: u8 = 5;

/// Appends one value: a tag byte followed by the payload.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            put_varint_signed(out, *i);
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_varint(out, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
    }
}

/// Reads one value.
pub fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8()? {
        TAG_NULL => Ok(Value::Null),
        TAG_INT => Ok(Value::Int(r.varint_signed()?)),
        TAG_FLOAT => {
            let bytes: [u8; 8] = r.bytes(8)?.try_into().expect("8 bytes");
            Ok(Value::Float(f64::from_le_bytes(bytes)))
        }
        TAG_STR => {
            let len = r.varint()? as usize;
            let raw = r.bytes(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|e| GridError::Execution(format!("wire: invalid UTF-8 string: {e}")))?;
            Ok(Value::Str(Arc::from(s)))
        }
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        tag => Err(GridError::Execution(format!(
            "wire: unknown value tag {tag}"
        ))),
    }
}

/// Appends one tuple: `seq`, arity, then each value.
pub fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_varint(out, t.seq());
    put_varint(out, t.arity() as u64);
    for v in t.values() {
        put_value(out, v);
    }
}

/// Reads one tuple.
pub fn get_tuple(r: &mut Reader<'_>) -> Result<Tuple> {
    let seq = r.varint()?;
    let arity = r.varint()? as usize;
    // An arity beyond the remaining byte count is corrupt; cap the
    // pre-allocation so a flipped length byte cannot demand gigabytes.
    if arity > r.remaining() {
        return Err(GridError::Execution(format!(
            "wire: tuple arity {arity} exceeds {} remaining bytes",
            r.remaining()
        )));
    }
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(r)?);
    }
    Ok(Tuple::with_seq(values, seq))
}

/// Appends a slice of tuples: a count then each tuple.
pub fn put_tuples(out: &mut Vec<u8>, tuples: &[Tuple]) {
    put_varint(out, tuples.len() as u64);
    for t in tuples {
        put_tuple(out, t);
    }
}

/// Reads a counted sequence of tuples.
pub fn get_tuples(r: &mut Reader<'_>) -> Result<Vec<Tuple>> {
    let n = r.varint()? as usize;
    if n > r.remaining() {
        return Err(GridError::Execution(format!(
            "wire: tuple count {n} exceeds {} remaining bytes",
            r.remaining()
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_tuple(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{Check, Gen};
    use crate::rng::DetRng;

    fn round_trip_varint(v: u64) -> u64 {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        Reader::new(&buf).varint().unwrap()
    }

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0, 1, 127, 128, 300, u32::MAX as u64, u64::MAX - 1, u64::MAX] {
            assert_eq!(round_trip_varint(v), v);
        }
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -300] {
            let mut buf = Vec::new();
            put_varint_signed(&mut buf, v);
            assert_eq!(Reader::new(&buf).varint_signed().unwrap(), v);
        }
    }

    #[test]
    fn values_and_tuples_round_trip() {
        let tuples = vec![
            Tuple::with_seq(
                vec![
                    Value::Null,
                    Value::Int(-42),
                    Value::Float(1.5),
                    Value::str("héllo"),
                    Value::Bool(true),
                    Value::Bool(false),
                    Value::str(""),
                ],
                77,
            ),
            Tuple::with_seq(vec![], u64::MAX),
        ];
        let mut buf = Vec::new();
        put_tuples(&mut buf, &tuples);
        let mut r = Reader::new(&buf);
        assert_eq!(get_tuples(&mut r).unwrap(), tuples);
        assert!(r.is_empty());
    }

    #[test]
    fn encoding_is_deterministic() {
        let t = Tuple::with_seq(vec![Value::str("abc"), Value::Int(7)], 9);
        let mut a = Vec::new();
        let mut b = Vec::new();
        put_tuple(&mut a, &t);
        put_tuple(&mut b, &t.clone());
        assert_eq!(a, b);
    }

    #[test]
    fn malformed_input_errors_instead_of_panicking() {
        // Truncated varint (continuation bit set, no next byte).
        assert!(Reader::new(&[0x80]).varint().is_err());
        // Over-long varint.
        assert!(Reader::new(&[0x80; 11]).varint().is_err());
        // Unknown value tag.
        assert!(get_value(&mut Reader::new(&[99])).is_err());
        // Truncated float payload.
        assert!(get_value(&mut Reader::new(&[TAG_FLOAT, 0, 0])).is_err());
        // String length pointing past the end.
        assert!(get_value(&mut Reader::new(&[TAG_STR, 200])).is_err());
        // Invalid UTF-8 payload.
        assert!(get_value(&mut Reader::new(&[TAG_STR, 2, 0xff, 0xfe])).is_err());
        // Absurd counts bail before allocating.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert!(get_tuples(&mut Reader::new(&buf)).is_err());
    }

    #[test]
    fn property_random_tuples_round_trip() {
        Check::new("wire_round_trip").cases(64).run(
            |g: &mut DetRng| {
                g.vec_of(0, 8, |g| {
                    let seq = g.next_u64();
                    let vals = g.vec_of(0, 6, |g| match g.usize_in(0, 5) {
                        0 => Value::Null,
                        1 => Value::Int(g.next_u64() as i64),
                        2 => Value::Float(g.f64_in(-1e12, 1e12)),
                        3 => Value::Bool(g.flip()),
                        _ => {
                            let len = g.usize_in(0, 12);
                            Value::str(
                                (0..len)
                                    .map(|_| g.pick(&['a', 'ß', '愚', 'z']))
                                    .collect::<String>(),
                            )
                        }
                    });
                    Tuple::with_seq(vals, seq)
                })
            },
            |tuples: &Vec<Tuple>| {
                let mut buf = Vec::new();
                put_tuples(&mut buf, tuples);
                let mut r = Reader::new(&buf);
                let back = get_tuples(&mut r).map_err(|e| format!("decode failed: {e}"))?;
                if !r.is_empty() {
                    return Err(format!("{} bytes left over", r.remaining()));
                }
                if &back == tuples {
                    Ok(())
                } else {
                    Err("round trip changed the tuples".into())
                }
            },
        );
    }
}
