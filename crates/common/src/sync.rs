//! Poison-recovering synchronisation primitives.
//!
//! The workspace previously used `parking_lot` for its non-poisoning
//! mutex. To keep the build dependency-free (the system must build and
//! test on an air-gapped Grid node, with no crates.io access), this
//! module provides the same ergonomics over [`std::sync::Mutex`]:
//! `lock()` returns the guard directly, and a lock whose holder panicked
//! is *recovered* rather than propagating the poison.
//!
//! Recovery is the right robustness policy here: the shared state guarded
//! by these locks (exchange routers, operator statistics) is kept
//! internally consistent by its own invariants — every mutation is a
//! single atomic method call on the guarded value — so a panic between
//! `lock()` and drop cannot leave it half-updated. Propagating poison
//! would instead cascade one worker's failure into every producer,
//! consumer, and adaptivity thread that shares the lock, turning a local
//! fault into a whole-query abort.

use std::fmt;
use std::sync::TryLockError;

pub mod ring;

/// A mutual-exclusion lock that recovers from poisoning.
///
/// API-compatible with the subset of `parking_lot::Mutex` the workspace
/// uses: [`Mutex::new`], [`Mutex::lock`], [`Mutex::try_lock`], and
/// [`Mutex::into_inner`].
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a lock around `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value. Recovers the value
    /// even if the lock is poisoned.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking the current thread until it is
    /// available. If another thread panicked while holding the lock, the
    /// poison is cleared and the guard is returned anyway.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking. Returns `None` if
    /// the lock is currently held; recovers from poisoning like
    /// [`Mutex::lock`].
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        // A poisoned std mutex would panic on unwrap here; ours recovers.
        assert_eq!(*m.lock(), 7);
        *m.lock() = 8;
        assert_eq!(*m.lock(), 8);
    }

    #[test]
    fn into_inner_survives_poisoning() {
        let m = Arc::new(Mutex::new(vec![1, 2, 3]));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison");
        })
        .join();
        let m = Arc::try_unwrap(m).expect("sole owner");
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn debug_formats() {
        let m = Mutex::new(5);
        assert_eq!(format!("{m:?}"), "Mutex(5)");
        let g = m.lock();
        assert_eq!(format!("{m:?}"), "Mutex(<locked>)");
        drop(g);
    }
}
