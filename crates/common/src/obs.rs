//! Observability hooks.
//!
//! `gridq-common` sits below every other crate, so it cannot depend on
//! the concrete metrics registry in `gridq-obs`. Instead it defines the
//! small [`MetricSink`] trait that instrumented components (the
//! adaptivity pipeline in `gridq-adapt`) record into; `gridq-obs`
//! implements it for its registry, and [`NullSink`] is the zero-cost
//! default when no observability layer is attached.

use std::fmt;

/// A sink for named metrics. Implementations must be cheap and
/// thread-safe: instrumented components call these methods on hot paths
/// (once per raw monitoring event).
///
/// Metric names are dot-separated lowercase paths
/// (e.g. `"detector.rejected_samples"`).
pub trait MetricSink: fmt::Debug + Send + Sync {
    /// Increments the named counter by `by`.
    fn incr(&self, name: &str, by: u64);

    /// Sets the named gauge to `value`.
    fn set_gauge(&self, name: &str, value: f64);

    /// Records `value` into the named histogram.
    fn observe(&self, name: &str, value: f64);
}

/// A sink that discards everything — the default when no observability
/// layer is attached.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl MetricSink for NullSink {
    fn incr(&self, _name: &str, _by: u64) {}

    fn set_gauge(&self, _name: &str, _value: f64) {}

    fn observe(&self, _name: &str, _value: f64) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_a_usable_trait_object() {
        let sink: std::sync::Arc<dyn MetricSink> = std::sync::Arc::new(NullSink);
        sink.incr("a.counter", 1);
        sink.set_gauge("a.gauge", 2.0);
        sink.observe("a.histogram", 3.0);
    }
}
