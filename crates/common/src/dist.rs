//! Workload distribution vectors and hash-bucket maps.
//!
//! The Diagnoser of the paper represents "the current tuple distribution
//! policy ... as a vector `W = (w1, w2, ..., wn)` where `wi` represents the
//! proportion of tuples that is sent to `pi`", and proposes a balanced
//! vector with `wi` inversely proportional to the cost per tuple `c(pi)`.
//! For stateful operators the vector is realised as a *bucket map*: tuples
//! are routed by `hash(key) % bucket_count` and adaptation reassigns whole
//! buckets between partitions (migrating the state of moved buckets).

use crate::error::{GridError, Result};

/// A normalised workload distribution across `n` partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributionVector {
    weights: Vec<f64>,
}

impl DistributionVector {
    /// Creates a vector from raw non-negative weights, normalising them to
    /// sum to 1. Fails if the slice is empty, contains a negative or
    /// non-finite weight, or sums to zero.
    pub fn new(raw: &[f64]) -> Result<Self> {
        if raw.is_empty() {
            return Err(GridError::Config("empty distribution vector".into()));
        }
        let mut sum = 0.0;
        for &w in raw {
            if !w.is_finite() || w < 0.0 {
                return Err(GridError::Config(format!(
                    "invalid distribution weight {w}"
                )));
            }
            sum += w;
        }
        if sum <= 0.0 {
            return Err(GridError::Config("distribution weights sum to zero".into()));
        }
        Ok(DistributionVector {
            weights: raw.iter().map(|w| w / sum).collect(),
        })
    }

    /// The uniform distribution over `n` partitions.
    pub fn uniform(n: usize) -> Self {
        assert!(n > 0, "need at least one partition");
        DistributionVector {
            weights: vec![1.0 / n as f64; n],
        }
    }

    /// The balanced distribution for the given per-tuple costs: weights
    /// inversely proportional to cost. Zero or non-finite costs are
    /// treated as the smallest positive observed cost (a partition that
    /// has reported no cost yet should not absorb everything).
    pub fn balanced_for_costs(costs: &[f64]) -> Result<Self> {
        if costs.is_empty() {
            return Err(GridError::Config("no costs provided".into()));
        }
        let min_positive = costs
            .iter()
            .copied()
            .filter(|c| c.is_finite() && *c > 0.0)
            .fold(f64::INFINITY, f64::min);
        if !min_positive.is_finite() {
            // No cost information at all: fall back to uniform.
            return Ok(DistributionVector::uniform(costs.len()));
        }
        let inv: Vec<f64> = costs
            .iter()
            .map(|&c| {
                let c = if c.is_finite() && c > 0.0 {
                    c
                } else {
                    min_positive
                };
                1.0 / c
            })
            .collect();
        DistributionVector::new(&inv)
    }

    /// The normalised weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Always false: construction guarantees at least one weight.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The largest pairwise absolute difference between this vector and
    /// `other`, i.e. `max_i |w_i - w'_i|`. The Responder is only notified
    /// when this exceeds the `thresA` threshold.
    pub fn max_abs_diff(&self, other: &DistributionVector) -> f64 {
        assert_eq!(self.len(), other.len(), "dimension mismatch");
        self.weights
            .iter()
            .zip(other.weights.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// The largest relative change of a component from `self` to `other`:
    /// `max_i |w'_i - w_i| / w_i` (components with negligible current
    /// weight are compared absolutely). This is the quantity gated by the
    /// Diagnoser's `thres_a`.
    pub fn max_rel_diff(&self, other: &DistributionVector) -> f64 {
        assert_eq!(self.len(), other.len(), "dimension mismatch");
        const FLOOR: f64 = 1e-6;
        self.weights
            .iter()
            .zip(other.weights.iter())
            .map(|(w, w2)| {
                let delta = (w2 - w).abs();
                if *w > FLOOR {
                    delta / w
                } else {
                    delta
                }
            })
            .fold(0.0, f64::max)
    }

    /// Splits `total` items into integer shares following the weights,
    /// using largest-remainder rounding so the shares sum to `total`.
    pub fn integer_shares(&self, total: usize) -> Vec<usize> {
        let mut shares: Vec<usize> = Vec::with_capacity(self.len());
        let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(self.len());
        let mut assigned = 0usize;
        for (i, &w) in self.weights.iter().enumerate() {
            let exact = w * total as f64;
            let floor = exact.floor() as usize;
            shares.push(floor);
            assigned += floor;
            remainders.push((i, exact - floor as f64));
        }
        remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let mut leftover = total - assigned;
        for (i, _) in remainders {
            if leftover == 0 {
                break;
            }
            shares[i] += 1;
            leftover -= 1;
        }
        shares
    }
}

/// A bucket moved between partitions by a rebalance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BucketMove {
    /// The bucket index.
    pub bucket: u32,
    /// Previous owning partition.
    pub from: u32,
    /// New owning partition.
    pub to: u32,
}

/// Maps hash buckets to partitions. Tuples are routed by
/// `hash(key) % bucket_count` and the owning partition of that bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketMap {
    owner: Vec<u32>,
    partitions: u32,
}

impl BucketMap {
    /// Creates a map of `bucket_count` buckets spread over `partitions`
    /// partitions following `dist` (largest-remainder shares, buckets
    /// assigned in index order).
    pub fn new(bucket_count: u32, partitions: u32, dist: &DistributionVector) -> Result<Self> {
        if partitions == 0 || bucket_count == 0 {
            return Err(GridError::Config(
                "bucket map needs at least one bucket and partition".into(),
            ));
        }
        if dist.len() != partitions as usize {
            return Err(GridError::Config(format!(
                "distribution has {} entries for {partitions} partitions",
                dist.len()
            )));
        }
        let shares = dist.integer_shares(bucket_count as usize);
        let mut owner = Vec::with_capacity(bucket_count as usize);
        for (p, &share) in shares.iter().enumerate() {
            owner.extend(std::iter::repeat_n(p as u32, share));
        }
        debug_assert_eq!(owner.len(), bucket_count as usize);
        Ok(BucketMap { owner, partitions })
    }

    /// Number of buckets.
    pub fn bucket_count(&self) -> u32 {
        self.owner.len() as u32
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u32 {
        self.partitions
    }

    /// The partition owning `bucket`.
    pub fn owner_of(&self, bucket: u32) -> u32 {
        self.owner[bucket as usize]
    }

    /// The bucket for a key hash.
    pub fn bucket_for_hash(&self, hash: u64) -> u32 {
        (hash % u64::from(self.bucket_count())) as u32
    }

    /// The partition for a key hash.
    pub fn partition_for_hash(&self, hash: u64) -> u32 {
        self.owner_of(self.bucket_for_hash(hash))
    }

    /// Buckets currently owned by `partition`.
    pub fn buckets_of(&self, partition: u32) -> Vec<u32> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == partition)
            .map(|(b, _)| b as u32)
            .collect()
    }

    /// The fraction of buckets owned by each partition.
    pub fn effective_distribution(&self) -> DistributionVector {
        let mut counts = vec![0.0; self.partitions as usize];
        for &p in &self.owner {
            counts[p as usize] += 1.0;
        }
        // At least one bucket exists, but a partition may own zero buckets;
        // that is fine — weights normalise over the total.
        DistributionVector::new(&counts)
            .unwrap_or_else(|_| DistributionVector::uniform(self.partitions as usize))
    }

    /// Rebalances the map toward `target`, moving as few buckets as
    /// possible: partitions over their target share give up their
    /// highest-index buckets to partitions under their share. Returns the
    /// performed moves (state for these buckets must be migrated).
    pub fn rebalance(&mut self, target: &DistributionVector) -> Result<Vec<BucketMove>> {
        if target.len() != self.partitions as usize {
            return Err(GridError::Config(format!(
                "target distribution has {} entries for {} partitions",
                target.len(),
                self.partitions
            )));
        }
        let total = self.owner.len();
        let targets = target.integer_shares(total);
        let mut counts = vec![0usize; self.partitions as usize];
        for &p in &self.owner {
            counts[p as usize] += 1;
        }
        // Buckets to give away, per over-quota partition (highest index
        // first so reassignment is deterministic).
        let mut surplus: Vec<u32> = Vec::new();
        for p in 0..self.partitions as usize {
            if counts[p] > targets[p] {
                let mut owned: Vec<u32> = self
                    .owner
                    .iter()
                    .enumerate()
                    .filter(|(_, &o)| o == p as u32)
                    .map(|(b, _)| b as u32)
                    .collect();
                owned.sort_unstable_by(|a, b| b.cmp(a));
                surplus.extend(owned.into_iter().take(counts[p] - targets[p]));
            }
        }
        let mut moves = Vec::new();
        let mut surplus_iter = surplus.into_iter();
        for p in 0..self.partitions as usize {
            while counts[p] < targets[p] {
                let bucket = surplus_iter
                    .next()
                    .expect("surplus and deficit always balance");
                let from = self.owner[bucket as usize];
                counts[from as usize] -= 1;
                counts[p] += 1;
                self.owner[bucket as usize] = p as u32;
                moves.push(BucketMove {
                    bucket,
                    from,
                    to: p as u32,
                });
            }
        }
        Ok(moves)
    }
}

#[cfg(test)]
// Tests compare against stored literals and exactly-representable
// constants, where bit-exact equality is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn new_normalises() {
        let d = DistributionVector::new(&[1.0, 3.0]).unwrap();
        assert_eq!(d.weights(), &[0.25, 0.75]);
    }

    #[test]
    fn invalid_vectors_rejected() {
        assert!(DistributionVector::new(&[]).is_err());
        assert!(DistributionVector::new(&[-1.0, 2.0]).is_err());
        assert!(DistributionVector::new(&[0.0, 0.0]).is_err());
        assert!(DistributionVector::new(&[f64::NAN]).is_err());
    }

    #[test]
    fn uniform() {
        let d = DistributionVector::uniform(4);
        assert_eq!(d.weights(), &[0.25; 4]);
    }

    #[test]
    fn balanced_is_inverse_cost() {
        // Costs 1 and 10 -> weights 10/11 and 1/11.
        let d = DistributionVector::balanced_for_costs(&[1.0, 10.0]).unwrap();
        assert!((d.weights()[0] - 10.0 / 11.0).abs() < 1e-12);
        assert!((d.weights()[1] - 1.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_handles_missing_costs() {
        let d = DistributionVector::balanced_for_costs(&[0.0, 2.0]).unwrap();
        // Zero cost treated as the min positive (2.0) -> uniform.
        assert_eq!(d.weights(), &[0.5, 0.5]);
        let d = DistributionVector::balanced_for_costs(&[0.0, 0.0]).unwrap();
        assert_eq!(d.weights(), &[0.5, 0.5]);
    }

    #[test]
    fn max_abs_diff() {
        let a = DistributionVector::uniform(2);
        let b = DistributionVector::new(&[0.8, 0.2]).unwrap();
        assert!((a.max_abs_diff(&b) - 0.3).abs() < 1e-12);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn max_rel_diff_relative_to_current() {
        let a = DistributionVector::uniform(2);
        let b = DistributionVector::new(&[0.6, 0.4]).unwrap();
        // |0.6-0.5|/0.5 = 0.2
        assert!((a.max_rel_diff(&b) - 0.2).abs() < 1e-12);
        let c = DistributionVector::new(&[10.0, 1.0]).unwrap();
        let d = DistributionVector::new(&[10.0, 2.0]).unwrap();
        // Small component doubles: relative change ≈ 0.83 driven by w2.
        assert!(c.max_rel_diff(&d) > 0.5);
    }

    #[test]
    fn integer_shares_sum_to_total() {
        let d = DistributionVector::new(&[1.0, 1.0, 1.0]).unwrap();
        let shares = d.integer_shares(10);
        assert_eq!(shares.iter().sum::<usize>(), 10);
        // Largest remainder: 4,3,3 in some order.
        let mut sorted = shares.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![3, 3, 4]);
    }

    #[test]
    fn bucket_map_initial_assignment() {
        let d = DistributionVector::uniform(2);
        let m = BucketMap::new(8, 2, &d).unwrap();
        assert_eq!(m.buckets_of(0).len(), 4);
        assert_eq!(m.buckets_of(1).len(), 4);
        assert_eq!(m.effective_distribution().weights(), &[0.5, 0.5]);
    }

    #[test]
    fn bucket_map_routing_is_stable() {
        let d = DistributionVector::uniform(2);
        let m = BucketMap::new(8, 2, &d).unwrap();
        for h in [0u64, 5, 7, 123_456] {
            assert_eq!(m.partition_for_hash(h), m.partition_for_hash(h));
            assert!(m.bucket_for_hash(h) < 8);
        }
    }

    #[test]
    fn rebalance_moves_minimum_buckets() {
        let d = DistributionVector::uniform(2);
        let mut m = BucketMap::new(10, 2, &d).unwrap();
        let target = DistributionVector::new(&[0.8, 0.2]).unwrap();
        let moves = m.rebalance(&target).unwrap();
        // 5 -> 8 buckets on partition 0: exactly 3 moves.
        assert_eq!(moves.len(), 3);
        assert_eq!(m.buckets_of(0).len(), 8);
        assert_eq!(m.buckets_of(1).len(), 2);
        for mv in &moves {
            assert_eq!(mv.from, 1);
            assert_eq!(mv.to, 0);
        }
    }

    #[test]
    fn rebalance_to_same_distribution_is_noop() {
        let d = DistributionVector::new(&[0.7, 0.3]).unwrap();
        let mut m = BucketMap::new(10, 2, &d).unwrap();
        let moves = m.rebalance(&d).unwrap();
        assert!(moves.is_empty());
    }

    #[test]
    fn rebalance_dimension_mismatch() {
        let d = DistributionVector::uniform(2);
        let mut m = BucketMap::new(4, 2, &d).unwrap();
        let bad = DistributionVector::uniform(3);
        assert!(m.rebalance(&bad).is_err());
    }

    #[test]
    fn bucket_map_three_partitions() {
        let d = DistributionVector::uniform(3);
        let mut m = BucketMap::new(12, 3, &d).unwrap();
        assert_eq!(m.buckets_of(0).len(), 4);
        let target = DistributionVector::new(&[6.0, 5.0, 1.0]).unwrap();
        let moves = m.rebalance(&target).unwrap();
        assert_eq!(m.buckets_of(0).len(), 6);
        assert_eq!(m.buckets_of(1).len(), 5);
        assert_eq!(m.buckets_of(2).len(), 1);
        let total_moved: usize = moves.len();
        assert_eq!(total_moved, 2 + 1); // p0 gains 2, p1 gains 1
    }
}
