//! Virtual time.
//!
//! The discrete-event simulator and the adaptivity components both reason
//! about time as milliseconds since the start of a query. Using a dedicated
//! type keeps virtual timestamps from mixing with wall-clock durations and
//! gives us a total order usable inside the event queue (`SimTime` is never
//! NaN by construction).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in milliseconds since query start.
///
/// Construction keeps the inner value finite and non-negative so that
/// `SimTime` is totally ordered and can be used as a key in the
/// simulator's event queue, and so that no arithmetic on two `SimTime`s
/// (`inf - inf`, `inf + -inf`) can manufacture a NaN downstream.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero: the start of the simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a timestamp from milliseconds, rejecting non-finite input
    /// with a loud error instead of silently clamping it. This is the
    /// constructor for boundary code handling untrusted arithmetic (e.g.
    /// perturbation delays feeding the event queue): a NaN delay that
    /// would otherwise clamp to time zero reorders the queue silently.
    pub fn try_from_millis(ms: f64) -> crate::Result<Self> {
        if !ms.is_finite() {
            return Err(crate::GridError::Execution(format!(
                "non-finite SimTime ({ms} ms): virtual timestamps must be finite"
            )));
        }
        Ok(SimTime::from_millis(ms))
    }

    /// Creates a timestamp from milliseconds. Negative and NaN inputs
    /// clamp to zero (virtual time never runs backwards), positive
    /// infinity to the largest finite time — use
    /// [`SimTime::try_from_millis`] where a non-finite input is a bug
    /// worth surfacing rather than absorbing.
    pub fn from_millis(ms: f64) -> Self {
        if ms.is_nan() || ms < 0.0 {
            SimTime(0.0)
        } else if ms == f64::INFINITY {
            SimTime(f64::MAX)
        } else {
            SimTime(ms)
        }
    }

    /// Milliseconds since simulation start.
    pub fn as_millis(self) -> f64 {
        self.0
    }

    /// Seconds since simulation start.
    pub fn as_secs(self) -> f64 {
        self.0 / 1000.0
    }

    /// Adds a duration in milliseconds, saturating at zero for negative
    /// results.
    pub fn offset(self, delta_ms: f64) -> Self {
        SimTime::from_millis(self.0 + delta_ms)
    }

    /// Returns the non-negative elapsed milliseconds since `earlier`.
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }

    /// The later of two timestamps.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: construction clamps to finite non-negative values, so no
        // arithmetic on SimTimes can produce NaN.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, delta_ms: f64) -> SimTime {
        self.offset(delta_ms)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, delta_ms: f64) {
        *self = self.offset(delta_ms);
    }
}

impl Sub for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0)
    }
}

#[cfg(test)]
// Tests compare against stored literals and exactly-representable
// constants, where bit-exact equality is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn construction_clamps_invalid() {
        assert_eq!(SimTime::from_millis(-5.0), SimTime::ZERO);
        assert_eq!(SimTime::from_millis(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_millis(f64::INFINITY).as_millis(), f64::MAX);
        assert_eq!(SimTime::from_millis(f64::NEG_INFINITY), SimTime::ZERO);
        assert_eq!(SimTime::from_millis(3.5).as_millis(), 3.5);
    }

    #[test]
    fn try_from_millis_rejects_non_finite_loudly() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = SimTime::try_from_millis(bad).unwrap_err();
            assert!(err.to_string().contains("non-finite SimTime"), "{err}");
        }
        assert_eq!(SimTime::try_from_millis(2.0).unwrap().as_millis(), 2.0);
        // Negative finite input still clamps, matching `from_millis`.
        assert_eq!(SimTime::try_from_millis(-1.0).unwrap(), SimTime::ZERO);
    }

    /// Property: over an adversarial schedule of offsets — including the
    /// non-finite perturbation delays that once reached the event queue —
    /// every constructed timestamp stays finite and the total order never
    /// panics. `Ord::cmp` on a NaN inner value would abort this test.
    #[test]
    fn ordering_survives_non_finite_offset_schedules() {
        let deltas = [
            0.0,
            1.5,
            -3.0,
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MAX,
            -f64::MAX,
            f64::MIN_POSITIVE,
        ];
        let mut times = vec![SimTime::ZERO];
        for (i, &a) in deltas.iter().enumerate() {
            for &b in &deltas[i..] {
                let t = SimTime::from_millis(a) + b;
                assert!(t.as_millis().is_finite(), "{a} + {b} -> {t}");
                times.push(t.offset(a));
            }
        }
        // Sorting exercises cmp across every pair class; a panic here is
        // the regression.
        times.sort();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_millis(1.0);
        let b = SimTime::from_millis(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(10.0);
        assert_eq!((t + 5.0).as_millis(), 15.0);
        assert_eq!(t.offset(-20.0), SimTime::ZERO);
        assert_eq!(t.since(SimTime::from_millis(4.0)), 6.0);
        assert_eq!(t.since(SimTime::from_millis(40.0)), 0.0);
        assert_eq!(SimTime::from_millis(2500.0).as_secs(), 2.5);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 2.0;
        t += 3.0;
        assert_eq!(t.as_millis(), 5.0);
    }

    #[test]
    fn sub_gives_signed_delta() {
        let a = SimTime::from_millis(3.0);
        let b = SimTime::from_millis(7.0);
        assert_eq!(b - a, 4.0);
        assert_eq!(a - b, -4.0);
    }
}
