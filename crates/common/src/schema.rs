//! Schemas: ordered, named, typed columns.

use std::fmt;
use std::sync::Arc;

use crate::error::{GridError, Result};

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STRING",
            DataType::Bool => "BOOL",
        };
        f.write_str(s)
    }
}

impl DataType {
    /// True if values of this type can be compared numerically with the
    /// other type.
    pub fn numeric_compatible(self, other: DataType) -> bool {
        let num = |t| matches!(t, DataType::Int | DataType::Float);
        self == other || (num(self) && num(other))
    }
}

/// A named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name. Qualified names use `table.column`.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into(),
            data_type,
        }
    }

    /// The part of the name after the last `.`, i.e. the bare column name.
    pub fn short_name(&self) -> &str {
        self.name.rsplit('.').next().unwrap_or(&self.name)
    }
}

/// An ordered collection of fields. Cheap to clone (internally shared).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Arc<[Field]>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: fields.into(),
        }
    }

    /// An empty schema.
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `idx`.
    pub fn field(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }

    /// Finds a column index by name. Accepts either the exact (possibly
    /// qualified) name or an unambiguous bare column name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        if let Some(i) = self.fields.iter().position(|f| f.name == name) {
            return Ok(i);
        }
        let matches: Vec<usize> = self
            .fields
            .iter()
            .enumerate()
            .filter(|(_, f)| f.short_name() == name)
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [i] => Ok(*i),
            [] => Err(GridError::UnknownColumn(name.to_string())),
            _ => Err(GridError::AmbiguousColumn(name.to_string())),
        }
    }

    /// Concatenates two schemas (the output of a join).
    pub fn join(&self, right: &Schema) -> Schema {
        let mut fields = self.fields.to_vec();
        fields.extend(right.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Returns a schema with all field names prefixed by `qualifier.`, used
    /// when binding a table alias.
    pub fn qualified(&self, qualifier: &str) -> Schema {
        let fields = self
            .fields
            .iter()
            .map(|f| Field::new(format!("{qualifier}.{}", f.short_name()), f.data_type))
            .collect();
        Schema::new(fields)
    }

    /// Projects the schema onto the given column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", field.name, field.data_type)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("p.orf", DataType::Str),
            Field::new("p.sequence", DataType::Str),
            Field::new("i.orf1", DataType::Str),
        ])
    }

    #[test]
    fn index_of_exact_and_short() {
        let s = sample();
        assert_eq!(s.index_of("p.orf").unwrap(), 0);
        assert_eq!(s.index_of("sequence").unwrap(), 1);
        assert_eq!(s.index_of("orf1").unwrap(), 2);
    }

    #[test]
    fn index_of_unknown_and_ambiguous() {
        let s = Schema::new(vec![
            Field::new("a.x", DataType::Int),
            Field::new("b.x", DataType::Int),
        ]);
        assert!(matches!(s.index_of("y"), Err(GridError::UnknownColumn(_))));
        assert!(matches!(
            s.index_of("x"),
            Err(GridError::AmbiguousColumn(_))
        ));
        // Exact qualified lookup resolves the ambiguity.
        assert_eq!(s.index_of("a.x").unwrap(), 0);
    }

    #[test]
    fn join_concatenates() {
        let l = Schema::new(vec![Field::new("a", DataType::Int)]);
        let r = Schema::new(vec![Field::new("b", DataType::Str)]);
        let j = l.join(&r);
        assert_eq!(j.len(), 2);
        assert_eq!(j.field(1).name, "b");
    }

    #[test]
    fn qualify_rewrites_names() {
        let s = Schema::new(vec![Field::new("orf", DataType::Str)]);
        let q = s.qualified("p");
        assert_eq!(q.field(0).name, "p.orf");
        // Re-qualifying replaces the old qualifier.
        let q2 = q.qualified("x");
        assert_eq!(q2.field(0).name, "x.orf");
    }

    #[test]
    fn project_selects_columns() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.field(0).name, "i.orf1");
        assert_eq!(p.field(1).name, "p.orf");
    }

    #[test]
    fn numeric_compatibility() {
        assert!(DataType::Int.numeric_compatible(DataType::Float));
        assert!(DataType::Str.numeric_compatible(DataType::Str));
        assert!(!DataType::Str.numeric_compatible(DataType::Int));
    }

    #[test]
    fn display_format() {
        let s = Schema::new(vec![Field::new("a", DataType::Int)]);
        assert_eq!(s.to_string(), "(a: INT)");
    }
}
