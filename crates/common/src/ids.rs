//! Strongly-typed identifiers.
//!
//! Every entity that crosses a crate boundary — Grid nodes, query operators,
//! subplan fragments, hash buckets — is addressed by a dedicated newtype so
//! that identifiers cannot be confused with one another or with plain
//! integers.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Creates an identifier from a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Returns the raw index as a `usize`, for vector indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }
    };
}

id_type!(
    /// A Grid node (machine) hosting a query evaluation service.
    NodeId,
    "node"
);
id_type!(
    /// A physical query operator instance within a plan.
    OperatorId,
    "op"
);
id_type!(
    /// A subplan fragment; partitioned subplans are identified by the pair
    /// `(SubplanId, partition index)`.
    SubplanId,
    "sp"
);
id_type!(
    /// A query submitted to the distributed query service.
    QueryId,
    "q"
);
id_type!(
    /// A hash bucket used by stateful repartitioning: tuples are routed by
    /// `hash(key) % bucket_count`, and adaptation reassigns buckets to nodes.
    BucketId,
    "b"
);

/// Identifies one clone of a partitioned subplan: the fragment evaluated on
/// one particular node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId {
    /// The subplan this partition is a clone of.
    pub subplan: SubplanId,
    /// Index of the clone among the subplan's partitions.
    pub index: u32,
}

impl PartitionId {
    /// Creates a partition identifier.
    pub const fn new(subplan: SubplanId, index: u32) -> Self {
        Self { subplan, index }
    }
}

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.subplan, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "node3");
        assert_eq!(OperatorId::new(0).to_string(), "op0");
        assert_eq!(SubplanId::new(7).to_string(), "sp7");
        assert_eq!(QueryId::new(1).to_string(), "q1");
        assert_eq!(BucketId::new(12).to_string(), "b12");
    }

    #[test]
    fn raw_round_trips() {
        let id = NodeId::from(42u32);
        assert_eq!(id.raw(), 42);
        assert_eq!(id.index(), 42usize);
    }

    #[test]
    fn partition_id_display() {
        let p = PartitionId::new(SubplanId::new(2), 1);
        assert_eq!(p.to_string(), "sp2.1");
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(1));
        set.insert(NodeId::new(2));
        assert_eq!(set.len(), 2);
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
