//! Deterministic in-tree property testing.
//!
//! The workspace previously leaned on `proptest` for its randomised
//! invariant tests. Those tests guard the robustness-critical objects of
//! the paper — the exchange router, the recovery log, the SQL front end,
//! the simulator's conservation laws — so they must run everywhere the
//! code builds, including air-gapped machines with no crates.io access.
//! This module is a small, dependency-free replacement built on the
//! workspace's own seeded [`DetRng`]:
//!
//! - [`Check::run`] evaluates a property over many generated cases, each
//!   derived deterministically from a base seed, and reports the exact
//!   per-case seed on failure so a run is replayable;
//! - failures *and panics* inside the property are caught, then the
//!   input is greedily shrunk (via a caller-supplied shrinker such as
//!   [`shrink_vec`]) before the minimal counterexample is reported;
//! - `GRIDQ_CHECK_CASES` / `GRIDQ_CHECK_SEED` environment variables
//!   scale the search up (soak testing) or replay a failing seed without
//!   recompiling.
//!
//! ```
//! use gridq_common::check::{Check, Gen};
//!
//! Check::new("addition commutes")
//!     .cases(64)
//!     .run(
//!         |rng| (rng.i64_in(-100, 100), rng.i64_in(-100, 100)),
//!         |&(a, b)| {
//!             if a + b == b + a {
//!                 Ok(())
//!             } else {
//!                 Err(format!("{a} + {b} not commutative"))
//!             }
//!         },
//!     );
//! ```

use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::rng::DetRng;

/// Golden-ratio increment used to decorrelate per-case seeds.
const SEED_STRIDE: u64 = 0x9e37_79b9_7f4a_7c15;

/// Generation helpers layered over [`DetRng`].
///
/// These mirror the small set of strategies the workspace's property
/// tests need: bounded integers and floats, booleans, element picks, and
/// variable-length vectors.
pub trait Gen {
    /// Uniform `i64` in the half-open range `[lo, hi)`. Requires `lo < hi`.
    fn i64_in(&mut self, lo: i64, hi: i64) -> i64;
    /// Uniform `usize` in `[lo, hi)`. Requires `lo < hi`.
    fn usize_in(&mut self, lo: usize, hi: usize) -> usize;
    /// Uniform `u32` in `[lo, hi)`. Requires `lo < hi`.
    fn u32_in(&mut self, lo: u32, hi: u32) -> u32;
    /// Uniform `f64` in `[lo, hi)`.
    fn f64_in(&mut self, lo: f64, hi: f64) -> f64;
    /// A fair coin flip.
    fn flip(&mut self) -> bool;
    /// A uniformly chosen reference into `options`. Panics on an empty
    /// slice (a generator bug, not a property failure).
    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T;
    /// A vector with length uniform in `[len_lo, len_hi)` whose elements
    /// are drawn by `element`.
    fn vec_of<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        element: impl FnMut(&mut Self) -> T,
    ) -> Vec<T>;
}

impl Gen for DetRng {
    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "i64_in: empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.abs_diff(lo)) as i64)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "usize_in: empty range {lo}..{hi}");
        lo + self.below((hi - lo) as u64) as usize
    }

    fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "u32_in: empty range {lo}..{hi}");
        lo + self.below(u64::from(hi - lo)) as u32
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.uniform_range(lo, hi)
    }

    fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    fn pick<'a, T>(&mut self, options: &'a [T]) -> &'a T {
        assert!(!options.is_empty(), "pick: empty slice");
        &options[self.below(options.len() as u64) as usize]
    }

    fn vec_of<T>(
        &mut self,
        len_lo: usize,
        len_hi: usize,
        mut element: impl FnMut(&mut Self) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(len_lo, len_hi);
        (0..len).map(|_| element(self)).collect()
    }
}

/// Shrink candidates for a vector: both halves, then the vector with one
/// element removed at each of up to 32 evenly spaced positions. Ordered
/// most-aggressive first so greedy shrinking converges quickly.
pub fn shrink_vec<T: Clone>(v: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if v.len() >= 2 {
        out.push(v[..v.len() / 2].to_vec());
        out.push(v[v.len() / 2..].to_vec());
    }
    if !v.is_empty() {
        let step = (v.len() / 32).max(1);
        for i in (0..v.len()).step_by(step) {
            let mut shorter = v.to_vec();
            shorter.remove(i);
            out.push(shorter);
        }
    }
    out
}

/// No shrinking: report the raw counterexample.
pub fn no_shrink<T>(_: &T) -> Vec<T> {
    Vec::new()
}

/// How a property evaluation failed.
enum Failure {
    /// The property returned `Err`.
    Rejected(String),
    /// The property (or code under test) panicked.
    Panicked(String),
}

impl Failure {
    fn message(&self) -> &str {
        match self {
            Failure::Rejected(m) | Failure::Panicked(m) => m,
        }
    }
}

/// A configured property check. See the module docs for an example.
pub struct Check {
    name: &'static str,
    cases: u32,
    seed: u64,
    max_shrink_steps: u32,
}

impl Check {
    /// A check with the default budget (256 cases, or `GRIDQ_CHECK_CASES`)
    /// and the default base seed (or `GRIDQ_CHECK_SEED`).
    pub fn new(name: &'static str) -> Self {
        let cases = std::env::var("GRIDQ_CHECK_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        let seed = std::env::var("GRIDQ_CHECK_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0x6772_6964_715f_6368); // "gridq_ch"
        Check {
            name,
            cases,
            seed,
            max_shrink_steps: 512,
        }
    }

    /// Overrides the number of generated cases.
    pub fn cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Overrides the base seed (for pinning a regression).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Runs `prop` against `cases` inputs drawn by `gen`, without
    /// shrinking. Panics with a replayable report on the first failure.
    pub fn run<T, G, P>(self, gen: G, prop: P)
    where
        T: Debug + Clone,
        G: Fn(&mut DetRng) -> T,
        P: Fn(&T) -> Result<(), String>,
    {
        self.run_shrink(gen, no_shrink, prop);
    }

    /// Runs `prop` against generated inputs, and on failure greedily
    /// shrinks the counterexample with `shrink` before reporting it.
    pub fn run_shrink<T, G, S, P>(self, gen: G, shrink: S, prop: P)
    where
        T: Debug + Clone,
        G: Fn(&mut DetRng) -> T,
        S: Fn(&T) -> Vec<T>,
        P: Fn(&T) -> Result<(), String>,
    {
        for case in 0..self.cases {
            let case_seed = self
                .seed
                .wrapping_add(u64::from(case).wrapping_mul(SEED_STRIDE));
            let mut rng = DetRng::seeded(case_seed);
            let input = gen(&mut rng);
            if let Some(failure) = eval(&prop, &input) {
                let (minimal, final_failure, steps) =
                    shrink_loop(&prop, &shrink, input, failure, self.max_shrink_steps);
                panic!(
                    "property `{}` failed at case {case}/{} \
                     (replay with GRIDQ_CHECK_SEED={case_seed} GRIDQ_CHECK_CASES=1)\n\
                     counterexample (after {steps} shrink steps): {minimal:?}\n\
                     failure: {}",
                    self.name,
                    self.cases,
                    final_failure.message(),
                );
            }
        }
    }
}

/// Evaluates the property once, converting panics into [`Failure`]s.
fn eval<T, P>(prop: &P, input: &T) -> Option<Failure>
where
    P: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(input))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(Failure::Rejected(msg)),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "panic with non-string payload".into());
            Some(Failure::Panicked(format!("panicked: {msg}")))
        }
    }
}

/// Greedy shrink: repeatedly replace the counterexample with the first
/// shrink candidate that still fails, until none do or the step budget
/// runs out.
fn shrink_loop<T, S, P>(
    prop: &P,
    shrink: &S,
    mut current: T,
    mut failure: Failure,
    max_steps: u32,
) -> (T, Failure, u32)
where
    T: Clone,
    S: Fn(&T) -> Vec<T>,
    P: Fn(&T) -> Result<(), String>,
{
    let mut steps = 0;
    'outer: while steps < max_steps {
        for candidate in shrink(&current) {
            if let Some(f) = eval(prop, &candidate) {
                current = candidate;
                failure = f;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, failure, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_completes() {
        Check::new("sum is symmetric").cases(50).run(
            |rng| (rng.i64_in(-5, 5), rng.i64_in(-5, 5)),
            |&(a, b)| {
                if a + b == b + a {
                    Ok(())
                } else {
                    Err("math broke".into())
                }
            },
        );
    }

    #[test]
    #[should_panic(expected = "property `always fails`")]
    fn failing_property_panics_with_report() {
        Check::new("always fails")
            .cases(3)
            .run(|rng| rng.i64_in(0, 10), |_| Err("nope".into()));
    }

    #[test]
    #[should_panic(expected = "panicked: boom")]
    fn panicking_property_is_caught_and_reported() {
        Check::new("panics").cases(2).run(
            |rng| rng.i64_in(0, 10),
            |_| -> Result<(), String> { panic!("boom") },
        );
    }

    #[test]
    fn shrinking_minimises_vec_counterexample() {
        // Property: no vector contains a 7. The minimal counterexample is
        // exactly [7].
        let result = catch_unwind(AssertUnwindSafe(|| {
            Check::new("no sevens").cases(200).run_shrink(
                |rng| rng.vec_of(0, 40, |r| r.i64_in(0, 16)),
                |v: &Vec<i64>| shrink_vec(v),
                |v| {
                    if v.contains(&7) {
                        Err("found a 7".into())
                    } else {
                        Ok(())
                    }
                },
            );
        }));
        let payload = result.expect_err("property must fail");
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("[7]"), "not minimised: {msg}");
    }

    #[test]
    fn generators_respect_bounds() {
        let mut rng = DetRng::seeded(1);
        for _ in 0..1000 {
            assert!((3..9).contains(&rng.i64_in(3, 9)));
            assert!((0..4).contains(&rng.usize_in(0, 4)));
            assert!((2..5).contains(&rng.u32_in(2, 5)));
            let f = rng.f64_in(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
            let v = rng.vec_of(1, 4, |r| r.flip());
            assert!((1..4).contains(&v.len()));
            assert!([10, 20, 30].contains(rng.pick(&[10, 20, 30])));
        }
    }

    #[test]
    fn i64_in_handles_extreme_ranges() {
        let mut rng = DetRng::seeded(2);
        for _ in 0..100 {
            let v = rng.i64_in(i64::MIN, i64::MAX);
            assert!(v < i64::MAX);
        }
    }

    #[test]
    fn shrink_vec_candidates_are_strictly_smaller() {
        let v: Vec<u8> = (0..10).collect();
        for c in shrink_vec(&v) {
            assert!(c.len() < v.len());
        }
        assert!(shrink_vec(&Vec::<u8>::new()).is_empty());
    }

    #[test]
    fn per_case_seeds_are_replayable() {
        // The report instructs replaying with GRIDQ_CHECK_CASES=1 and the
        // failing seed as the base: verify that seed stride for case 0 is
        // the base seed itself.
        let mut a = DetRng::seeded(77);
        let mut b = DetRng::seeded(77u64.wrapping_add(0u64.wrapping_mul(SEED_STRIDE)));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
