#![warn(missing_docs)]

//! Foundation types shared by every `gridq` crate.
//!
//! This crate deliberately has no dependencies: it defines identifiers,
//! virtual time, relational values/schemas/tuples, deterministic random
//! number generation, error types, and the windowed statistics used by the
//! adaptivity components of the paper (running averages over a bounded
//! window with the minimum and maximum samples discarded).

pub mod cast;
pub mod chaos;
pub mod check;
pub mod dist;
pub mod error;
pub mod ids;
pub mod obs;
pub mod rng;
pub mod schema;
pub mod stats;
pub mod sync;
pub mod time;
pub mod tuple;
pub mod value;
pub mod wire;

pub use chaos::{ChaosHook, NetAction, NotifyKind, NullChaos, RecallPhase, StallSite};
pub use dist::{BucketMap, BucketMove, DistributionVector};
pub use error::{GridError, Result};
pub use ids::{BucketId, NodeId, OperatorId, PartitionId, QueryId, SubplanId};
pub use obs::{MetricSink, NullSink};
pub use rng::DetRng;
pub use schema::{DataType, Field, Schema};
pub use stats::TrimmedWindow;
pub use time::SimTime;
pub use tuple::Tuple;
pub use value::Value;
