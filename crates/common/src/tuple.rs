//! Tuples: immutable rows of values.
//!
//! Tuples are the unit of data flow through the query engine and the unit
//! of bookkeeping in the recovery logs, so they carry a per-query sequence
//! number that identifies them across redistribution.

use std::fmt;
use std::sync::Arc;

use crate::value::Value;

/// An immutable row. Cloning shares the underlying values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tuple {
    values: Arc<[Value]>,
    /// Sequence number assigned by the producing scan; stable across
    /// repartitioning, used by checkpoints and acknowledgements.
    seq: u64,
}

impl Tuple {
    /// Creates a tuple with sequence number zero.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: values.into(),
            seq: 0,
        }
    }

    /// Creates a tuple with an explicit sequence number.
    pub fn with_seq(values: Vec<Value>, seq: u64) -> Self {
        Tuple {
            values: values.into(),
            seq,
        }
    }

    /// Returns a copy of this tuple with a different sequence number.
    pub fn renumbered(&self, seq: u64) -> Self {
        Tuple {
            values: Arc::clone(&self.values),
            seq,
        }
    }

    /// The values in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value at `idx`.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The producer-assigned sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Approximate serialized size in bytes (payload only).
    pub fn byte_size(&self) -> usize {
        self.values.iter().map(Value::byte_size).sum()
    }

    /// Concatenates two tuples (the output of a join); keeps the left
    /// tuple's sequence number.
    pub fn concat(&self, right: &Tuple) -> Tuple {
        let mut values = self.values.to_vec();
        values.extend(right.values.iter().cloned());
        Tuple {
            values: values.into(),
            seq: self.seq,
        }
    }

    /// Projects onto the given column indices, keeping the sequence number.
    pub fn project(&self, indices: &[usize]) -> Tuple {
        Tuple {
            values: indices
                .iter()
                .map(|&i| self.values[i].clone())
                .collect::<Vec<_>>()
                .into(),
            seq: self.seq,
        }
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: Vec<Value>, seq: u64) -> Tuple {
        Tuple::with_seq(vals, seq)
    }

    #[test]
    fn basic_access() {
        let tup = t(vec![Value::Int(1), Value::str("x")], 9);
        assert_eq!(tup.arity(), 2);
        assert_eq!(tup.seq(), 9);
        assert_eq!(tup.value(0), &Value::Int(1));
        assert_eq!(tup.values()[1], Value::str("x"));
    }

    #[test]
    fn byte_size_sums_values() {
        let tup = Tuple::new(vec![Value::Int(1), Value::str("abc")]);
        assert_eq!(tup.byte_size(), 8 + 3);
    }

    #[test]
    fn concat_keeps_left_seq() {
        let l = t(vec![Value::Int(1)], 5);
        let r = t(vec![Value::Int(2)], 8);
        let j = l.concat(&r);
        assert_eq!(j.arity(), 2);
        assert_eq!(j.seq(), 5);
        assert_eq!(j.value(1), &Value::Int(2));
    }

    #[test]
    fn project_reorders() {
        let tup = t(vec![Value::Int(1), Value::Int(2), Value::Int(3)], 4);
        let p = tup.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
        assert_eq!(p.seq(), 4);
    }

    #[test]
    fn renumbered_shares_values() {
        let tup = Tuple::new(vec![Value::str("abc")]);
        let r = tup.renumbered(77);
        assert_eq!(r.seq(), 77);
        assert_eq!(r.values(), tup.values());
    }

    #[test]
    fn display() {
        let tup = Tuple::new(vec![Value::Int(1), Value::Null]);
        assert_eq!(tup.to_string(), "[1, NULL]");
    }
}
