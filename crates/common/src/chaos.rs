//! Fault-injection hooks.
//!
//! `gridq-common` sits below every other crate, so it cannot depend on
//! the chaos harness in `gridq-chaos`. Instead it defines the narrow
//! [`ChaosHook`] trait that the two execution substrates consult at
//! their injection seams (exchange-buffer sends, checkpoint acks,
//! monitoring notifications, recall control replies, per-tuple work);
//! `gridq-chaos` implements it for a seeded fault plan. With no hook
//! installed every seam takes the `Deliver`/no-stall default, so the
//! instrumented paths are behaviorally identical to the uninstrumented
//! ones.
//!
//! The fault model matches what the architecture survives: checkpoint
//! acknowledgements are per-window and producers *retransmit* windows
//! whose acks never arrive, so dropped or duplicated data-plane buffers
//! are recovered by the at-least-once transport and absorbed by
//! consumer-side deduplication. Crashing a worker outright
//! ([`ChaosHook::crash_worker`]) is survivable too when failover is
//! enabled: the heartbeat detector declares the worker dead and its
//! recovery-log entries replay to the survivors. The one deliberately
//! unrecoverable combination — a crash with no failover (static policy)
//! — exists so the oracle layer can prove data loss fails loudly.

use std::fmt;

/// What to do with a message about to be delivered at a chaos seam.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetAction {
    /// Deliver normally (the default everywhere).
    Deliver,
    /// Silently discard the message.
    Drop,
    /// Deliver after an extra delay (virtual ms in the simulator,
    /// wall-clock ms scaled like other costs in the threaded executor).
    DelayMs(f64),
    /// Deliver the message twice.
    Duplicate,
}

/// Which best-effort monitoring notification is about to be sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyKind {
    /// An M1 (workload / queue-length style) raw monitoring event.
    M1,
    /// An M2 (cost / throughput style) raw monitoring event.
    M2,
}

/// Where a thread stall is about to be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallSite {
    /// A producer (source scan / staging) step.
    Producer,
    /// A consumer (operator evaluation) step.
    Consumer,
}

/// Which recall-protocol control reply is about to be sent by a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecallPhase {
    /// The `Drained` reply acknowledging a drain marker.
    Drain,
    /// The `MigrateDone` reply acknowledging state migration.
    Migrate,
}

/// Fault-injection decisions consulted by the execution substrates.
///
/// Every method has a pass-through default, so an installed hook only
/// needs to override the seams its plan targets. Implementations must be
/// cheap and thread-safe: the threaded executor calls them from producer,
/// consumer, and adaptivity threads concurrently. `source`/`dest`/
/// `index`/`worker` arguments are substrate-level partition indices
/// (producer/source index, consumer/worker index), letting a plan target
/// one edge of the exchange without knowing substrate internals.
pub trait ChaosHook: fmt::Debug + Send + Sync {
    /// Decides the fate of a data-plane buffer from producer `source`
    /// to consumer `dest`.
    fn on_data(&self, source: usize, dest: usize) -> NetAction {
        let _ = (source, dest);
        NetAction::Deliver
    }

    /// Decides the fate of a checkpoint acknowledgment for source
    /// stream `source`, observed at worker `worker`.
    fn on_ack(&self, source: usize, worker: usize) -> NetAction {
        let _ = (source, worker);
        NetAction::Deliver
    }

    /// Returns `false` to lose the monitoring notification of the given
    /// kind originating at partition `index`.
    fn on_notification(&self, kind: NotifyKind, index: usize) -> bool {
        let _ = (kind, index);
        true
    }

    /// Returns `false` to lose worker `worker`'s control reply for the
    /// given recall phase (the coordinator then times out and aborts the
    /// recall; the gate reopens and the data plane continues).
    fn on_recall_ctrl(&self, phase: RecallPhase, worker: usize) -> bool {
        let _ = (phase, worker);
        true
    }

    /// Extra per-step stall (ms) to inject at `site` for partition
    /// `index`; `0.0` injects nothing.
    fn stall_ms(&self, site: StallSite, index: usize) -> f64 {
        let _ = (site, index);
        0.0
    }

    /// Returns `true` to kill consumer `worker` right now. The threaded
    /// executor consults this once per received message; on `true` the
    /// consumer returns immediately — no flush, no acknowledgements, no
    /// control replies — exactly as if its node died. With failover
    /// enabled the heartbeat detector then drives recovery; without it
    /// the run degrades gracefully and the conservation oracle reports
    /// the loss.
    fn crash_worker(&self, worker: usize) -> bool {
        let _ = worker;
        false
    }

    /// Returns `true` to tear the socket connection to worker `worker`
    /// down immediately before the next data frame is written (socket
    /// substrate only). The worker observes EOF, reconnects, and the
    /// link layer retransmits the unacknowledged outbox suffix.
    fn conn_drop(&self, worker: usize) -> bool {
        let _ = worker;
        false
    }

    /// Returns `true` to write the next data frame to worker `worker` in
    /// deliberately tiny chunks (socket substrate only), exercising the
    /// incremental frame decoder against short writes that split headers
    /// and payloads at arbitrary byte boundaries.
    fn partial_write(&self, worker: usize) -> bool {
        let _ = worker;
        false
    }

    /// Extra stall (model ms, scaled like other costs) that worker
    /// `worker` injects before every socket read (socket substrate
    /// only). A slow peer stops draining its receive buffer, TCP flow
    /// control pushes back on the coordinator's writer, and the
    /// producer-side SPSC rings fill until producers park.
    fn slow_peer_stall_ms(&self, worker: usize) -> f64 {
        let _ = worker;
        0.0
    }
}

/// A hook that injects nothing — usable wherever a concrete default is
/// handy (tests, documentation examples).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullChaos;

impl ChaosHook for NullChaos {}

#[cfg(test)]
// The defaults return exact literals (0.0, Deliver); bit-exact equality
// is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn null_chaos_defaults_are_pass_through() {
        let hook: std::sync::Arc<dyn ChaosHook> = std::sync::Arc::new(NullChaos);
        assert_eq!(hook.on_data(0, 1), NetAction::Deliver);
        assert_eq!(hook.on_ack(0, 1), NetAction::Deliver);
        assert!(hook.on_notification(NotifyKind::M1, 0));
        assert!(hook.on_notification(NotifyKind::M2, 3));
        assert!(hook.on_recall_ctrl(RecallPhase::Drain, 2));
        assert!(hook.on_recall_ctrl(RecallPhase::Migrate, 2));
        assert_eq!(hook.stall_ms(StallSite::Producer, 0), 0.0);
        assert_eq!(hook.stall_ms(StallSite::Consumer, 1), 0.0);
        assert!(!hook.crash_worker(0));
        assert!(!hook.conn_drop(0));
        assert!(!hook.partial_write(1));
        assert_eq!(hook.slow_peer_stall_ms(2), 0.0);
    }
}
