//! A bounded single-producer/single-consumer ring for the hot data
//! plane.
//!
//! `std::sync::mpsc` allocates a node per send and takes an internal
//! lock on both ends; at tuple-block rates that is the dominant cost of
//! the threaded exchange. This ring is the in-tree replacement for the
//! one hot edge shape the executor has — exactly one producer thread
//! pushing to exactly one consumer thread — built only on `std`
//! atomics and `thread::park`:
//!
//! - a fixed slot array with free-running head/tail counters (Lamport
//!   queue), each counter on its own cache line so the producer's
//!   stores never invalidate the consumer's line and vice versa;
//! - acquire/release pairs ordering the data writes: the producer
//!   publishes a slot with a `Release` store of `tail`, the consumer
//!   reads `tail` with `Acquire` before touching the slot (and
//!   symmetrically for `head` when the producer reclaims space);
//! - park/unpark backpressure: a producer that finds the ring full
//!   registers its thread handle and parks; every `pop` wakes it. The
//!   registration slots use the workspace's poison-recovering
//!   [`crate::sync::Mutex`], keeping the `std-sync` lint invariant.
//!
//! Capacity is a hard bound: the ring never allocates after
//! construction, so a slow consumer stalls its producer instead of
//! growing a queue without limit (`push` is the eviction-free
//! counterpart of the `pop` the consumer must keep calling). Dropping
//! the [`RingReceiver`] closes the ring: a parked producer wakes and
//! every later `push` fails fast, returning the rejected value so the
//! caller can account for the loss instead of silently dropping it.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, Thread};
use std::time::{Duration, Instant};

use crate::sync::Mutex;

/// Pads a counter to its own cache line so producer and consumer
/// updates do not false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// Safety-net park slice: the register → re-check → park protocol
/// prevents lost wakeups on its own, so this bound only matters if a
/// counterpart thread dies without running its drop glue.
const PARK_SLICE: Duration = Duration::from_millis(10);

struct Shared<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next slot to pop; written only by the consumer.
    head: CachePadded<AtomicUsize>,
    /// Next slot to push; written only by the producer.
    tail: CachePadded<AtomicUsize>,
    producer_closed: AtomicBool,
    consumer_closed: AtomicBool,
    /// Producer thread parked on a full ring, woken by `pop`/close.
    producer_parked: Mutex<Option<Thread>>,
    /// Consumer thread parked on an empty ring, woken by `push`/close.
    consumer_parked: Mutex<Option<Thread>>,
}

// The raw slot array is only ever written by the single producer and
// read by the single consumer, with the head/tail acquire/release
// pairs ordering every access; the type erases that protocol, so the
// bounds are asserted here.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Sole owner at this point: drain whatever was pushed but never
        // popped.
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        let cap = self.slots.len();
        let mut i = head;
        while i != tail {
            // Safety: slots in [head, tail) were initialised by `push`
            // and never popped; this is the only remaining reference.
            unsafe { (*self.slots[i % cap].get()).assume_init_drop() };
            i = i.wrapping_add(1);
        }
    }
}

fn wake(slot: &Mutex<Option<Thread>>) {
    if let Some(t) = slot.lock().take() {
        t.unpark();
    }
}

/// Creates a bounded SPSC ring with room for `capacity` items.
/// `capacity` is clamped to at least 1.
pub fn ring<T: Send>(capacity: usize) -> (RingSender<T>, RingReceiver<T>) {
    let capacity = capacity.max(1);
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let shared = Arc::new(Shared {
        slots,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
        producer_closed: AtomicBool::new(false),
        consumer_closed: AtomicBool::new(false),
        producer_parked: Mutex::new(None),
        consumer_parked: Mutex::new(None),
    });
    (
        RingSender {
            shared: Arc::clone(&shared),
        },
        RingReceiver { shared },
    )
}

/// The producing half of a ring; exactly one thread may use it.
pub struct RingSender<T: Send> {
    shared: Arc<Shared<T>>,
}

impl<T: Send> RingSender<T> {
    /// Pushes `value`, parking while the ring is full. Returns
    /// `Err(value)` once the receiver has been dropped — the value
    /// comes back so the caller can count or log the failed delivery.
    pub fn push(&self, value: T) -> std::result::Result<(), T> {
        let shared = &*self.shared;
        let cap = shared.slots.len();
        let tail = shared.tail.0.load(Ordering::Relaxed);
        loop {
            if shared.consumer_closed.load(Ordering::Acquire) {
                return Err(value);
            }
            let head = shared.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < cap {
                // Safety: the slot at `tail` is outside [head, tail),
                // so the consumer cannot touch it until the Release
                // store below publishes it.
                unsafe { (*shared.slots[tail % cap].get()).write(value) };
                shared.tail.0.store(tail.wrapping_add(1), Ordering::Release);
                wake(&shared.consumer_parked);
                return Ok(());
            }
            // Full: register, re-check (a pop between the loads above
            // and the registration must not be missed), then park.
            *shared.producer_parked.lock() = Some(thread::current());
            let head = shared.head.0.load(Ordering::Acquire);
            if tail.wrapping_sub(head) < cap || shared.consumer_closed.load(Ordering::Acquire) {
                shared.producer_parked.lock().take();
                continue;
            }
            thread::park_timeout(PARK_SLICE);
            shared.producer_parked.lock().take();
        }
    }

    /// Pushes without blocking; `Err(value)` when the ring is full or
    /// the receiver is gone.
    pub fn try_push(&self, value: T) -> std::result::Result<(), T> {
        let shared = &*self.shared;
        let cap = shared.slots.len();
        if shared.consumer_closed.load(Ordering::Acquire) {
            return Err(value);
        }
        let tail = shared.tail.0.load(Ordering::Relaxed);
        let head = shared.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= cap {
            return Err(value);
        }
        // Safety: as in `push`, the slot is unpublished until the
        // Release store.
        unsafe { (*shared.slots[tail % cap].get()).write(value) };
        shared.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        wake(&shared.consumer_parked);
        Ok(())
    }

    /// True once the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        self.shared.consumer_closed.load(Ordering::Acquire)
    }
}

impl<T: Send> Drop for RingSender<T> {
    fn drop(&mut self) {
        self.shared.producer_closed.store(true, Ordering::Release);
        wake(&self.shared.consumer_parked);
    }
}

/// The consuming half of a ring; exactly one thread may use it.
pub struct RingReceiver<T: Send> {
    shared: Arc<Shared<T>>,
}

impl<T: Send> RingReceiver<T> {
    /// Pops the oldest item without blocking.
    pub fn pop(&self) -> Option<T> {
        let shared = &*self.shared;
        let cap = shared.slots.len();
        let head = shared.head.0.load(Ordering::Relaxed);
        let tail = shared.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // Safety: the Acquire load of `tail` ordered this slot's write
        // before the read, and the producer will not reuse it until the
        // Release store of `head` below.
        let value = unsafe { (*shared.slots[head % cap].get()).assume_init_read() };
        shared.head.0.store(head.wrapping_add(1), Ordering::Release);
        wake(&shared.producer_parked);
        Some(value)
    }

    /// Pops, parking up to `timeout` while the ring is empty. Returns
    /// `None` on timeout or when the ring is closed and drained.
    pub fn pop_wait(&self, timeout: Duration) -> Option<T> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(v) = self.pop() {
                return Some(v);
            }
            if self.shared.producer_closed.load(Ordering::Acquire) {
                // Closed, but a final push may have raced the flag:
                // one more pop settles it.
                return self.pop();
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            *self.shared.consumer_parked.lock() = Some(thread::current());
            if !self.is_empty() || self.shared.producer_closed.load(Ordering::Acquire) {
                self.shared.consumer_parked.lock().take();
                continue;
            }
            thread::park_timeout((deadline - now).min(PARK_SLICE));
            self.shared.consumer_parked.lock().take();
        }
    }

    /// True when no item is currently queued.
    pub fn is_empty(&self) -> bool {
        let shared = &*self.shared;
        shared.head.0.load(Ordering::Relaxed) == shared.tail.0.load(Ordering::Acquire)
    }

    /// True once the sending half has been dropped (items may still be
    /// queued; drain with [`RingReceiver::pop`]).
    pub fn is_closed(&self) -> bool {
        self.shared.producer_closed.load(Ordering::Acquire)
    }
}

impl<T: Send> Drop for RingReceiver<T> {
    fn drop(&mut self) {
        self.shared.consumer_closed.store(true, Ordering::Release);
        wake(&self.shared.producer_parked);
    }
}

/// A one-thread wakeup slot for a consumer multiplexing several rings
/// and a control channel: the consumer registers itself before
/// parking, every data/control sender calls [`Waker::wake`] after
/// publishing. The register → re-check → park protocol on the consumer
/// side makes the data path lost-wakeup-free; `unpark`'s saved token
/// covers the window between registration and the park itself.
#[derive(Default)]
pub struct Waker {
    slot: Mutex<Option<Thread>>,
}

impl Waker {
    /// Creates an empty waker.
    pub fn new() -> Self {
        Waker::default()
    }

    /// Registers the calling thread as the one to wake.
    pub fn register(&self) {
        *self.slot.lock() = Some(thread::current());
    }

    /// Clears the registration (call after waking from the park).
    pub fn clear(&self) {
        self.slot.lock().take();
    }

    /// Unparks the registered thread, if any.
    pub fn wake(&self) {
        if let Some(t) = self.slot.lock().take() {
            t.unpark();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::{shrink_vec, Check, Gen};
    use crate::DetRng;

    #[test]
    fn fifo_round_trip() {
        let (tx, rx) = ring::<u32>(4);
        assert!(rx.is_empty());
        tx.push(1).unwrap();
        tx.push(2).unwrap();
        assert_eq!(rx.pop(), Some(1));
        tx.push(3).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn try_push_reports_full() {
        let (tx, rx) = ring::<u32>(2);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        assert_eq!(tx.try_push(3), Err(3));
        assert_eq!(rx.pop(), Some(1));
        tx.try_push(3).unwrap();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
    }

    #[test]
    fn sender_drop_closes_after_drain() {
        let (tx, rx) = ring::<u32>(4);
        tx.push(7).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), Some(7));
        assert_eq!(rx.pop(), None);
        assert_eq!(rx.pop_wait(Duration::from_millis(5)), None);
    }

    #[test]
    fn receiver_drop_fails_push_fast() {
        let (tx, rx) = ring::<u32>(2);
        drop(rx);
        assert!(tx.is_closed());
        let started = Instant::now();
        assert_eq!(tx.push(9), Err(9));
        assert!(
            started.elapsed() < Duration::from_millis(100),
            "push to a closed ring must not park"
        );
    }

    #[test]
    fn receiver_drop_unparks_a_full_producer() {
        let (tx, rx) = ring::<u32>(1);
        tx.push(0).unwrap();
        let h = thread::spawn(move || tx.push(1));
        thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert_eq!(h.join().unwrap(), Err(1));
    }

    #[test]
    fn pop_wait_blocks_until_push() {
        let (tx, rx) = ring::<u32>(2);
        let h = thread::spawn(move || rx.pop_wait(Duration::from_secs(5)));
        thread::sleep(Duration::from_millis(15));
        tx.push(42).unwrap();
        assert_eq!(h.join().unwrap(), Some(42));
    }

    #[test]
    fn unpopped_items_are_dropped_with_the_ring() {
        // Miri-style leak check by proxy: a Drop-counting payload.
        #[derive(Debug)]
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = ring::<Counted>(8);
        for _ in 0..5 {
            tx.push(Counted(Arc::clone(&drops))).unwrap();
        }
        drop(rx.pop());
        drop(tx);
        drop(rx);
        assert_eq!(drops.load(Ordering::Relaxed), 5);
    }

    /// One randomized schedule: a producer pushing `items` with random
    /// jitter and a consumer popping with a random mix of `pop` and
    /// `pop_wait`. The multiset (here: exact sequence — SPSC is FIFO)
    /// must survive, whatever the interleaving and however often the
    /// ring wraps.
    fn run_schedule(capacity: usize, items: Vec<u64>, seed: u64) -> Vec<u64> {
        let (tx, rx) = ring::<u64>(capacity);
        let n = items.len();
        let producer = thread::spawn(move || {
            let mut rng = DetRng::seeded(seed ^ 0x9e37);
            for v in items {
                if rng.uniform() < 0.2 {
                    thread::yield_now();
                }
                if rng.uniform() < 0.05 {
                    thread::sleep(Duration::from_micros(rng.below(50)));
                }
                tx.push(v).expect("receiver alive");
            }
        });
        let mut rng = DetRng::seeded(seed ^ 0x51ce);
        let mut got = Vec::with_capacity(n);
        while got.len() < n {
            if rng.uniform() < 0.3 {
                if let Some(v) = rx.pop() {
                    got.push(v);
                }
            } else if let Some(v) = rx.pop_wait(Duration::from_millis(200)) {
                got.push(v);
            }
            if rng.uniform() < 0.05 {
                thread::sleep(Duration::from_micros(rng.below(50)));
            }
        }
        producer.join().expect("producer must not panic");
        assert_eq!(rx.pop(), None, "nothing left after all items popped");
        got
    }

    #[test]
    fn property_random_schedules_preserve_the_sequence() {
        Check::new("ring_random_schedules").cases(24).run_shrink(
            |g: &mut DetRng| {
                let cap = g.usize_in(1, 9);
                let items: Vec<u64> = g.vec_of(0, 120, |g| g.i64_in(0, 1_000_000) as u64);
                let seed = g.next_u64();
                (cap, items, seed)
            },
            |(cap, items, seed)| {
                let mut shrunk: Vec<(usize, Vec<u64>, u64)> = Vec::new();
                for smaller in shrink_vec(items) {
                    shrunk.push((*cap, smaller, *seed));
                }
                if *cap > 1 {
                    shrunk.push((1, items.clone(), *seed));
                }
                shrunk
            },
            |(cap, items, seed)| {
                let got = run_schedule(*cap, items.clone(), *seed);
                if &got == items {
                    Ok(())
                } else {
                    Err(format!("FIFO order broken: sent {items:?}, got {got:?}"))
                }
            },
        );
    }

    #[test]
    fn property_capacity_one_wraps_correctly() {
        // The tightest ring is all wraparound: every push lands in the
        // same slot, so any ordering bug corrupts data immediately.
        Check::new("ring_capacity_one").cases(16).run(
            |g: &mut DetRng| g.vec_of(1, 200, |g| g.i64_in(i64::MIN / 2, i64::MAX / 2)),
            |items: &Vec<i64>| {
                let (tx, rx) = ring::<i64>(1);
                let send = items.clone();
                let producer = thread::spawn(move || {
                    for v in send {
                        tx.push(v).expect("receiver alive");
                    }
                });
                let mut got = Vec::with_capacity(items.len());
                while got.len() < items.len() {
                    if let Some(v) = rx.pop_wait(Duration::from_millis(200)) {
                        got.push(v);
                    }
                }
                producer.join().expect("producer ok");
                if &got == items {
                    Ok(())
                } else {
                    Err(format!("wraparound corrupted data: {got:?}"))
                }
            },
        );
    }

    #[test]
    fn property_parked_producer_survives_random_drain_schedules() {
        // Force the full/park path: capacity far below the item count,
        // consumer draining in random bursts with random pauses.
        Check::new("ring_park_schedules").cases(12).run(
            |g: &mut DetRng| {
                let cap = g.usize_in(1, 3);
                let n = g.usize_in(20, 80);
                let seed = g.next_u64();
                (cap, n, seed)
            },
            |&(cap, n, seed)| {
                let (tx, rx) = ring::<usize>(cap);
                let producer = thread::spawn(move || {
                    for v in 0..n {
                        tx.push(v).expect("receiver alive");
                    }
                });
                let mut rng = DetRng::seeded(seed);
                let mut got = Vec::with_capacity(n);
                while got.len() < n {
                    let burst = rng.usize_in(1, 5);
                    for _ in 0..burst {
                        if let Some(v) = rx.pop_wait(Duration::from_millis(200)) {
                            got.push(v);
                        }
                    }
                    if rng.uniform() < 0.4 {
                        thread::sleep(Duration::from_micros(rng.below(200)));
                    }
                }
                producer.join().expect("producer ok");
                let want: Vec<usize> = (0..n).collect();
                if got == want {
                    Ok(())
                } else {
                    Err(format!("park schedule lost or reordered items: {got:?}"))
                }
            },
        );
    }

    /// Socket-sized payloads: each slot carries a whole tuple block, so
    /// a block whose `items.len()` exceeds the ring capacity (or the
    /// remaining free slots) must backpressure the producer as a unit —
    /// never split across slots, never merged with a neighbour. The
    /// tightest rings (capacity 1 and 2) force every oversized block
    /// through the park/wrap path.
    #[test]
    fn property_oversized_blocks_backpressure_without_splitting() {
        Check::new("ring_oversized_blocks").cases(12).run(
            |g: &mut DetRng| {
                let cap = g.usize_in(1, 3); // capacity-1 and capacity-2 rings
                let blocks: Vec<Vec<u64>> = g.vec_of(1, 30, |g| {
                    // Block payloads deliberately larger than the ring:
                    // up to 8x the capacity, plus occasional empties.
                    let len = if g.flip() {
                        g.usize_in(cap + 1, cap * 8 + 2)
                    } else {
                        g.usize_in(0, 2)
                    };
                    (0..len).map(|_| g.next_u64()).collect()
                });
                let seed = g.next_u64();
                (cap, blocks, seed)
            },
            |(cap, blocks, seed)| {
                let (tx, rx) = ring::<Vec<u64>>(*cap);
                let send = blocks.clone();
                let producer = thread::spawn(move || {
                    for b in send {
                        tx.push(b).expect("receiver alive");
                    }
                });
                // Slow consumer: drain with pauses so the producer hits
                // the full ring and parks mid-schedule.
                let mut rng = DetRng::seeded(*seed);
                let mut got: Vec<Vec<u64>> = Vec::with_capacity(blocks.len());
                while got.len() < blocks.len() {
                    if rng.uniform() < 0.3 {
                        thread::sleep(Duration::from_micros(rng.below(200)));
                    }
                    if let Some(b) = rx.pop_wait(Duration::from_millis(200)) {
                        got.push(b);
                    }
                }
                producer.join().expect("producer ok");
                if rx.pop().is_some() {
                    return Err("items left after all blocks arrived".into());
                }
                if &got == blocks {
                    Ok(())
                } else {
                    Err(format!(
                        "blocks split or reordered: sent lens {:?}, got lens {:?}",
                        blocks.iter().map(Vec::len).collect::<Vec<_>>(),
                        got.iter().map(Vec::len).collect::<Vec<_>>()
                    ))
                }
            },
        );
    }

    /// A full ring refuses an oversized block atomically: `try_push`
    /// hands the whole payload back untouched, and the later blocking
    /// `push` delivers that same payload intact once a slot frees.
    #[test]
    fn oversized_block_refusal_is_atomic() {
        for cap in [1usize, 2] {
            let (tx, rx) = ring::<Vec<u64>>(cap);
            for i in 0..cap {
                tx.try_push(vec![i as u64]).unwrap();
            }
            let big: Vec<u64> = (0..64).collect();
            let refused = tx.try_push(big.clone()).expect_err("ring is full");
            assert_eq!(refused, big, "refused block must come back intact");
            let h = thread::spawn(move || tx.push(refused).expect("receiver alive"));
            thread::sleep(Duration::from_millis(10));
            for i in 0..cap {
                assert_eq!(
                    rx.pop_wait(Duration::from_millis(200)),
                    Some(vec![i as u64])
                );
            }
            h.join().unwrap();
            assert_eq!(rx.pop_wait(Duration::from_millis(200)), Some(big));
            assert_eq!(rx.pop(), None);
        }
    }

    #[test]
    fn waker_wakes_registered_thread() {
        let waker = Arc::new(Waker::new());
        let w = Arc::clone(&waker);
        let h = thread::spawn(move || {
            w.register();
            thread::park_timeout(Duration::from_secs(5));
            w.clear();
        });
        thread::sleep(Duration::from_millis(15));
        let started = Instant::now();
        waker.wake();
        h.join().unwrap();
        assert!(started.elapsed() < Duration::from_secs(1));
        // Waking with nothing registered is a no-op.
        waker.wake();
    }
}
