//! The error type shared across the workspace.

use std::fmt;

/// Convenience alias used throughout the `gridq` crates.
pub type Result<T> = std::result::Result<T, GridError>;

/// Errors produced by planning, scheduling, or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A column name did not resolve against a schema.
    UnknownColumn(String),
    /// A bare column name matched more than one qualified column.
    AmbiguousColumn(String),
    /// A table name was not present in the catalog.
    UnknownTable(String),
    /// A function/web-service name was not registered.
    UnknownFunction(String),
    /// SQL text failed to lex or parse.
    Parse {
        /// Byte offset of the failure in the input.
        pos: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// A plan was structurally invalid (e.g. type mismatch, missing input).
    Plan(String),
    /// The scheduler could not satisfy resource requirements.
    Schedule(String),
    /// A runtime failure during (simulated or threaded) execution.
    Execution(String),
    /// The adaptivity subsystem was misconfigured.
    Adaptivity(String),
    /// Configuration values were out of range.
    Config(String),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            GridError::AmbiguousColumn(name) => write!(f, "ambiguous column `{name}`"),
            GridError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            GridError::UnknownFunction(name) => write!(f, "unknown function `{name}`"),
            GridError::Parse { pos, message } => {
                write!(f, "parse error at byte {pos}: {message}")
            }
            GridError::Plan(msg) => write!(f, "plan error: {msg}"),
            GridError::Schedule(msg) => write!(f, "scheduling error: {msg}"),
            GridError::Execution(msg) => write!(f, "execution error: {msg}"),
            GridError::Adaptivity(msg) => write!(f, "adaptivity error: {msg}"),
            GridError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for GridError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            GridError::UnknownColumn("x".into()).to_string(),
            "unknown column `x`"
        );
        assert_eq!(
            GridError::Parse {
                pos: 4,
                message: "expected FROM".into()
            }
            .to_string(),
            "parse error at byte 4: expected FROM"
        );
        assert_eq!(
            GridError::Schedule("no nodes".into()).to_string(),
            "scheduling error: no nodes"
        );
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<GridError>();
    }
}
