//! Deterministic random number generation.
//!
//! Simulation results must be exactly reproducible from a seed, so the
//! workspace uses its own small generator (xoshiro256** seeded via
//! SplitMix64) instead of thread-local entropy. Gaussian variates come from
//! the Box–Muller transform; the paper's Fig. 5 uses normally distributed
//! per-tuple perturbations clamped to a range, which
//! [`DetRng::normal_clamped`] provides.

/// A seeded xoshiro256** generator.
#[derive(Debug, Clone)]
pub struct DetRng {
    state: [u64; 4],
    /// Cached second Gaussian variate from Box–Muller.
    spare_normal: Option<f64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut sm = seed;
        let state = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng {
            state,
            spare_normal: None,
        }
    }

    /// Derives an independent stream for a subcomponent. Streams created
    /// with distinct labels from the same parent are decorrelated.
    pub fn fork(&mut self, label: u64) -> DetRng {
        let base = self.next_u64();
        DetRng::seeded(base ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Requires `lo <= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Requires `n > 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // small `n` used here (bucket counts, node counts).
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Standard normal variate via Box–Muller.
    pub fn normal_std(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Avoid u == 0 so ln is finite.
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal_std()
    }

    /// Normal variate clamped to `[lo, hi]`. This models the paper's
    /// Fig. 5 perturbations, where per-tuple costs vary "in a normally
    /// distributed way" within a stated range while keeping the mean
    /// stable: the range endpoints are treated as mean ± 3σ.
    pub fn normal_clamped(&mut self, mean: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= mean && mean <= hi);
        let spread = (hi - mean).max(mean - lo);
        let sigma = spread / 3.0;
        self.normal(mean, sigma).clamp(lo, hi)
    }

    /// Weighted index selection: returns `i` with probability
    /// `weights[i] / sum(weights)`. Requires a non-empty slice with a
    /// positive sum.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0);
        let mut x = self.uniform() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = DetRng::seeded(42);
        let mut b = DetRng::seeded(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seeded(1);
        let mut b = DetRng::seeded(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = DetRng::seeded(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut rng = DetRng::seeded(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_bounds() {
        let mut rng = DetRng::seeded(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = DetRng::seeded(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.2, "var {var}");
    }

    #[test]
    fn normal_clamped_stays_in_range() {
        let mut rng = DetRng::seeded(9);
        let mut saw_spread = false;
        for _ in 0..10_000 {
            let x = rng.normal_clamped(30.0, 1.0, 60.0);
            assert!((1.0..=60.0).contains(&x));
            if (x - 30.0).abs() > 5.0 {
                saw_spread = true;
            }
        }
        assert!(saw_spread, "clamped normal should actually vary");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = DetRng::seeded(13);
        let weights = [1.0, 3.0];
        let n = 50_000;
        let ones = (0..n).filter(|_| rng.weighted_index(&weights) == 1).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac {frac}");
    }

    #[test]
    fn forked_streams_decorrelate() {
        let mut parent = DetRng::seeded(21);
        let mut a = parent.fork(1);
        let mut b = parent.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
