//! Windowed statistics for the monitoring pipeline.
//!
//! The paper's `MonitoringEventDetector` computes "the running average of
//! the cost over a window of a certain length, discarding the minimum and
//! maximum values" (default window: the last 25 events), and notifies the
//! Diagnoser only when that average changes by more than a threshold.
//! [`TrimmedWindow`] implements exactly that statistic;
//! [`ChangeDetector`] implements the threshold gate.

use std::collections::VecDeque;

/// A sliding window of the last `capacity` samples whose mean is computed
/// with one minimum and one maximum sample discarded (when at least three
/// samples are present).
///
/// Non-finite samples (NaN, ±∞) are rejected rather than stored: a single
/// NaN would otherwise poison [`TrimmedWindow::trimmed_mean`] for the next
/// `capacity` pushes, silencing every downstream change detector fed by
/// it. Rejections are counted and exposed via [`TrimmedWindow::rejected`]
/// so the monitoring layer can surface them.
#[derive(Debug, Clone)]
pub struct TrimmedWindow {
    samples: VecDeque<f64>,
    capacity: usize,
    rejected: u64,
}

impl TrimmedWindow {
    /// Creates a window holding the last `capacity` samples.
    /// `capacity` must be at least 1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "window capacity must be positive");
        TrimmedWindow {
            samples: VecDeque::with_capacity(capacity),
            capacity,
            rejected: 0,
        }
    }

    /// Adds a sample, evicting the oldest if the window is full. Returns
    /// `false` (and leaves the window untouched) for non-finite samples.
    pub fn push(&mut self, sample: f64) -> bool {
        if !sample.is_finite() {
            self.rejected += 1;
            return false;
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
        true
    }

    /// Number of non-finite samples rejected since construction.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The trimmed mean: the average of the window with a single minimum
    /// and single maximum discarded. With fewer than three samples the
    /// plain mean is returned; with no samples, `None`.
    pub fn trimmed_mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let n = self.samples.len();
        let sum: f64 = self.samples.iter().sum();
        if n < 3 {
            return Some(sum / n as f64);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &s in &self.samples {
            if s < min {
                min = s;
            }
            if s > max {
                max = s;
            }
        }
        Some((sum - min - max) / (n - 2) as f64)
    }

    /// Clears all samples.
    pub fn clear(&mut self) {
        self.samples.clear();
    }
}

/// Emits a value only when it has moved by more than `threshold`
/// (relative, e.g. `0.2` = 20 %) from the last emitted value.
///
/// The first observed value is always emitted so that downstream
/// subscribers learn the initial level.
#[derive(Debug, Clone)]
pub struct ChangeDetector {
    threshold: f64,
    last_emitted: Option<f64>,
}

impl ChangeDetector {
    /// Creates a detector with a relative threshold (`0.2` = 20 %).
    pub fn new(threshold: f64) -> Self {
        assert!(threshold >= 0.0, "threshold must be non-negative");
        ChangeDetector {
            threshold,
            last_emitted: None,
        }
    }

    /// Observes a value; returns `true` if it should be propagated
    /// (first value, or relative change beyond the threshold), updating
    /// the reference level when it fires.
    ///
    /// Non-finite values are rejected: they return `false` and leave the
    /// reference level untouched. Accepting a NaN as the new baseline
    /// would silence the detector permanently — `(x - NaN).abs() / d >
    /// thres` is false for every future `x` — so the previous finite
    /// baseline is kept instead.
    pub fn observe(&mut self, value: f64) -> bool {
        if !value.is_finite() {
            return false;
        }
        match self.last_emitted {
            None => {
                self.last_emitted = Some(value);
                true
            }
            Some(prev) => {
                let denom = prev.abs().max(f64::MIN_POSITIVE);
                if (value - prev).abs() / denom > self.threshold {
                    self.last_emitted = Some(value);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The last value that fired, if any.
    pub fn last_emitted(&self) -> Option<f64> {
        self.last_emitted
    }
}

/// Simple running mean without a window, used for report aggregation.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    count: u64,
    rejected: u64,
}

impl RunningMean {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sample. Non-finite samples are rejected (and counted via
    /// [`RunningMean::rejected`]) rather than accumulated: a single NaN
    /// in the sum would poison the mean for the rest of the run — the
    /// same hazard the `TrimmedWindow` guards against. Returns whether
    /// the sample was accepted.
    pub fn push(&mut self, sample: f64) -> bool {
        if !sample.is_finite() {
            self.rejected = self.rejected.saturating_add(1);
            return false;
        }
        self.sum += sample;
        self.count += 1;
        true
    }

    /// Number of non-finite samples rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// The mean so far, or `None` before any sample.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_has_no_mean() {
        let w = TrimmedWindow::new(5);
        assert!(w.is_empty());
        assert_eq!(w.trimmed_mean(), None);
    }

    #[test]
    fn small_windows_use_plain_mean() {
        let mut w = TrimmedWindow::new(10);
        w.push(2.0);
        assert_eq!(w.trimmed_mean(), Some(2.0));
        w.push(4.0);
        assert_eq!(w.trimmed_mean(), Some(3.0));
    }

    #[test]
    fn trimmed_mean_discards_min_and_max() {
        let mut w = TrimmedWindow::new(10);
        for s in [1.0, 100.0, 5.0, 5.0, 5.0] {
            w.push(s);
        }
        // min=1, max=100 discarded -> mean of three fives.
        assert_eq!(w.trimmed_mean(), Some(5.0));
    }

    #[test]
    fn window_evicts_oldest() {
        let mut w = TrimmedWindow::new(3);
        for s in [10.0, 20.0, 30.0, 40.0] {
            w.push(s);
        }
        assert_eq!(w.len(), 3);
        // Window now [20,30,40]; trimmed mean discards 20 and 40.
        assert_eq!(w.trimmed_mean(), Some(30.0));
    }

    #[test]
    fn trimmed_mean_discards_one_duplicate_extreme() {
        let mut w = TrimmedWindow::new(10);
        for s in [1.0, 1.0, 5.0, 9.0, 9.0] {
            w.push(s);
        }
        // One 1.0 and one 9.0 removed: (1 + 5 + 9) / 3 = 5.
        assert_eq!(w.trimmed_mean(), Some(5.0));
    }

    #[test]
    fn change_detector_fires_on_first_value() {
        let mut d = ChangeDetector::new(0.2);
        assert!(d.observe(10.0));
        assert_eq!(d.last_emitted(), Some(10.0));
    }

    #[test]
    fn change_detector_threshold_is_relative() {
        let mut d = ChangeDetector::new(0.2);
        assert!(d.observe(10.0));
        assert!(!d.observe(11.9)); // +19% — below threshold
        assert!(!d.observe(8.1)); // -19%
        assert!(d.observe(12.1)); // +21% — fires, re-baselines
        assert!(!d.observe(13.0)); // +7.4% from 12.1
        assert!(d.observe(15.0)); // +24% from 12.1
    }

    #[test]
    fn change_detector_handles_zero_baseline() {
        let mut d = ChangeDetector::new(0.2);
        assert!(d.observe(0.0));
        // Any nonzero move from zero is an infinite relative change.
        assert!(d.observe(0.001));
    }

    #[test]
    fn running_mean() {
        let mut m = RunningMean::new();
        assert_eq!(m.mean(), None);
        assert!(m.push(2.0));
        assert!(m.push(4.0));
        assert_eq!(m.mean(), Some(3.0));
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn running_mean_rejects_non_finite() {
        // Regression: `sum += NaN` used to poison the mean permanently.
        let mut m = RunningMean::new();
        assert!(m.push(2.0));
        assert!(!m.push(f64::NAN));
        assert!(!m.push(f64::INFINITY));
        assert!(m.push(4.0));
        assert_eq!(m.mean(), Some(3.0));
        assert_eq!(m.count(), 2);
        assert_eq!(m.rejected(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = TrimmedWindow::new(0);
    }

    #[test]
    fn change_detector_rejects_non_finite_and_keeps_baseline() {
        // Regression: a NaN observation used to become the new baseline,
        // after which `(x - NaN).abs() / d > thres` was false for every
        // future x and the detector never fired again.
        let mut d = ChangeDetector::new(0.2);
        assert!(d.observe(10.0));
        assert!(!d.observe(f64::NAN));
        assert!(!d.observe(f64::INFINITY));
        assert!(!d.observe(f64::NEG_INFINITY));
        // The finite baseline survived: a real 50% change still fires.
        assert_eq!(d.last_emitted(), Some(10.0));
        assert!(d.observe(15.0));
        assert_eq!(d.last_emitted(), Some(15.0));
    }

    #[test]
    fn change_detector_rejects_non_finite_first_value() {
        let mut d = ChangeDetector::new(0.2);
        assert!(!d.observe(f64::NAN));
        assert_eq!(d.last_emitted(), None);
        // The first *finite* value is the one that establishes the level.
        assert!(d.observe(3.0));
    }

    #[test]
    fn trimmed_window_skips_non_finite_samples() {
        let mut w = TrimmedWindow::new(4);
        assert!(w.push(1.0));
        assert!(!w.push(f64::NAN));
        assert!(!w.push(f64::INFINITY));
        assert!(w.push(3.0));
        // Only the finite samples count; the mean stays finite.
        assert_eq!(w.len(), 2);
        assert_eq!(w.trimmed_mean(), Some(2.0));
        assert_eq!(w.rejected(), 2);
    }

    #[test]
    fn trimmed_window_all_rejected_stays_empty() {
        let mut w = TrimmedWindow::new(4);
        assert!(!w.push(f64::NAN));
        assert!(w.is_empty());
        assert_eq!(w.trimmed_mean(), None);
        assert_eq!(w.rejected(), 1);
    }
}
