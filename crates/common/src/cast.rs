//! Checked numeric conversions for the monitoring and routing paths.
//!
//! `as` casts silently wrap (`usize → u32`), truncate (`f64 → u64`), or
//! lose precision (`u64 → f64` beyond 2^53). On tuple-count and weight
//! paths those silent losses corrupt the very statistics the adaptivity
//! loop steers by, so the workspace routes them through these helpers:
//! exact where exactness is provable, explicit about rounding where it
//! is not. `gridq-lint`'s `adapt-cast` rule enforces their use in
//! `crates/adapt`.

use crate::error::{GridError, Result};

/// Largest integer count `f64` represents exactly (2^53). Counts beyond
/// this lose unit precision when widened to a float.
pub const MAX_EXACT_COUNT: u64 = 1 << 53;

/// Widens a tuple/event count to `f64`. Exact for every count the
/// workspace can physically produce; saturates the (astronomical)
/// remainder to `MAX_EXACT_COUNT` rather than silently rounding, so a
/// corrupted counter cannot smuggle impossible precision into a ratio.
pub fn count_to_f64(count: u64) -> f64 {
    count.min(MAX_EXACT_COUNT) as f64
}

/// `usize` counterpart of [`count_to_f64`].
pub fn usize_to_f64(count: usize) -> f64 {
    count_to_f64(count as u64)
}

/// The ratio of two counts as `f64`, with an explicit zero-denominator
/// policy: `0.0` instead of NaN/inf, because every monitoring consumer
/// treats "no data yet" as "no signal", never as a poisoned sample.
pub fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        return 0.0;
    }
    count_to_f64(numerator) / count_to_f64(denominator)
}

/// Narrows an index (partition number, bucket id) to `u32`, failing
/// loudly instead of wrapping: an index that overflows `u32` means the
/// planner produced a degenerate plan, not that routing should alias
/// two partitions.
pub fn index_to_u32(index: usize) -> Result<u32> {
    u32::try_from(index).map_err(|_| GridError::Plan(format!("index {index} exceeds u32 range")))
}

#[cfg(test)]
// Tests compare against stored literals and exactly-representable
// constants, where bit-exact equality is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn counts_widen_exactly() {
        assert_eq!(count_to_f64(0), 0.0);
        assert_eq!(count_to_f64(1_000_000), 1_000_000.0);
        assert_eq!(count_to_f64(MAX_EXACT_COUNT), MAX_EXACT_COUNT as f64);
    }

    #[test]
    fn oversized_counts_saturate() {
        assert_eq!(count_to_f64(u64::MAX), MAX_EXACT_COUNT as f64);
        assert_eq!(count_to_f64(MAX_EXACT_COUNT + 1), MAX_EXACT_COUNT as f64);
    }

    #[test]
    fn ratio_is_finite_by_construction() {
        assert_eq!(ratio(1, 0), 0.0);
        assert_eq!(ratio(0, 0), 0.0);
        assert_eq!(ratio(3, 4), 0.75);
        assert!(ratio(u64::MAX, 3).is_finite());
    }

    #[test]
    fn index_narrowing_fails_loudly() {
        assert_eq!(index_to_u32(7).unwrap(), 7);
        assert!(index_to_u32(u32::MAX as usize).is_ok());
        #[cfg(target_pointer_width = "64")]
        assert!(index_to_u32(u32::MAX as usize + 1).is_err());
    }
}
