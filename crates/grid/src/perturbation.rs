//! Perturbation models: artificial load on Grid nodes.
//!
//! The paper creates machine perturbation in two ways: "(i) programming a
//! computation to iterate over the same function multiple times, and (ii)
//! inserting sleep() calls" — i.e. a multiplicative cost factor and an
//! additive per-tuple delay. The rapid-change experiments of Fig. 5
//! further vary the factor "for each incoming tuple in a normally
//! distributed way, so that the mean value remains stable".

use gridq_common::{DetRng, SimTime};

/// A load model applied to a node's per-tuple operator costs.
#[derive(Debug, Clone, PartialEq)]
pub enum Perturbation {
    /// No artificial load.
    None,
    /// The operator cost is multiplied by `factor` ("k times costlier").
    CostFactor(f64),
    /// A fixed delay is added before each tuple (the `sleep()` method).
    SleepMs(f64),
    /// A per-tuple factor drawn from a normal distribution with the given
    /// mean, clamped to `[lo, hi]` (range endpoints ≈ mean ± 3σ).
    NormalFactor {
        /// Mean multiplicative factor.
        mean: f64,
        /// Lower clamp.
        lo: f64,
        /// Upper clamp.
        hi: f64,
    },
}

impl Perturbation {
    /// Applies the perturbation to a base per-tuple cost, drawing any
    /// randomness from `rng`. A non-finite product (a NaN or infinite
    /// delay/factor slipping past [`Perturbation::validate`]) falls back
    /// to the unperturbed base cost: the sample is rejected rather than
    /// poisoning the event queue's total order.
    pub fn apply(&self, base_ms: f64, rng: &mut DetRng) -> f64 {
        // Reject invalid parameters before touching the rng: a NaN
        // NormalFactor bound would trip the sampler's range assertion.
        if self.validate().is_err() {
            return base_ms;
        }
        let out = match self {
            Perturbation::None => base_ms,
            Perturbation::CostFactor(k) => base_ms * k,
            Perturbation::SleepMs(ms) => base_ms + ms,
            Perturbation::NormalFactor { mean, lo, hi } => {
                base_ms * rng.normal_clamped(*mean, *lo, *hi)
            }
        };
        if out.is_finite() {
            out
        } else {
            base_ms
        }
    }

    /// Rejects non-finite delays and factors with a loud error. Run
    /// entry points validate every installed schedule so a NaN
    /// perturbation delay is refused at construction time instead of
    /// being silently clamped somewhere inside the event queue.
    pub fn validate(&self) -> gridq_common::Result<()> {
        let bad = match self {
            Perturbation::None => None,
            Perturbation::CostFactor(k) if !k.is_finite() => Some(format!("CostFactor({k})")),
            Perturbation::SleepMs(ms) if !ms.is_finite() => Some(format!("SleepMs({ms})")),
            Perturbation::NormalFactor { mean, lo, hi }
                if !(mean.is_finite() && lo.is_finite() && hi.is_finite()) =>
            {
                Some(format!("NormalFactor {{ {mean}, {lo}, {hi} }}"))
            }
            _ => None,
        };
        match bad {
            Some(which) => Err(gridq_common::GridError::Config(format!(
                "non-finite perturbation {which}: delays and factors must be finite"
            ))),
            None => Ok(()),
        }
    }

    /// The expected multiplicative factor (1.0 for additive models).
    pub fn mean_factor(&self) -> f64 {
        match self {
            Perturbation::None | Perturbation::SleepMs(_) => 1.0,
            Perturbation::CostFactor(k) => *k,
            Perturbation::NormalFactor { mean, .. } => *mean,
        }
    }
}

/// A time-indexed sequence of perturbation phases for one node.
///
/// Phases are given as `(start_time, perturbation)` pairs; the active
/// perturbation at time `t` is the last phase whose start does not exceed
/// `t`. Before the first phase the node is unperturbed.
///
/// Phase intervals are **half-open**: phase `i` covers
/// `[from_i, from_{i+1})` and the final phase covers `[from_n, ∞)`. A
/// probe landing exactly on a phase start therefore observes the *new*
/// phase, never the old one. This boundary convention is load-bearing:
/// the simulator evaluates schedules at exact `SimTime` event stamps and
/// the chaos harness schedules perturbation bursts at exact boundaries,
/// so activation at `t == from` must be deterministic rather than
/// dependent on float jitter around the boundary.
#[derive(Debug, Clone, Default)]
pub struct PerturbationSchedule {
    phases: Vec<(SimTime, Perturbation)>,
}

impl PerturbationSchedule {
    /// An empty schedule (never perturbed).
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule applying `p` from time zero for the whole run.
    pub fn constant(p: Perturbation) -> Self {
        PerturbationSchedule {
            phases: vec![(SimTime::ZERO, p)],
        }
    }

    /// Appends a phase starting at `from`. Phases must be appended in
    /// non-decreasing start order; ties are permitted, and among phases
    /// sharing a start time the last appended one wins (its predecessors
    /// cover an empty half-open interval).
    pub fn then_at(mut self, from: SimTime, p: Perturbation) -> Self {
        if let Some((last, _)) = self.phases.last() {
            assert!(
                from >= *last,
                "schedule phases must be in non-decreasing time order"
            );
        }
        self.phases.push((from, p));
        self
    }

    /// The perturbation active at time `t`: the last phase with
    /// `from <= t`, so a phase activates exactly *at* its start time
    /// (half-open intervals — see the type-level docs).
    pub fn active_at(&self, t: SimTime) -> &Perturbation {
        let mut active = &Perturbation::None;
        for (from, p) in &self.phases {
            if *from <= t {
                active = p;
            } else {
                break;
            }
        }
        active
    }

    /// True if no phase ever applies load.
    pub fn is_trivial(&self) -> bool {
        self.phases.iter().all(|(_, p)| *p == Perturbation::None)
    }

    /// Validates every phase (see [`Perturbation::validate`]), naming the
    /// offending phase index in the error.
    pub fn validate(&self) -> gridq_common::Result<()> {
        for (i, (_, p)) in self.phases.iter().enumerate() {
            p.validate()
                .map_err(|e| gridq_common::GridError::Config(format!("schedule phase {i}: {e}")))?;
        }
        Ok(())
    }

    /// Counts phases holding non-finite delays/factors. Such phases are
    /// inert at apply time ([`Perturbation::apply`] rejects the sample),
    /// so this is the reporting side: run entry points surface the count
    /// as a metric, mirroring `detector.rejected_samples`.
    pub fn non_finite_phases(&self) -> u64 {
        self.phases
            .iter()
            .filter(|(_, p)| p.validate().is_err())
            .count() as u64
    }

    /// Drops phases holding non-finite delays/factors (replacing each
    /// with an unperturbed phase so interval boundaries are preserved)
    /// and returns how many were rejected — the count-and-continue path
    /// run entry points use, mirroring `detector.rejected_samples`.
    pub fn sanitize(&mut self) -> u64 {
        let mut rejected = 0;
        for (_, p) in &mut self.phases {
            if p.validate().is_err() {
                *p = Perturbation::None;
                rejected += 1;
            }
        }
        rejected
    }
}

#[cfg(test)]
// Tests compare against stored literals and exactly-representable
// constants, where bit-exact equality is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn apply_models() {
        let mut rng = DetRng::seeded(1);
        assert_eq!(Perturbation::None.apply(2.0, &mut rng), 2.0);
        assert_eq!(Perturbation::CostFactor(10.0).apply(2.0, &mut rng), 20.0);
        assert_eq!(Perturbation::SleepMs(5.0).apply(2.0, &mut rng), 7.0);
    }

    #[test]
    fn normal_factor_mean_is_stable() {
        let p = Perturbation::NormalFactor {
            mean: 30.0,
            lo: 20.0,
            hi: 40.0,
        };
        let mut rng = DetRng::seeded(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.apply(1.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 0.3, "mean {mean}");
        for _ in 0..1000 {
            let v = p.apply(1.0, &mut rng);
            assert!((20.0..=40.0).contains(&v));
        }
    }

    #[test]
    fn schedule_phases_activate_in_order() {
        let s = PerturbationSchedule::none()
            .then_at(SimTime::from_millis(100.0), Perturbation::CostFactor(10.0))
            .then_at(SimTime::from_millis(200.0), Perturbation::None);
        assert_eq!(*s.active_at(SimTime::from_millis(0.0)), Perturbation::None);
        assert_eq!(
            *s.active_at(SimTime::from_millis(150.0)),
            Perturbation::CostFactor(10.0)
        );
        assert_eq!(
            *s.active_at(SimTime::from_millis(250.0)),
            Perturbation::None
        );
    }

    #[test]
    fn constant_schedule() {
        let s = PerturbationSchedule::constant(Perturbation::SleepMs(10.0));
        assert_eq!(
            *s.active_at(SimTime::from_millis(0.0)),
            Perturbation::SleepMs(10.0)
        );
        assert!(!s.is_trivial());
        assert!(PerturbationSchedule::none().is_trivial());
    }

    #[test]
    fn mean_factor() {
        assert_eq!(Perturbation::CostFactor(20.0).mean_factor(), 20.0);
        assert_eq!(Perturbation::SleepMs(10.0).mean_factor(), 1.0);
        assert_eq!(
            Perturbation::NormalFactor {
                mean: 30.0,
                lo: 1.0,
                hi: 60.0
            }
            .mean_factor(),
            30.0
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_phase_panics() {
        let _ = PerturbationSchedule::none()
            .then_at(SimTime::from_millis(100.0), Perturbation::None)
            .then_at(SimTime::from_millis(50.0), Perturbation::None);
    }

    #[test]
    fn phase_boundary_is_half_open() {
        let s = PerturbationSchedule::none()
            .then_at(SimTime::from_millis(100.0), Perturbation::CostFactor(10.0))
            .then_at(SimTime::from_millis(200.0), Perturbation::SleepMs(5.0));
        // Just before a boundary the previous phase still holds...
        assert_eq!(
            *s.active_at(SimTime::from_millis(99.999)),
            Perturbation::None
        );
        // ...and exactly at the boundary the new phase is already active.
        assert_eq!(
            *s.active_at(SimTime::from_millis(100.0)),
            Perturbation::CostFactor(10.0)
        );
        assert_eq!(
            *s.active_at(SimTime::from_millis(199.999)),
            Perturbation::CostFactor(10.0)
        );
        assert_eq!(
            *s.active_at(SimTime::from_millis(200.0)),
            Perturbation::SleepMs(5.0)
        );
    }

    #[test]
    fn coincident_phase_starts_resolve_to_the_last_appended() {
        let s = PerturbationSchedule::none()
            .then_at(SimTime::from_millis(100.0), Perturbation::CostFactor(2.0))
            .then_at(SimTime::from_millis(100.0), Perturbation::CostFactor(3.0));
        assert_eq!(
            *s.active_at(SimTime::from_millis(100.0)),
            Perturbation::CostFactor(3.0)
        );
        assert_eq!(*s.active_at(SimTime::from_millis(99.0)), Perturbation::None);
    }

    /// Property: non-finite perturbation delays are rejected at
    /// validation, and even unvalidated they can never produce a
    /// non-finite cost out of `apply` — the sample falls back to the
    /// base cost instead of reaching the event queue as NaN.
    #[test]
    fn non_finite_delays_are_rejected_and_contained() {
        use gridq_common::check::{Check, Gen};

        Check::new("perturbation_non_finite_delays").cases(200).run(
            |rng| {
                let bad = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
                let v = *rng.pick(&bad);
                let p = match rng.usize_in(0, 3) {
                    0 => Perturbation::SleepMs(v),
                    1 => Perturbation::CostFactor(v),
                    _ => Perturbation::NormalFactor {
                        mean: v,
                        lo: v,
                        hi: v,
                    },
                };
                (p, rng.f64_in(0.0, 50.0))
            },
            |(p, base)| {
                if p.validate().is_ok() {
                    return Err(format!("{p:?} passed validation"));
                }
                let s = PerturbationSchedule::constant(p.clone());
                if s.validate().is_ok() {
                    return Err(format!("schedule holding {p:?} passed validation"));
                }
                let mut rng = DetRng::seeded(7);
                let applied = p.apply(*base, &mut rng);
                if !applied.is_finite() {
                    return Err(format!("{p:?}.apply({base}) -> {applied}"));
                }
                // The rejected sample leaves the cost unperturbed, and the
                // timestamp it feeds stays finite.
                if applied != *base {
                    return Err(format!("{p:?}.apply({base}) -> {applied}, want base"));
                }
                let t = SimTime::from_millis(applied);
                if !t.as_millis().is_finite() {
                    return Err(format!("timestamp {t} not finite"));
                }
                Ok(())
            },
        );
    }

    /// Property check of `active_at` against a naive reference scan, with
    /// probes pinned to exact phase starts so the half-open boundary can
    /// never silently regress to an exclusive one.
    #[test]
    fn active_at_matches_naive_reference_on_random_schedules() {
        use gridq_common::check::{Check, Gen};

        Check::new("perturbation_schedule_active_at")
            .cases(200)
            .run(
                |rng| {
                    let mut starts = rng.vec_of(0, 8, |r| r.f64_in(0.0, 1000.0));
                    starts.sort_by(f64::total_cmp);
                    // Occasionally force a coincident pair to exercise ties.
                    if starts.len() >= 2 && rng.flip() {
                        starts[1] = starts[0];
                    }
                    starts
                        .into_iter()
                        .enumerate()
                        .map(|(i, from)| (from, 2.0 + i as f64))
                        .collect::<Vec<(f64, f64)>>()
                },
                |phases| {
                    let schedule =
                        phases
                            .iter()
                            .fold(PerturbationSchedule::none(), |s, (from, factor)| {
                                s.then_at(
                                    SimTime::from_millis(*from),
                                    Perturbation::CostFactor(*factor),
                                )
                            });
                    // Probe every exact boundary plus points strictly inside
                    // and outside each interval.
                    // Clamp below-zero probes: SimTime::from_millis clamps
                    // negatives to zero, and the reference compares raw f64s.
                    let mut probes = vec![0.0, 1e6];
                    for (from, _) in phases {
                        probes.extend([*from, (from - 0.125).max(0.0), from + 0.125]);
                    }
                    for t in probes {
                        let expected = phases
                            .iter()
                            .rev()
                            .find(|(from, _)| *from <= t)
                            .map_or(Perturbation::None, |(_, factor)| {
                                Perturbation::CostFactor(*factor)
                            });
                        let got = schedule.active_at(SimTime::from_millis(t));
                        if *got != expected {
                            return Err(format!(
                                "at t={t}: schedule says {got:?}, reference says {expected:?}"
                            ));
                        }
                    }
                    Ok(())
                },
            );
    }
}
