//! Perturbation models: artificial load on Grid nodes.
//!
//! The paper creates machine perturbation in two ways: "(i) programming a
//! computation to iterate over the same function multiple times, and (ii)
//! inserting sleep() calls" — i.e. a multiplicative cost factor and an
//! additive per-tuple delay. The rapid-change experiments of Fig. 5
//! further vary the factor "for each incoming tuple in a normally
//! distributed way, so that the mean value remains stable".

use gridq_common::{DetRng, SimTime};

/// A load model applied to a node's per-tuple operator costs.
#[derive(Debug, Clone, PartialEq)]
pub enum Perturbation {
    /// No artificial load.
    None,
    /// The operator cost is multiplied by `factor` ("k times costlier").
    CostFactor(f64),
    /// A fixed delay is added before each tuple (the `sleep()` method).
    SleepMs(f64),
    /// A per-tuple factor drawn from a normal distribution with the given
    /// mean, clamped to `[lo, hi]` (range endpoints ≈ mean ± 3σ).
    NormalFactor {
        /// Mean multiplicative factor.
        mean: f64,
        /// Lower clamp.
        lo: f64,
        /// Upper clamp.
        hi: f64,
    },
}

impl Perturbation {
    /// Applies the perturbation to a base per-tuple cost, drawing any
    /// randomness from `rng`.
    pub fn apply(&self, base_ms: f64, rng: &mut DetRng) -> f64 {
        match self {
            Perturbation::None => base_ms,
            Perturbation::CostFactor(k) => base_ms * k,
            Perturbation::SleepMs(ms) => base_ms + ms,
            Perturbation::NormalFactor { mean, lo, hi } => {
                base_ms * rng.normal_clamped(*mean, *lo, *hi)
            }
        }
    }

    /// The expected multiplicative factor (1.0 for additive models).
    pub fn mean_factor(&self) -> f64 {
        match self {
            Perturbation::None | Perturbation::SleepMs(_) => 1.0,
            Perturbation::CostFactor(k) => *k,
            Perturbation::NormalFactor { mean, .. } => *mean,
        }
    }
}

/// A time-indexed sequence of perturbation phases for one node.
///
/// Phases are given as `(start_time, perturbation)` pairs; the active
/// perturbation at time `t` is the last phase whose start does not exceed
/// `t`. Before the first phase the node is unperturbed.
#[derive(Debug, Clone, Default)]
pub struct PerturbationSchedule {
    phases: Vec<(SimTime, Perturbation)>,
}

impl PerturbationSchedule {
    /// An empty schedule (never perturbed).
    pub fn none() -> Self {
        Self::default()
    }

    /// A schedule applying `p` from time zero for the whole run.
    pub fn constant(p: Perturbation) -> Self {
        PerturbationSchedule {
            phases: vec![(SimTime::ZERO, p)],
        }
    }

    /// Appends a phase starting at `from`. Phases must be appended in
    /// non-decreasing start order.
    pub fn then_at(mut self, from: SimTime, p: Perturbation) -> Self {
        if let Some((last, _)) = self.phases.last() {
            assert!(
                from >= *last,
                "schedule phases must be in non-decreasing time order"
            );
        }
        self.phases.push((from, p));
        self
    }

    /// The perturbation active at time `t`.
    pub fn active_at(&self, t: SimTime) -> &Perturbation {
        let mut active = &Perturbation::None;
        for (from, p) in &self.phases {
            if *from <= t {
                active = p;
            } else {
                break;
            }
        }
        active
    }

    /// True if no phase ever applies load.
    pub fn is_trivial(&self) -> bool {
        self.phases.iter().all(|(_, p)| *p == Perturbation::None)
    }
}

#[cfg(test)]
// Tests compare against stored literals and exactly-representable
// constants, where bit-exact equality is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn apply_models() {
        let mut rng = DetRng::seeded(1);
        assert_eq!(Perturbation::None.apply(2.0, &mut rng), 2.0);
        assert_eq!(Perturbation::CostFactor(10.0).apply(2.0, &mut rng), 20.0);
        assert_eq!(Perturbation::SleepMs(5.0).apply(2.0, &mut rng), 7.0);
    }

    #[test]
    fn normal_factor_mean_is_stable() {
        let p = Perturbation::NormalFactor {
            mean: 30.0,
            lo: 20.0,
            hi: 40.0,
        };
        let mut rng = DetRng::seeded(2);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| p.apply(1.0, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 30.0).abs() < 0.3, "mean {mean}");
        for _ in 0..1000 {
            let v = p.apply(1.0, &mut rng);
            assert!((20.0..=40.0).contains(&v));
        }
    }

    #[test]
    fn schedule_phases_activate_in_order() {
        let s = PerturbationSchedule::none()
            .then_at(SimTime::from_millis(100.0), Perturbation::CostFactor(10.0))
            .then_at(SimTime::from_millis(200.0), Perturbation::None);
        assert_eq!(*s.active_at(SimTime::from_millis(0.0)), Perturbation::None);
        assert_eq!(
            *s.active_at(SimTime::from_millis(150.0)),
            Perturbation::CostFactor(10.0)
        );
        assert_eq!(
            *s.active_at(SimTime::from_millis(250.0)),
            Perturbation::None
        );
    }

    #[test]
    fn constant_schedule() {
        let s = PerturbationSchedule::constant(Perturbation::SleepMs(10.0));
        assert_eq!(
            *s.active_at(SimTime::from_millis(0.0)),
            Perturbation::SleepMs(10.0)
        );
        assert!(!s.is_trivial());
        assert!(PerturbationSchedule::none().is_trivial());
    }

    #[test]
    fn mean_factor() {
        assert_eq!(Perturbation::CostFactor(20.0).mean_factor(), 20.0);
        assert_eq!(Perturbation::SleepMs(10.0).mean_factor(), 1.0);
        assert_eq!(
            Perturbation::NormalFactor {
                mean: 30.0,
                lo: 1.0,
                hi: 60.0
            }
            .mean_factor(),
            30.0
        );
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_phase_panics() {
        let _ = PerturbationSchedule::none()
            .then_at(SimTime::from_millis(100.0), Perturbation::None)
            .then_at(SimTime::from_millis(50.0), Perturbation::None);
    }
}
