//! The complete Grid environment: nodes, network, perturbations, noise.

use std::collections::HashMap;

use gridq_common::{DetRng, GridError, NodeId, Result, SimTime};

use crate::network::NetworkModel;
use crate::node::NodeSpec;
use crate::perturbation::{Perturbation, PerturbationSchedule};
use crate::registry::ResourceRegistry;

/// The environment a query executes in: the registry of nodes, the
/// network between them, each node's perturbation schedule, and a small
/// multiplicative noise term modelling the "slight fluctuations in
/// performance that are inevitable in a real wide-area environment".
#[derive(Debug, Clone)]
pub struct GridEnvironment {
    registry: ResourceRegistry,
    network: NetworkModel,
    perturbations: HashMap<NodeId, PerturbationSchedule>,
    /// Standard deviation of multiplicative cost noise (e.g. `0.03` for
    /// ±3 %); zero disables noise.
    pub cost_noise_sigma: f64,
}

impl GridEnvironment {
    /// Creates an environment over a registry and network, with no
    /// perturbations and mild (2 %) cost noise.
    pub fn new(registry: ResourceRegistry, network: NetworkModel) -> Self {
        GridEnvironment {
            registry,
            network,
            perturbations: HashMap::new(),
            cost_noise_sigma: 0.02,
        }
    }

    /// A convenience environment: one data node (`node0`) plus
    /// `evaluators` compute nodes on a 100 Mbps LAN.
    pub fn demo(evaluators: usize) -> Self {
        let mut registry = ResourceRegistry::new();
        registry
            .register(NodeSpec::data(NodeId::new(0), "datastore"))
            .expect("fresh registry");
        for i in 0..evaluators {
            let id = NodeId::new(i as u32 + 1);
            registry
                .register(NodeSpec::compute(id, format!("eval{i}")))
                .expect("fresh registry");
        }
        GridEnvironment::new(registry, NetworkModel::lan_100mbps())
    }

    /// The resource registry.
    pub fn registry(&self) -> &ResourceRegistry {
        &self.registry
    }

    /// The network model.
    pub fn network(&self) -> &NetworkModel {
        &self.network
    }

    /// Sets a node's perturbation schedule.
    pub fn set_perturbation(&mut self, node: NodeId, schedule: PerturbationSchedule) {
        self.perturbations.insert(node, schedule);
    }

    /// Drops non-finite perturbation phases from every installed
    /// schedule, returning the number rejected. Run entry points call
    /// this before the first event so a NaN delay is counted and
    /// discarded (like `detector.rejected_samples`) instead of reaching
    /// the event queue.
    pub fn sanitize_perturbations(&mut self) -> u64 {
        self.perturbations
            .values_mut()
            .map(PerturbationSchedule::sanitize)
            .sum()
    }

    /// Counts installed perturbation phases whose delays/factors are
    /// non-finite. Those phases never perturb (the sample is rejected at
    /// apply time); runs surface this count as the
    /// `env.rejected_perturbations` metric.
    pub fn rejected_perturbation_phases(&self) -> u64 {
        self.perturbations
            .values()
            .map(PerturbationSchedule::non_finite_phases)
            .sum()
    }

    /// Applies a constant perturbation to a node for the whole run.
    pub fn perturb(&mut self, node: NodeId, p: Perturbation) {
        self.set_perturbation(node, PerturbationSchedule::constant(p));
    }

    /// The perturbation active on `node` at time `t`.
    pub fn perturbation_at(&self, node: NodeId, t: SimTime) -> &Perturbation {
        self.perturbations
            .get(&node)
            .map(|s| s.active_at(t))
            .unwrap_or(&Perturbation::None)
    }

    /// The effective cost, in milliseconds, for work with base cost
    /// `base_ms` executed on `node` at time `t`: base cost divided by the
    /// node's speed, perturbed per the node's schedule, with
    /// multiplicative noise applied.
    pub fn effective_cost_ms(
        &self,
        node: NodeId,
        base_ms: f64,
        t: SimTime,
        rng: &mut DetRng,
    ) -> Result<f64> {
        let spec = self
            .registry
            .get(node)
            .map_err(|_| GridError::Execution(format!("cost query for unknown node {node}")))?;
        let scaled = base_ms / spec.speed;
        let perturbed = self.perturbation_at(node, t).apply(scaled, rng);
        let noisy = if self.cost_noise_sigma > 0.0 {
            perturbed * rng.normal(1.0, self.cost_noise_sigma).max(0.1)
        } else {
            perturbed
        };
        Ok(noisy.max(0.0))
    }

    /// Buffer transmission cost between nodes (see
    /// [`NetworkModel::buffer_cost_ms`]).
    pub fn buffer_cost_ms(&self, from: NodeId, to: NodeId, tuples: usize, bytes: usize) -> f64 {
        self.network.buffer_cost_ms(from, to, tuples, bytes)
    }

    /// Control message cost between nodes.
    pub fn control_cost_ms(&self, from: NodeId, to: NodeId) -> f64 {
        self.network.control_cost_ms(from, to)
    }
}

#[cfg(test)]
// Tests compare against stored literals and exactly-representable
// constants, where bit-exact equality is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn demo_environment_shape() {
        let env = GridEnvironment::demo(2);
        assert_eq!(env.registry().len(), 3);
        assert_eq!(env.registry().data_nodes().len(), 1);
        assert_eq!(env.registry().select_compute_nodes(2).unwrap().len(), 2);
    }

    #[test]
    fn effective_cost_reflects_perturbation() {
        let mut env = GridEnvironment::demo(2);
        env.cost_noise_sigma = 0.0;
        let node = NodeId::new(1);
        let mut rng = DetRng::seeded(3);
        let base = env
            .effective_cost_ms(node, 2.0, SimTime::ZERO, &mut rng)
            .unwrap();
        assert_eq!(base, 2.0);
        env.perturb(node, Perturbation::CostFactor(10.0));
        let perturbed = env
            .effective_cost_ms(node, 2.0, SimTime::ZERO, &mut rng)
            .unwrap();
        assert_eq!(perturbed, 20.0);
        // Other nodes unaffected.
        let other = env
            .effective_cost_ms(NodeId::new(2), 2.0, SimTime::ZERO, &mut rng)
            .unwrap();
        assert_eq!(other, 2.0);
    }

    #[test]
    fn noise_perturbs_mildly() {
        let env = GridEnvironment::demo(1);
        let mut rng = DetRng::seeded(4);
        let n = 10_000;
        let node = NodeId::new(1);
        let mean: f64 = (0..n)
            .map(|_| {
                env.effective_cost_ms(node, 1.0, SimTime::ZERO, &mut rng)
                    .unwrap()
            })
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn unknown_node_cost_errors() {
        let env = GridEnvironment::demo(1);
        let mut rng = DetRng::seeded(5);
        assert!(env
            .effective_cost_ms(NodeId::new(9), 1.0, SimTime::ZERO, &mut rng)
            .is_err());
    }

    #[test]
    fn schedule_switches_over_time() {
        let mut env = GridEnvironment::demo(1);
        env.cost_noise_sigma = 0.0;
        let node = NodeId::new(1);
        env.set_perturbation(
            node,
            PerturbationSchedule::none()
                .then_at(SimTime::from_millis(100.0), Perturbation::SleepMs(10.0)),
        );
        let mut rng = DetRng::seeded(6);
        let before = env
            .effective_cost_ms(node, 1.0, SimTime::from_millis(50.0), &mut rng)
            .unwrap();
        let after = env
            .effective_cost_ms(node, 1.0, SimTime::from_millis(150.0), &mut rng)
            .unwrap();
        assert_eq!(before, 1.0);
        assert_eq!(after, 11.0);
    }
}
