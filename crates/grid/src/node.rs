//! Grid node specifications.

use gridq_common::NodeId;

/// A machine exposed as a Grid resource.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Identifier within the environment.
    pub id: NodeId,
    /// Human-readable name (host name).
    pub name: String,
    /// Relative CPU speed: per-tuple base costs are divided by this, so a
    /// node with `speed = 2.0` processes tuples twice as fast as the
    /// reference node. Must be positive.
    pub speed: f64,
    /// Whether the node hosts data (a Grid Data Service) — the scheduler
    /// prefers placing scans on data nodes and evaluators elsewhere.
    pub hosts_data: bool,
}

impl NodeSpec {
    /// Creates a compute node with reference speed.
    pub fn compute(id: NodeId, name: impl Into<String>) -> Self {
        NodeSpec {
            id,
            name: name.into(),
            speed: 1.0,
            hosts_data: false,
        }
    }

    /// Creates a data-hosting node with reference speed.
    pub fn data(id: NodeId, name: impl Into<String>) -> Self {
        NodeSpec {
            id,
            name: name.into(),
            speed: 1.0,
            hosts_data: true,
        }
    }

    /// Sets the relative speed (builder style).
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(speed > 0.0, "node speed must be positive");
        self.speed = speed;
        self
    }
}

#[cfg(test)]
// Tests compare against stored literals and exactly-representable
// constants, where bit-exact equality is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let n = NodeSpec::compute(NodeId::new(1), "wraith").with_speed(2.0);
        assert_eq!(n.speed, 2.0);
        assert!(!n.hosts_data);
        let d = NodeSpec::data(NodeId::new(0), "store");
        assert!(d.hosts_data);
        assert_eq!(d.speed, 1.0);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_panics() {
        let _ = NodeSpec::compute(NodeId::new(1), "x").with_speed(0.0);
    }
}
