//! The network cost model.
//!
//! The paper's testbed is a 100 Mbps LAN carrying SOAP/HTTP buffers of
//! tuples. The model here charges `latency + serialized_bytes / bandwidth
//! (+ per-tuple SOAP overhead)` per buffer, and zero for same-node
//! transfers (the paper costs communication between co-located subplans
//! at zero).

use gridq_common::NodeId;

/// A uniform latency/bandwidth network between Grid nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in milliseconds.
    pub latency_ms: f64,
    /// Link bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Per-tuple serialization/deserialization overhead in milliseconds
    /// (SOAP encoding is expensive relative to the payload).
    pub per_tuple_overhead_ms: f64,
}

impl NetworkModel {
    /// A 100 Mbps LAN with 0.5 ms latency, approximating the paper's
    /// testbed.
    pub fn lan_100mbps() -> Self {
        NetworkModel {
            latency_ms: 0.5,
            bandwidth_mbps: 100.0,
            per_tuple_overhead_ms: 0.05,
        }
    }

    /// Cost in milliseconds to transmit a buffer of `tuples` tuples
    /// totalling `bytes` payload bytes from `from` to `to`. Same-node
    /// transfers are free.
    pub fn buffer_cost_ms(&self, from: NodeId, to: NodeId, tuples: usize, bytes: usize) -> f64 {
        if from == to {
            return 0.0;
        }
        let transfer_ms = (bytes as f64 * 8.0) / (self.bandwidth_mbps * 1000.0);
        self.latency_ms + transfer_ms + self.per_tuple_overhead_ms * tuples as f64
    }

    /// Cost of a small control message (notifications between adaptivity
    /// components, acknowledgements): latency only, zero when co-located.
    pub fn control_cost_ms(&self, from: NodeId, to: NodeId) -> f64 {
        if from == to {
            0.0
        } else {
            self.latency_ms
        }
    }
}

#[cfg(test)]
// Tests compare against stored literals and exactly-representable
// constants, where bit-exact equality is the intended assertion.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn same_node_is_free() {
        let net = NetworkModel::lan_100mbps();
        let n = NodeId::new(1);
        assert_eq!(net.buffer_cost_ms(n, n, 100, 10_000), 0.0);
        assert_eq!(net.control_cost_ms(n, n), 0.0);
    }

    #[test]
    fn buffer_cost_scales_with_size() {
        let net = NetworkModel {
            latency_ms: 1.0,
            bandwidth_mbps: 100.0,
            per_tuple_overhead_ms: 0.0,
        };
        let a = NodeId::new(0);
        let b = NodeId::new(1);
        // 12,500 bytes = 100,000 bits over 100 Mbps = 1 ms transfer.
        let cost = net.buffer_cost_ms(a, b, 1, 12_500);
        assert!((cost - 2.0).abs() < 1e-9, "cost {cost}");
        let bigger = net.buffer_cost_ms(a, b, 1, 25_000);
        assert!(bigger > cost);
    }

    #[test]
    fn per_tuple_overhead_counts() {
        let net = NetworkModel {
            latency_ms: 0.0,
            bandwidth_mbps: 1e9, // effectively free transfer
            per_tuple_overhead_ms: 0.1,
        };
        let cost = net.buffer_cost_ms(NodeId::new(0), NodeId::new(1), 50, 0);
        assert!((cost - 5.0).abs() < 1e-9);
    }

    #[test]
    fn control_message_is_latency() {
        let net = NetworkModel::lan_100mbps();
        assert_eq!(
            net.control_cost_ms(NodeId::new(0), NodeId::new(1)),
            net.latency_ms
        );
    }
}
