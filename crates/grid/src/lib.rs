#![warn(missing_docs)]

//! The Grid resource substrate.
//!
//! The paper runs on machines "autonomously exposed as Grid resources"
//! whose performance evolves at run time. This crate models those
//! resources: node specifications, a latency/bandwidth network model, the
//! paper's two artificial load-injection methods (cost multiplication and
//! `sleep()` insertion) plus the normally-distributed per-tuple
//! perturbations of Fig. 5, and a resource registry the scheduler
//! consults — the role the GDQS's metadata catalog plays in OGSA-DQP.

pub mod env;
pub mod network;
pub mod node;
pub mod perturbation;
pub mod registry;

pub use env::GridEnvironment;
pub use network::NetworkModel;
pub use node::NodeSpec;
pub use perturbation::{Perturbation, PerturbationSchedule};
pub use registry::ResourceRegistry;
