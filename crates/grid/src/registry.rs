//! The resource registry.
//!
//! "A GDQS contacts resource registries that contain the addresses of the
//! computational and data resources available and updates the metadata
//! catalog of the system." The registry here is that directory: the
//! scheduler queries it for candidate evaluation nodes, ranked by
//! advertised speed (after Gounaris et al., *Resource scheduling for
//! parallel query processing on computational grids*).

use gridq_common::{GridError, NodeId, Result};

use crate::node::NodeSpec;

/// A directory of available Grid resources.
#[derive(Debug, Clone, Default)]
pub struct ResourceRegistry {
    nodes: Vec<NodeSpec>,
}

impl ResourceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node. Fails on duplicate ids.
    pub fn register(&mut self, node: NodeSpec) -> Result<()> {
        if self.nodes.iter().any(|n| n.id == node.id) {
            return Err(GridError::Config(format!(
                "node {} already registered",
                node.id
            )));
        }
        self.nodes.push(node);
        Ok(())
    }

    /// All registered nodes.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// Looks up a node by id.
    pub fn get(&self, id: NodeId) -> Result<&NodeSpec> {
        self.nodes
            .iter()
            .find(|n| n.id == id)
            .ok_or_else(|| GridError::Schedule(format!("unknown node {id}")))
    }

    /// The data-hosting nodes.
    pub fn data_nodes(&self) -> Vec<&NodeSpec> {
        self.nodes.iter().filter(|n| n.hosts_data).collect()
    }

    /// Up to `count` compute nodes, fastest first (ties broken by id so
    /// scheduling is deterministic). Errors if fewer than `count` compute
    /// nodes are available.
    pub fn select_compute_nodes(&self, count: usize) -> Result<Vec<&NodeSpec>> {
        let mut candidates: Vec<&NodeSpec> = self.nodes.iter().filter(|n| !n.hosts_data).collect();
        candidates.sort_by(|a, b| {
            b.speed
                .partial_cmp(&a.speed)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        if candidates.len() < count {
            return Err(GridError::Schedule(format!(
                "need {count} compute nodes, only {} available",
                candidates.len()
            )));
        }
        candidates.truncate(count);
        Ok(candidates)
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ResourceRegistry {
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::data(NodeId::new(0), "store")).unwrap();
        r.register(NodeSpec::compute(NodeId::new(1), "a").with_speed(1.0))
            .unwrap();
        r.register(NodeSpec::compute(NodeId::new(2), "b").with_speed(2.0))
            .unwrap();
        r
    }

    #[test]
    fn duplicate_rejected() {
        let mut r = registry();
        assert!(r
            .register(NodeSpec::compute(NodeId::new(1), "dup"))
            .is_err());
    }

    #[test]
    fn selection_prefers_fast_nodes() {
        let r = registry();
        let picked = r.select_compute_nodes(1).unwrap();
        assert_eq!(picked[0].id, NodeId::new(2));
        let both = r.select_compute_nodes(2).unwrap();
        assert_eq!(both.len(), 2);
        assert!(r.select_compute_nodes(3).is_err());
    }

    #[test]
    fn data_nodes_filtered() {
        let r = registry();
        let data = r.data_nodes();
        assert_eq!(data.len(), 1);
        assert_eq!(data[0].id, NodeId::new(0));
    }

    #[test]
    fn lookup() {
        let r = registry();
        assert!(r.get(NodeId::new(1)).is_ok());
        assert!(r.get(NodeId::new(9)).is_err());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn tie_break_by_id_is_deterministic() {
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::compute(NodeId::new(5), "x")).unwrap();
        r.register(NodeSpec::compute(NodeId::new(3), "y")).unwrap();
        let picked = r.select_compute_nodes(2).unwrap();
        assert_eq!(picked[0].id, NodeId::new(3));
        assert_eq!(picked[1].id, NodeId::new(5));
    }
}
