//! Process-per-node execution: the same socket protocol the in-process
//! workers speak, but with each evaluator running in a *spawned*
//! `gridq-node` process — separate address spaces, real OS process
//! boundaries, results collected back over the wire. Cargo points
//! `CARGO_BIN_EXE_gridq-node` at the freshly built worker binary.

use std::path::PathBuf;
use std::sync::Arc;

use gridq_common::{
    DataType, DistributionVector, Field, NodeId, QueryId, Schema, SubplanId, Tuple, Value,
};
use gridq_engine::distributed::{
    DistributedPlan, ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
};
use gridq_engine::evaluator::{HashJoinFactory, ServiceCallFactory, StreamTag};
use gridq_engine::physical::Catalog;
use gridq_engine::service::{FnService, ServiceRegistry};
use gridq_engine::table::Table;
use gridq_engine::Expr;
use gridq_exec::socket::{
    standard_resolver, ScriptedAdaptation, SocketConfig, SocketExecutor, WireStageSpec,
    WorkerLaunch,
};

fn node_binary() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_gridq-node"))
}

fn int_table(name: &str, n: usize) -> Arc<Table> {
    let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
    let rows = (0..n)
        .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
        .collect();
    Arc::new(Table::new(name, schema, rows).expect("static test table"))
}

fn catalog(tables: &[&Arc<Table>]) -> Catalog {
    let mut c = Catalog::new();
    for t in tables {
        c.register(Arc::clone(t));
    }
    c
}

fn square_service() -> Arc<dyn gridq_engine::service::Service> {
    Arc::new(FnService::new(
        "Square",
        vec![DataType::Int],
        DataType::Int,
        1.0,
        |args| Ok(Value::Int(args[0].as_int().unwrap().pow(2))),
    ))
}

fn call_plan(table: &Arc<Table>, partitions: usize) -> DistributedPlan {
    let factory = ServiceCallFactory::new(
        table.schema(),
        square_service(),
        vec![Expr::col(0)],
        "sq",
        false,
        ServiceRegistry::new(),
    );
    DistributedPlan {
        query: QueryId::new(1),
        sources: vec![SourceSpec {
            table: table.name().to_string(),
            node: NodeId::new(0),
            stream: StreamTag::Single,
            scan_cost_ms: 0.4,
        }],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: (0..partitions).map(|i| NodeId::new(i as u32 + 1)).collect(),
            exchange: ExchangeSpec {
                routing: RoutingPolicy::Weighted {
                    initial: DistributionVector::uniform(partitions),
                },
                buffer_tuples: 10,
            },
        }],
        collect_node: NodeId::new(0),
    }
}

fn join_plan(build: &Arc<Table>, probe: &Arc<Table>) -> DistributedPlan {
    let factory = HashJoinFactory::new(build.schema(), probe.schema(), 0, 0, 0.1, 0.5);
    DistributedPlan {
        query: QueryId::new(2),
        sources: vec![
            SourceSpec {
                table: build.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Build,
                scan_cost_ms: 0.2,
            },
            SourceSpec {
                table: probe.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Probe,
                scan_cost_ms: 1.0,
            },
        ],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: vec![NodeId::new(1), NodeId::new(2)],
            exchange: ExchangeSpec {
                routing: RoutingPolicy::HashBuckets {
                    bucket_count: 16,
                    initial: DistributionVector::uniform(2),
                    keys: StreamKeys {
                        build: Some(0),
                        probe: Some(0),
                        single: None,
                    },
                },
                buffer_tuples: 10,
            },
        }],
        collect_node: NodeId::new(0),
    }
}

fn wire_call_spec(table: &Arc<Table>) -> WireStageSpec {
    WireStageSpec::ServiceCall {
        input_schema: table.schema().clone(),
        service: "Square".into(),
        service_cost_ms: 1.0,
        arg_cols: vec![0],
        output_name: "sq".into(),
        keep_input: false,
    }
}

/// A spawned worker process per partition computes the same squares an
/// in-process run does, and every worker exits cleanly at teardown.
#[test]
fn spawned_worker_processes_compute_the_query() {
    let table = int_table("spawn_t", 200);
    let mut config = SocketConfig::new(wire_call_spec(&table), standard_resolver());
    config.launch = WorkerLaunch::Spawn {
        program: node_binary(),
    };
    config.cost_scale = 0.002;
    let report = SocketExecutor::new(catalog(&[&table]), config)
        .run(&call_plan(&table, 2))
        .unwrap();
    let mut got: Vec<i64> = report
        .results
        .iter()
        .map(|t| t.values()[0].as_int().unwrap())
        .collect();
    got.sort_unstable();
    let want: Vec<i64> = (0..200).map(|i: i64| i * i).collect();
    assert_eq!(got, want);
    assert_eq!(report.reconnects, 0, "healthy run: {report:?}");
}

/// The full retrospective recall — drain barrier, state migration
/// through the coordinator, resume — works across real process
/// boundaries: build-side hash state leaves one OS process and lands in
/// another, and the join result is exactly the expected multiset.
#[test]
fn spawned_workers_survive_a_retrospective_recall() {
    let build = int_table("spawn_build", 100);
    let probe = int_table("spawn_probe", 600);
    let stage = WireStageSpec::HashJoin {
        build_schema: build.schema().clone(),
        probe_schema: probe.schema().clone(),
        build_key: 0,
        probe_key: 0,
        build_cost_ms: 0.1,
        probe_cost_ms: 0.5,
    };
    let mut config = SocketConfig::new(stage, standard_resolver());
    config.launch = WorkerLaunch::Spawn {
        program: node_binary(),
    };
    config.cost_scale = 0.05;
    config.checkpoint_interval = 8;
    config.adaptations = vec![ScriptedAdaptation {
        after_routed: 150,
        weights: vec![0.25, 0.75],
        retrospective: true,
    }];
    let report = SocketExecutor::new(catalog(&[&build, &probe]), config)
        .run(&join_plan(&build, &probe))
        .unwrap();
    // Every probe row 0..100 matches its build row exactly once.
    assert_eq!(report.results.len(), 100, "{report:?}");
    assert_eq!(
        report.recalls_completed, 1,
        "the scripted recall must complete: {report:?}"
    );
    assert!(
        report.state_tuples_migrated >= 1,
        "recall at these weights moves build state: {report:?}"
    );
    for audit in &report.log_audits {
        assert!(audit.conserved(), "log audit must balance: {audit:?}");
    }
}
