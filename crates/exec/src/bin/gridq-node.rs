//! `gridq-node`: a standalone evaluator worker for the socket substrate.
//!
//! The coordinator ([`gridq_exec::socket::SocketExecutor`]) spawns one
//! of these per stage partition when configured with
//! `WorkerLaunch::Spawn`, passing the listener address and the worker's
//! partition index on the command line. Everything else — the operator
//! to run, cost model parameters, perturbations, chaos stalls — arrives
//! over the connection in the `CONFIG` frame, so this binary is nothing
//! but argument parsing around [`gridq_exec::socket::worker_main`].
//!
//! Usage: `gridq-node --addr <tcp:host:port|unix:/path> --index <n>`

use std::process::ExitCode;

use gridq_exec::socket::{parse_addr, standard_resolver, worker_main};

fn usage() -> ExitCode {
    eprintln!("usage: gridq-node --addr <tcp:host:port|unix:/path> --index <worker>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut addr = None;
    let mut index = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => addr = args.next(),
            "--index" => index = args.next(),
            other => {
                eprintln!("gridq-node: unknown flag `{other}`");
                return usage();
            }
        }
    }
    let (Some(addr), Some(index)) = (addr, index) else {
        return usage();
    };
    let addr = match parse_addr(&addr) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("gridq-node: {e}");
            return usage();
        }
    };
    let index: usize = match index.parse() {
        Ok(i) => i,
        Err(_) => {
            eprintln!("gridq-node: --index must be an unsigned integer");
            return usage();
        }
    };
    match worker_main(&addr, index, &standard_resolver()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gridq-node[{index}]: {e}");
            ExitCode::FAILURE
        }
    }
}
