//! Failure detection and delivery-retry policy for the threaded executor.
//!
//! The simulator realises node failure as a virtual-time `NodeFail`
//! event; real threads need an actual detector. [`HeartbeatMonitor`] is
//! lease-based: every consumer pushes a beat through the monitoring
//! channel on each receive-loop iteration, the adaptivity thread renews
//! the worker's lease on arrival and checks all leases between events,
//! and a worker whose lease expires without a clean `Done` is declared
//! dead — which triggers the failover recall in `lib.rs` (drain the
//! survivors, redistribute away from the dead partition, replay its
//! recovery-log entries, resume under a bumped epoch).
//!
//! [`RetryBackoff`] is the delivery-retry schedule used by producers
//! waiting on window acknowledgements: seeded, jittered exponential
//! backoff. The jitter comes from [`DetRng`], so a given
//! `(policy seed, source index)` pair always yields the same schedule —
//! chaos runs stay reproducible down to retransmission timing.
//!
//! Wall-clock use is confined to this module's [`HeartbeatMonitor`]
//! (leases are real-time by nature); the simulator keeps its failure
//! model in virtual time.

use std::time::{Duration, Instant};

use gridq_common::{DetRng, GridError, Result};

/// Delivery-retry policy for unacknowledged recovery-log windows.
///
/// Active whenever the executor runs in resilient mode (a chaos hook is
/// installed or failover is enabled): after flushing its final windows a
/// producer waits out a backoff delay, retransmits any window whose ack
/// has not arrived, and repeats up to `max_retries` times before
/// recording an explicit delivery gap and completing anyway.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Base backoff delay before the first retransmission check, in
    /// wall-clock milliseconds. This is protocol pacing, not modelled
    /// query cost, so it is *not* scaled by `cost_scale`.
    pub base_ms: f64,
    /// Retransmission rounds per destination before giving up and
    /// recording a [`DeliveryGap`](crate::DeliveryGap).
    pub max_retries: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_ms: 25.0,
            max_retries: 6,
            seed: 0x6661_696c_6f76_6572, // "failover"
        }
    }
}

impl RetryPolicy {
    /// Validates the policy.
    pub fn validate(&self) -> Result<()> {
        if !self.base_ms.is_finite() || self.base_ms <= 0.0 {
            return Err(GridError::Config(format!(
                "retry base_ms must be positive and finite, got {}",
                self.base_ms
            )));
        }
        if self.max_retries == 0 {
            return Err(GridError::Config(
                "max_retries must be at least 1; use an all-drop chaos plan, \
                 not a zero retry budget, to model a dead link"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Heartbeat/lease parameters for consumer failure detection.
#[derive(Debug, Clone)]
pub struct FailoverConfig {
    /// Enables the heartbeat layer and the failover recall. Requires R1
    /// (retrospective) adaptivity: failover rides the recall machinery.
    pub enabled: bool,
    /// How often an idle consumer beats, in wall-clock milliseconds
    /// (busy consumers beat once per message, which is faster). Also the
    /// adaptivity thread's lease-check granularity.
    pub heartbeat_ms: u64,
    /// Lease duration: a worker whose last beat is older than this is
    /// declared dead. Must comfortably exceed `heartbeat_ms` plus the
    /// worst-case per-message processing time.
    pub lease_ms: u64,
}

impl Default for FailoverConfig {
    fn default() -> Self {
        FailoverConfig {
            enabled: false,
            heartbeat_ms: 25,
            lease_ms: 400,
        }
    }
}

impl FailoverConfig {
    /// Validates the parameters (only when enabled).
    pub fn validate(&self) -> Result<()> {
        if !self.enabled {
            return Ok(());
        }
        if self.heartbeat_ms == 0 {
            return Err(GridError::Config("heartbeat_ms must be positive".into()));
        }
        if self.lease_ms < self.heartbeat_ms.saturating_mul(2) {
            return Err(GridError::Config(format!(
                "lease_ms ({}) must be at least twice heartbeat_ms ({}); a \
                 tighter lease declares healthy workers dead on scheduling \
                 noise",
                self.lease_ms, self.heartbeat_ms
            )));
        }
        Ok(())
    }
}

// The gap record itself lives in `gridq-recovery` so both substrates
// report the same type; re-exported here for the producer retry loop.
pub use gridq_recovery::DeliveryGap;

/// Deterministic jittered exponential backoff.
///
/// Attempt `k` (0-based) waits `base_ms * 2^min(k, 10)`, jittered
/// uniformly into `[0.5, 1.0)` of that nominal value. The jitter stream
/// is forked from the policy seed by stream index, so concurrent
/// producers decorrelate without sharing state.
#[derive(Debug)]
pub(crate) struct RetryBackoff {
    rng: DetRng,
    base_ms: f64,
}

impl RetryBackoff {
    pub(crate) fn new(policy: &RetryPolicy, stream: u64) -> Self {
        let mut root = DetRng::seeded(policy.seed);
        RetryBackoff {
            rng: root.fork(stream),
            base_ms: policy.base_ms,
        }
    }

    /// The delay in milliseconds before retry `attempt`.
    pub(crate) fn delay_ms(&mut self, attempt: u32) -> f64 {
        let nominal = self.base_ms * f64::from(1u32 << attempt.min(10));
        nominal * (0.5 + 0.5 * self.rng.uniform())
    }
}

/// Lease bookkeeping for consumer liveness, driven by the adaptivity
/// thread. `Instant`-based by design (see the module docs); this file is
/// on the `gridq-lint` wall-clock allowlist for exactly this type.
#[derive(Debug)]
pub(crate) struct HeartbeatMonitor {
    lease: Duration,
    last_beat: Vec<Instant>,
    done: Vec<bool>,
    dead: Vec<bool>,
}

impl HeartbeatMonitor {
    pub(crate) fn new(workers: usize, lease_ms: u64) -> Self {
        let now = Instant::now();
        HeartbeatMonitor {
            lease: Duration::from_millis(lease_ms),
            last_beat: vec![now; workers],
            done: vec![false; workers],
            dead: vec![false; workers],
        }
    }

    /// Renews `worker`'s lease.
    pub(crate) fn beat(&mut self, worker: usize) {
        if let Some(at) = self.last_beat.get_mut(worker) {
            *at = Instant::now();
        }
    }

    /// Marks `worker` as cleanly finished: its lease no longer applies.
    pub(crate) fn mark_done(&mut self, worker: usize) {
        if let Some(d) = self.done.get_mut(worker) {
            *d = true;
        }
    }

    /// Returns the first worker whose lease has expired, marking it dead
    /// so it is reported exactly once. Workers that finished cleanly or
    /// were already declared dead are skipped.
    pub(crate) fn expired(&mut self) -> Option<usize> {
        let now = Instant::now();
        for w in 0..self.last_beat.len() {
            if self.done[w] || self.dead[w] {
                continue;
            }
            if now.duration_since(self.last_beat[w]) > self.lease {
                self.dead[w] = true;
                return Some(w);
            }
        }
        None
    }

    pub(crate) fn is_dead(&self, worker: usize) -> bool {
        self.dead.get(worker).copied().unwrap_or(false)
    }

    pub(crate) fn is_done(&self, worker: usize) -> bool {
        self.done.get(worker).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::check::Check;

    #[test]
    fn backoff_schedule_is_deterministic_per_seed_and_stream() {
        // Property: for any (base, seed), rebuilding the backoff from the
        // same policy and stream reproduces the schedule bit-for-bit, and
        // every delay stays inside the jittered exponential envelope.
        // Under a fixed GRIDQ_CHECK_SEED the generated policies — and
        // therefore the asserted schedules — are identical across runs.
        Check::new("backoff_schedule_is_deterministic")
            .cases(32)
            .run(
                |rng| (1.0 + rng.uniform() * 50.0, rng.next_u64()),
                |&(base_ms, seed)| {
                    let policy = RetryPolicy {
                        base_ms,
                        max_retries: 6,
                        seed,
                    };
                    let schedule = |stream: u64| -> Vec<f64> {
                        let mut b = RetryBackoff::new(&policy, stream);
                        (0..6).map(|k| b.delay_ms(k)).collect()
                    };
                    if schedule(0) != schedule(0) || schedule(3) != schedule(3) {
                        return Err("same (seed, stream) diverged".into());
                    }
                    if schedule(0) == schedule(1) {
                        return Err("distinct streams share a jitter fork".into());
                    }
                    for (k, d) in schedule(2).into_iter().enumerate() {
                        let nominal = base_ms * f64::from(1u32 << k.min(10));
                        if !(d >= nominal * 0.5 && d < nominal) {
                            return Err(format!("attempt {k} delay {d} escapes envelope"));
                        }
                    }
                    Ok(())
                },
            );
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            base_ms: 10.0,
            max_retries: 20,
            seed: 7,
        };
        let mut b = RetryBackoff::new(&policy, 0);
        let d0 = b.delay_ms(0);
        let d5 = b.delay_ms(5);
        assert!(d5 > d0 * 8.0, "5 doublings outrun worst-case jitter");
        // Exponent caps at 2^10: attempt 10 and attempt 40 share a nominal.
        let d10 = b.delay_ms(10);
        let d40 = b.delay_ms(40);
        let nominal = 10.0 * 1024.0;
        assert!(d10 >= nominal * 0.5 && d10 < nominal);
        assert!(d40 >= nominal * 0.5 && d40 < nominal);
    }

    #[test]
    fn monitor_declares_each_silent_worker_dead_once() {
        let mut m = HeartbeatMonitor::new(3, 0);
        m.mark_done(2);
        std::thread::sleep(Duration::from_millis(2));
        let first = m.expired().expect("a silent worker expires");
        let second = m.expired().expect("the other silent worker expires");
        assert_ne!(first, second);
        assert!(m.is_dead(first) && m.is_dead(second));
        assert!(!m.is_dead(2), "done workers never expire");
        assert_eq!(m.expired(), None, "each death reported exactly once");
    }

    #[test]
    fn monitor_beat_renews_the_lease() {
        let mut m = HeartbeatMonitor::new(1, 60_000);
        m.beat(0);
        assert_eq!(m.expired(), None);
        assert!(!m.is_dead(0));
    }

    #[test]
    fn configs_validate_their_bounds() {
        assert!(RetryPolicy::default().validate().is_ok());
        assert!(FailoverConfig::default().validate().is_ok());
        let bad = RetryPolicy {
            base_ms: 0.0,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().is_err());
        let bad = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        assert!(bad.validate().is_err());
        let tight = FailoverConfig {
            enabled: true,
            heartbeat_ms: 50,
            lease_ms: 60,
        };
        assert!(tight.validate().is_err());
        let disabled = FailoverConfig {
            enabled: false,
            heartbeat_ms: 0,
            lease_ms: 0,
        };
        assert!(disabled.validate().is_ok(), "disabled skips validation");
    }
}
