//! The long-lived query service plane.
//!
//! The paper's AGQES nodes are Grid *services* (OGSA-DQP heritage): they
//! outlive any single query. This module turns the one-shot executors
//! into such a service. A [`QueryService`] admits N concurrent queries
//! through the engine's [`AdmissionController`] (bounded run queue, loud
//! rejection), multiplexes them over shared evaluator nodes on either
//! the threaded or the socket substrate, and hosts the *cross-query*
//! adaptivity loop: a shared [`ContentionLedger`] models the cost
//! inflation co-resident tenants induce on a node, and a shared
//! [`CrossQueryDiagnoser`] turns one query's M1 cost shifts on shared
//! nodes into tenant rebalances deployed through that query's existing
//! adaptation path.
//!
//! Every admitted query gets a fresh [`QueryId`] epoch from the
//! controller; the plan shipped to the substrate is re-tagged with it,
//! so recovery-log windows, detector streams, and obs-timeline events
//! of one query can never be confused with another's.
//!
//! Isolation model per substrate:
//! - **threaded**: queries share the process; the ledger injects the
//!   modelled contention factor into co-resident consumers' cost model,
//!   and tenant rebalances are diagnosed live.
//! - **socket**: each query spawns its own worker processes; contention
//!   between them is real OS scheduling, not modelled, and adaptations
//!   remain scripted (the decision stack is exercised on the other
//!   substrates). Admission, epoch tagging, and per-query isolation
//!   still apply.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use gridq_adapt::tenancy::{CrossQueryDiagnoser, TenancyConfig, TenantCostUpdate, TenantRebalance};
use gridq_common::sync::Mutex;
use gridq_common::{cast, DistributionVector, NodeId, QueryId, Result, SimTime, Tuple};
use gridq_engine::distributed::{DistributedPlan, RoutingPolicy};
use gridq_engine::physical::Catalog;
use gridq_engine::service::{
    AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats,
};

use crate::socket::{SocketConfig, SocketExecutor, SocketReport};
use crate::{ThreadedConfig, ThreadedExecutor, ThreadedReport};

/// Shared per-node tenant counts. The threaded substrate multiplies
/// every consumer's modelled per-tuple cost by
/// `1 + alpha * (tenants_on_node - 1)`, so co-residency *shows up in the
/// M1 stream* exactly like a slow Grid node would — which is what lets
/// the unchanged detector/diagnoser machinery observe it.
#[derive(Debug)]
pub struct ContentionLedger {
    alpha: f64,
    nodes: Mutex<HashMap<NodeId, Arc<AtomicU32>>>,
}

impl ContentionLedger {
    /// Creates a ledger with the given cost-inflation slope per extra
    /// co-resident tenant.
    pub fn new(alpha: f64) -> Self {
        ContentionLedger {
            alpha: if alpha.is_finite() {
                alpha.max(0.0)
            } else {
                0.0
            },
            nodes: Mutex::new(HashMap::new()),
        }
    }

    /// The configured inflation slope.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Registers one query's arrival on `nodes` (each distinct node is
    /// counted once regardless of how many partitions it hosts).
    pub fn enter(&self, nodes: &[NodeId]) {
        let mut map = self.nodes.lock();
        let mut seen: Vec<NodeId> = Vec::new();
        for &node in nodes {
            if seen.contains(&node) {
                continue;
            }
            seen.push(node);
            map.entry(node)
                .or_insert_with(|| Arc::new(AtomicU32::new(0)))
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Registers one query's departure from `nodes`. Entries that drop
    /// to zero tenants are evicted so the map stays bounded by the set
    /// of currently occupied nodes.
    pub fn exit(&self, nodes: &[NodeId]) {
        let mut map = self.nodes.lock();
        let mut seen: Vec<NodeId> = Vec::new();
        for &node in nodes {
            if seen.contains(&node) {
                continue;
            }
            seen.push(node);
            if let Some(ctr) = map.get(&node) {
                let prev = ctr.load(Ordering::Relaxed);
                if prev > 0 {
                    ctr.store(prev - 1, Ordering::Relaxed);
                }
                if prev <= 1 {
                    // Late readers holding the Arc see 0; the map entry
                    // itself is evicted so the ledger stays bounded by
                    // the occupied-node set.
                    map.remove(&node);
                }
            }
        }
    }

    /// Live tenant count on a node.
    pub fn tenants(&self, node: NodeId) -> u32 {
        self.nodes
            .lock()
            .get(&node)
            .map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// The shared counter for a node; consumer threads clone this once
    /// and read it lock-free per tuple.
    pub fn counter(&self, node: NodeId) -> Arc<AtomicU32> {
        Arc::clone(
            self.nodes
                .lock()
                .entry(node)
                .or_insert_with(|| Arc::new(AtomicU32::new(0))),
        )
    }

    /// The modelled cost factor currently in force on a node.
    pub fn factor(&self, node: NodeId) -> f64 {
        let tenants = self.tenants(node);
        1.0 + self.alpha * cast::count_to_f64(u64::from(tenants.saturating_sub(1)))
    }
}

/// The per-query handle the service injects into [`ThreadedConfig`]:
/// the shared ledger plus the shared cross-query diagnoser, and this
/// query's partition→node placement so the adaptivity thread can
/// attribute cost updates to nodes.
#[derive(Clone)]
pub struct TenancyHandle {
    nodes: Vec<NodeId>,
    ledger: Arc<ContentionLedger>,
    diagnoser: Arc<Mutex<CrossQueryDiagnoser>>,
}

impl std::fmt::Debug for TenancyHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenancyHandle")
            .field("nodes", &self.nodes)
            .finish_non_exhaustive()
    }
}

impl TenancyHandle {
    /// Builds a handle for a query whose stage partitions live on
    /// `nodes` (index = partition index).
    pub fn new(
        nodes: Vec<NodeId>,
        ledger: Arc<ContentionLedger>,
        diagnoser: Arc<Mutex<CrossQueryDiagnoser>>,
    ) -> Self {
        TenancyHandle {
            nodes,
            ledger,
            diagnoser,
        }
    }

    /// The shared ledger.
    pub fn ledger(&self) -> &Arc<ContentionLedger> {
        &self.ledger
    }

    /// The node hosting partition `index`, if known.
    pub fn node_for(&self, index: u32) -> Option<NodeId> {
        self.nodes.get(index as usize).copied()
    }

    /// Forwards one smoothed M1 cost to the shared cross-query
    /// diagnoser; returns a tenant rebalance when contention induced by
    /// a co-resident query is diagnosed.
    pub fn observe_cost(
        &self,
        query: QueryId,
        partition: gridq_common::PartitionId,
        avg_cost_ms: f64,
        at: SimTime,
    ) -> Option<TenantRebalance> {
        let node = self.node_for(partition.index)?;
        self.diagnoser.lock().on_cost_update(&TenantCostUpdate {
            query,
            partition,
            node,
            avg_cost_ms,
            at,
        })
    }

    /// Records that a tenant rebalance was deployed for `query`.
    pub fn deployed(&self, query: QueryId, dist: DistributionVector) {
        self.diagnoser.lock().set_distribution(query, dist);
    }
}

/// Service-plane configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Admission bounds (run slots and queue depth).
    pub admission: AdmissionConfig,
    /// Cross-query diagnosis thresholds.
    pub tenancy: TenancyConfig,
    /// Modelled per-tuple cost inflation per extra co-resident tenant on
    /// a shared node (threaded substrate only). `1.0` means a second
    /// tenant doubles the modelled cost — strong enough that the
    /// detector's `thres_m` gate sees it within one window.
    pub contention_alpha: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            admission: AdmissionConfig::default(),
            tenancy: TenancyConfig::default(),
            contention_alpha: 1.0,
        }
    }
}

/// Which substrate runs a submitted query, with its full configuration.
/// Both variants box their config so the enum stays pointer-sized on the
/// submission path.
pub enum QueryRun {
    /// In-process threads; live adaptivity and modelled contention.
    Threaded(Box<ThreadedConfig>),
    /// Process-per-node over sockets; scripted adaptations.
    Socket(Box<SocketConfig>),
}

impl QueryRun {
    /// Builds the threaded variant.
    pub fn threaded(config: ThreadedConfig) -> Self {
        QueryRun::Threaded(Box::new(config))
    }
}

/// One query handed to the service.
pub struct QuerySubmission {
    /// The catalog the substrate scans.
    pub catalog: Catalog,
    /// The plan. Its `query` id is *overwritten* with the admission
    /// epoch the controller allocates.
    pub plan: DistributedPlan,
    /// Substrate choice and configuration.
    pub run: QueryRun,
}

/// What became of one submission.
#[derive(Debug, Clone)]
pub enum QueryOutcome {
    /// Ran to completion on the threaded substrate.
    Threaded(ThreadedReport),
    /// Ran to completion on the socket substrate.
    Socket(SocketReport),
    /// Refused at admission: run slots and queue were full. Loud by
    /// construction — the reason is returned to the submitter and
    /// counted in [`AdmissionStats::rejected`].
    Rejected {
        /// The controller's saturation report.
        reason: String,
    },
    /// Admitted but failed during execution.
    Failed {
        /// The execution error.
        error: String,
    },
}

impl QueryOutcome {
    /// Result tuples, when the query completed.
    pub fn results(&self) -> Option<&[Tuple]> {
        match self {
            QueryOutcome::Threaded(r) => Some(&r.results),
            QueryOutcome::Socket(r) => Some(&r.results),
            _ => None,
        }
    }

    /// True when the query ran to completion.
    pub fn completed(&self) -> bool {
        matches!(self, QueryOutcome::Threaded(_) | QueryOutcome::Socket(_))
    }
}

/// What a batch of submissions produced, in submission order.
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-submission outcome, tagged with the allocated query epoch.
    pub queries: Vec<(QueryId, QueryOutcome)>,
    /// Admission statistics over the batch.
    pub admission: AdmissionStats,
    /// Cross-query tenant rebalances deployed (summed over threaded
    /// reports).
    pub tenant_rebalances: u64,
}

struct ServiceState {
    controller: AdmissionController,
    /// Promotion tickets for queued queries: completing a running query
    /// signals the longest-waiting ticket (FIFO, driven by the
    /// controller's queue order).
    tickets: HashMap<QueryId, mpsc::Sender<()>>,
}

/// A long-lived query service: admission control plus bounded concurrent
/// execution over shared evaluator nodes. Thread-safe; submitting
/// sessions call [`QueryService::submit_and_wait`] from their own
/// threads (the run queue physically *is* those blocked threads).
pub struct QueryService {
    state: Mutex<ServiceState>,
    ledger: Arc<ContentionLedger>,
    diagnoser: Arc<Mutex<CrossQueryDiagnoser>>,
}

impl QueryService {
    /// Creates a service with the given bounds and tenancy model.
    pub fn new(config: ServiceConfig) -> Result<Self> {
        Ok(QueryService {
            state: Mutex::new(ServiceState {
                controller: AdmissionController::new(config.admission)?,
                tickets: HashMap::new(),
            }),
            ledger: Arc::new(ContentionLedger::new(config.contention_alpha)),
            diagnoser: Arc::new(Mutex::new(CrossQueryDiagnoser::new(config.tenancy))),
        })
    }

    /// The shared contention ledger (for inspection in tests/benches).
    pub fn ledger(&self) -> &Arc<ContentionLedger> {
        &self.ledger
    }

    /// Admission statistics so far.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.state.lock().controller.stats().clone()
    }

    /// Submits one query and blocks until it completes (or is rejected).
    /// The closed-loop load driver calls this from each session thread.
    pub fn submit_and_wait(&self, submission: QuerySubmission) -> (QueryId, QueryOutcome) {
        let (id, ticket) = {
            let mut st = self.state.lock();
            match st.controller.submit() {
                AdmissionDecision::Admitted(id) => (id, None),
                AdmissionDecision::Enqueued { id, .. } => {
                    let (tx, rx) = mpsc::channel();
                    st.tickets.insert(id, tx);
                    (id, Some(rx))
                }
                AdmissionDecision::Rejected { id, reason } => {
                    return (id, QueryOutcome::Rejected { reason })
                }
            }
        };
        if let Some(rx) = ticket {
            // Block until a completing query promotes us. A closed
            // channel means the promotion already happened (or the
            // service is tearing down); either way we hold a run slot
            // per the controller's accounting, so proceed.
            let _ = rx.recv();
        }
        let outcome = self.execute(id, submission);
        self.complete(id);
        (id, outcome)
    }

    /// Runs a batch of submissions concurrently, admission decided in
    /// vector order. Returns outcomes in the same order.
    pub fn run_batch(&self, submissions: Vec<QuerySubmission>) -> ServiceReport {
        let n = submissions.len();
        let mut slots: Vec<Option<(QueryId, QueryOutcome)>> = Vec::new();
        slots.resize_with(n, || None);
        thread::scope(|s| {
            let mut handles = Vec::new();
            for (i, sub) in submissions.into_iter().enumerate() {
                handles.push(s.spawn(move || (i, self.submit_and_wait(sub))));
            }
            for h in handles {
                if let Ok((i, out)) = h.join() {
                    slots[i] = Some(out);
                }
            }
        });
        let queries: Vec<(QueryId, QueryOutcome)> = slots
            .into_iter()
            .map(|s| {
                s.unwrap_or((
                    QueryId::new(0),
                    QueryOutcome::Failed {
                        error: "submission thread panicked".into(),
                    },
                ))
            })
            .collect();
        let tenant_rebalances = queries
            .iter()
            .map(|(_, o)| match o {
                QueryOutcome::Threaded(r) => r.tenant_rebalances,
                _ => 0,
            })
            .sum();
        ServiceReport {
            admission: self.admission_stats(),
            tenant_rebalances,
            queries,
        }
    }

    fn complete(&self, id: QueryId) {
        let promoted = {
            let mut st = self.state.lock();
            match st.controller.complete(id) {
                Ok(next) => next.and_then(|n| st.tickets.remove(&n)),
                Err(_) => None,
            }
        };
        if let Some(tx) = promoted {
            // A dead receiver means the waiter is gone; the slot frees
            // again when its thread unwinds — nothing to do.
            let _ = tx.send(());
        }
    }

    fn execute(&self, id: QueryId, submission: QuerySubmission) -> QueryOutcome {
        let mut plan = submission.plan;
        // Epoch tagging: everything downstream — recovery-log windows,
        // detector streams, timeline events — carries this id.
        plan.query = id;
        match submission.run {
            QueryRun::Threaded(config) => {
                let mut config = *config;
                let placement = stage_placement(&plan);
                if let Some((nodes, initial)) = &placement {
                    self.diagnoser
                        .lock()
                        .register_query(id, nodes.clone(), initial.clone());
                    self.ledger.enter(nodes);
                    config.tenancy = Some(TenancyHandle::new(
                        nodes.clone(),
                        Arc::clone(&self.ledger),
                        Arc::clone(&self.diagnoser),
                    ));
                }
                let out = ThreadedExecutor::new(submission.catalog, config).run(&plan);
                if let Some((nodes, _)) = &placement {
                    self.ledger.exit(nodes);
                    self.diagnoser.lock().deregister_query(id);
                }
                match out {
                    Ok(report) => QueryOutcome::Threaded(report),
                    Err(e) => QueryOutcome::Failed {
                        error: e.to_string(),
                    },
                }
            }
            QueryRun::Socket(config) => {
                match SocketExecutor::new(submission.catalog, *config).run(&plan) {
                    Ok(report) => QueryOutcome::Socket(report),
                    Err(e) => QueryOutcome::Failed {
                        error: e.to_string(),
                    },
                }
            }
        }
    }
}

/// The first stage's partition→node placement and initially deployed
/// distribution — what the cross-query diagnoser needs to know about a
/// tenant.
fn stage_placement(plan: &DistributedPlan) -> Option<(Vec<NodeId>, DistributionVector)> {
    let stage = plan.stages.first()?;
    let initial = match &stage.exchange.routing {
        RoutingPolicy::Weighted { initial } => initial.clone(),
        RoutingPolicy::HashBuckets { initial, .. } => initial.clone(),
    };
    Some((stage.nodes.clone(), initial))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_counts_tenants_and_inflates_cost() {
        let ledger = ContentionLedger::new(1.0);
        let shared = [NodeId::new(1), NodeId::new(2)];
        assert!((ledger.factor(NodeId::new(1)) - 1.0).abs() < 1e-12);
        ledger.enter(&shared);
        assert_eq!(ledger.tenants(NodeId::new(1)), 1);
        // One tenant: no inflation.
        assert!((ledger.factor(NodeId::new(1)) - 1.0).abs() < 1e-12);
        ledger.enter(&[NodeId::new(1)]);
        assert_eq!(ledger.tenants(NodeId::new(1)), 2);
        // Two tenants, alpha 1.0: doubled.
        assert!((ledger.factor(NodeId::new(1)) - 2.0).abs() < 1e-12);
        ledger.exit(&[NodeId::new(1)]);
        ledger.exit(&shared);
        assert_eq!(ledger.tenants(NodeId::new(1)), 0);
        assert_eq!(ledger.tenants(NodeId::new(2)), 0);
    }

    #[test]
    fn ledger_counts_a_query_once_per_node() {
        let ledger = ContentionLedger::new(0.5);
        // Two partitions co-hosted on one node still count as one tenant.
        ledger.enter(&[NodeId::new(3), NodeId::new(3)]);
        assert_eq!(ledger.tenants(NodeId::new(3)), 1);
        ledger.exit(&[NodeId::new(3), NodeId::new(3)]);
        assert_eq!(ledger.tenants(NodeId::new(3)), 0);
    }

    #[test]
    fn counter_is_shared_with_live_entries() {
        let ledger = ContentionLedger::new(1.0);
        let ctr = ledger.counter(NodeId::new(7));
        ledger.enter(&[NodeId::new(7)]);
        assert_eq!(ctr.load(Ordering::Relaxed), 1);
        ledger.enter(&[NodeId::new(7)]);
        assert_eq!(ctr.load(Ordering::Relaxed), 2);
    }
}
