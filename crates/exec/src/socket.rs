//! The third execution substrate: process-per-node execution over real
//! sockets.
//!
//! The simulator proves the adaptivity architecture in virtual time and
//! the threaded executor proves it against the wall clock inside one
//! address space; this module proves it across an actual network edge.
//! One coordinator process hosts the producers, the shared exchange
//! [`Router`], the recovery logs, and the scripted adaptation driver;
//! `N` evaluator workers — in-process threads or spawned `gridq-node`
//! processes — connect back over loopback TCP or Unix domain sockets
//! and speak the `gridq-net` frame protocol. Everything the threaded
//! executor guarantees (at-least-once delivery with consumer dedup,
//! checkpointed recovery logs, retry/backoff retransmission, the
//! drain–migrate–resume recall) holds here with the mpsc channels
//! replaced by length-prefixed frames on a byte stream.
//!
//! Topology is a star: workers connect to the coordinator's listener
//! and identify themselves with a `Hello` carrying their index and the
//! highest link sequence number they received, so a reconnection after
//! `conn_drop` chaos resumes exactly where the connection died — each
//! side retransmits the outbox suffix the other missed, and the link
//! layer's sequence dedup absorbs the overlap. Within the coordinator,
//! one writer thread per worker drains that worker's per-producer SPSC
//! rings onto the socket (the rings bound producer memory and park
//! producers when a `slow_peer` stops reading), and one reader thread
//! per connection dispatches worker frames (acks, results, recall
//! replies, stray forwards) under the link lock so reconnections can
//! never reorder delivery.
//!
//! The worker side is deliberately single-threaded: read frames, apply
//! link dedup, evaluate tuples, stamp replies into the link outbox, and
//! write them best-effort — a failed write never aborts frame
//! processing, because the outbox retransmits everything the
//! coordinator has not acknowledged once the worker reconnects.

use std::collections::{HashMap, HashSet};
use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gridq_common::sync::ring::{ring, RingReceiver, RingSender};
use gridq_common::sync::Mutex;
use gridq_common::wire::{self, put_varint, Reader};
use gridq_common::{
    ChaosHook, DataType, DistributionVector, Field, GridError, NetAction, NodeId, RecallPhase,
    Result, Schema, StallSite, Tuple, Value,
};
use gridq_engine::distributed::{DistributedPlan, Router};
use gridq_engine::evaluator::{
    EvaluatorFactory, HashJoinFactory, PartitionEvaluator, ServiceCallFactory, StreamTag,
};
use gridq_engine::physical::Catalog;
use gridq_engine::service::{FnService, Service, ServiceRegistry};
use gridq_engine::Expr;
use gridq_grid::Perturbation;
use gridq_net::frame::kind;
use gridq_net::link::{self, LinkState, Receive};
use gridq_net::{Addr, Decoder, Frame, Listener, Stream};
use gridq_recovery::{Checkpoint, LogAudit, SharedRecoveryLog};

use crate::dedup::DedupFilter;
use crate::failover::RetryBackoff;
use crate::recall::{ProducerGuard, RecallGate};
use crate::{perturbed, spin_for, DeliveryGap, RetryPolicy, SharedLogs, Staged};

/// Application-level message tags, the first payload byte of every
/// sequenced (`kind::MSG`) frame.
mod tag {
    /// Coordinator -> worker: the worker's whole static configuration.
    pub const CONFIG: u8 = 0;
    /// Coordinator -> worker: one staged tuple block (tuples + markers).
    pub const DATA: u8 = 1;
    /// Coordinator -> worker: one source's end of stream.
    pub const EOS: u8 = 2;
    /// Coordinator -> worker: recall drain barrier.
    pub const DRAIN: u8 = 3;
    /// Coordinator -> worker: recall migration command.
    pub const MIGRATE: u8 = 4;
    /// Coordinator -> worker: a tuple re-delivered by the recall
    /// protocol (migrated state or a recalled held probe).
    pub const MIGRATED: u8 = 5;
    /// Worker -> coordinator: a batch of result tuples.
    pub const RESULTS: u8 = 6;
    /// Worker -> coordinator: a checkpoint acknowledgement.
    pub const ACK: u8 = 7;
    /// Worker -> coordinator: drain barrier reached.
    pub const DRAINED: u8 = 8;
    /// Worker -> coordinator: surrendered operator state and held
    /// probes, for the coordinator to re-route.
    pub const STATE_OUT: u8 = 9;
    /// Worker -> coordinator: migration handled.
    pub const MIGRATE_DONE: u8 = 10;
    /// Worker -> coordinator: all streams exhausted; carries the final
    /// processed count and dedup peak.
    pub const DONE: u8 = 11;
    /// Worker -> coordinator: a retransmitted tuple whose ownership the
    /// worker cannot verify (it has no router); the coordinator routes
    /// it to the current owner.
    pub const STRAY: u8 = 12;
    /// Coordinator -> worker: the run is over, exit cleanly.
    pub const SHUTDOWN: u8 = 13;
    /// Coordinator -> worker: re-insert a state tuple raw (a recall
    /// routed it back to the worker that extracted it).
    pub const REINSERT: u8 = 14;
}

// ---------------------------------------------------------------------------
// Payload codecs.
// ---------------------------------------------------------------------------

fn put_stream(out: &mut Vec<u8>, s: StreamTag) {
    out.push(match s {
        StreamTag::Single => 0,
        StreamTag::Build => 1,
        StreamTag::Probe => 2,
    });
}

fn get_stream(r: &mut Reader<'_>) -> Result<StreamTag> {
    match r.u8()? {
        0 => Ok(StreamTag::Single),
        1 => Ok(StreamTag::Build),
        2 => Ok(StreamTag::Probe),
        other => Err(GridError::Execution(format!(
            "socket: unknown stream tag {other}"
        ))),
    }
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(r: &mut Reader<'_>) -> Result<f64> {
    let b = r.bytes(8)?;
    let arr: [u8; 8] = b
        .try_into()
        .map_err(|_| GridError::Execution("socket: truncated f64".into()))?;
    Ok(f64::from_bits(u64::from_le_bytes(arr)))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut Reader<'_>) -> Result<String> {
    let n = r.varint()? as usize;
    let b = r.bytes(n)?;
    String::from_utf8(b.to_vec())
        .map_err(|_| GridError::Execution("socket: non-utf8 string".into()))
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_varint(out, schema.len() as u64);
    for f in schema.fields() {
        put_str(out, &f.name);
        out.push(match f.data_type {
            DataType::Int => 0,
            DataType::Float => 1,
            DataType::Str => 2,
            DataType::Bool => 3,
        });
    }
}

fn get_schema(r: &mut Reader<'_>) -> Result<Schema> {
    let n = r.varint()? as usize;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(r)?;
        let dt = match r.u8()? {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Str,
            3 => DataType::Bool,
            other => {
                return Err(GridError::Execution(format!(
                    "socket: unknown data type {other}"
                )))
            }
        };
        fields.push(Field::new(name, dt));
    }
    Ok(Schema::new(fields))
}

fn enc_data(source: usize, retransmit: bool, items: &[Staged]) -> Vec<u8> {
    let mut out = vec![tag::DATA];
    put_varint(&mut out, source as u64);
    out.push(u8::from(retransmit));
    put_varint(&mut out, items.len() as u64);
    for item in items {
        match item {
            Staged::Tuple(stream, tuple) => {
                out.push(0);
                put_stream(&mut out, *stream);
                wire::put_tuple(&mut out, tuple);
            }
            Staged::Marker(cp, epoch) => {
                out.push(1);
                put_varint(&mut out, u64::from(cp.dest));
                put_varint(&mut out, cp.id);
                put_varint(&mut out, *epoch);
            }
        }
    }
    out
}

fn enc_eos(stream: StreamTag, source: usize) -> Vec<u8> {
    let mut out = vec![tag::EOS];
    put_stream(&mut out, stream);
    put_varint(&mut out, source as u64);
    out
}

fn enc_token(t: u8, token: u64) -> Vec<u8> {
    let mut out = vec![t];
    put_varint(&mut out, token);
    out
}

fn enc_migrate(token: u64, bucket_count: Option<u32>, outgoing: &[u32]) -> Vec<u8> {
    let mut out = vec![tag::MIGRATE];
    put_varint(&mut out, token);
    put_varint(&mut out, bucket_count.map_or(0, |b| u64::from(b) + 1));
    put_varint(&mut out, outgoing.len() as u64);
    for b in outgoing {
        put_varint(&mut out, u64::from(*b));
    }
    out
}

/// Encodes `MIGRATED`, `STRAY`, and `REINSERT` payloads: one routed
/// tuple with its stream and originating source.
fn enc_forward(t: u8, stream: StreamTag, source: usize, tuple: &Tuple) -> Vec<u8> {
    let mut out = vec![t];
    put_stream(&mut out, stream);
    put_varint(&mut out, source as u64);
    wire::put_tuple(&mut out, tuple);
    out
}

fn dec_forward(r: &mut Reader<'_>) -> Result<(StreamTag, usize, Tuple)> {
    let stream = get_stream(r)?;
    let source = r.varint()? as usize;
    let tuple = wire::get_tuple(r)?;
    Ok((stream, source, tuple))
}

fn enc_results(tuples: &[Tuple]) -> Vec<u8> {
    let mut out = vec![tag::RESULTS];
    wire::put_tuples(&mut out, tuples);
    out
}

fn enc_ack(source: usize, cp: Checkpoint, epoch: u64) -> Vec<u8> {
    let mut out = vec![tag::ACK];
    put_varint(&mut out, source as u64);
    put_varint(&mut out, u64::from(cp.dest));
    put_varint(&mut out, cp.id);
    put_varint(&mut out, epoch);
    out
}

fn enc_state_out(entries: &[(StreamTag, usize, Tuple)]) -> Vec<u8> {
    let mut out = vec![tag::STATE_OUT];
    put_varint(&mut out, entries.len() as u64);
    for (stream, source, tuple) in entries {
        put_stream(&mut out, *stream);
        put_varint(&mut out, *source as u64);
        wire::put_tuple(&mut out, tuple);
    }
    out
}

fn enc_done(processed: u64, dedup_peak: u64) -> Vec<u8> {
    let mut out = vec![tag::DONE];
    put_varint(&mut out, processed);
    put_varint(&mut out, dedup_peak);
    out
}

// ---------------------------------------------------------------------------
// Stage specification that crosses the process boundary.
// ---------------------------------------------------------------------------

/// Resolves a service name (plus its modelled per-call cost) to a
/// [`Service`] implementation. Service *code* cannot cross a process
/// boundary, so the stage spec carries the name and each worker — the
/// coordinator's in-process threads and the `gridq-node` binary alike —
/// reconstructs the implementation locally.
pub type ServiceResolver = Arc<dyn Fn(&str, f64) -> Option<Arc<dyn Service>> + Send + Sync>;

/// The resolver for the repo's standard benchmark workload: the
/// `Square` analysis service every substrate's Q1 plan invokes. The
/// `gridq-node` binary, the chaos harness, and the parity tests all
/// resolve through this one function so a spawned process computes
/// byte-identical results to an in-process thread.
pub fn standard_resolver() -> ServiceResolver {
    Arc::new(|name: &str, cost_ms: f64| -> Option<Arc<dyn Service>> {
        if name != "Square" {
            return None;
        }
        Some(Arc::new(FnService::new(
            "Square",
            vec![DataType::Int],
            DataType::Int,
            cost_ms,
            |args| {
                let v = args[0]
                    .as_int()
                    .ok_or_else(|| GridError::Execution("Square expects an Int".into()))?;
                Ok(Value::Int(v.saturating_mul(v)))
            },
        )))
    })
}

/// A serializable description of the single parallel stage, shipped to
/// every worker in its `CONFIG` frame. The two variants cover the
/// workloads the repo's plans use: Q1's per-tuple service call and Q2's
/// partitioned hash join.
#[derive(Debug, Clone)]
pub enum WireStageSpec {
    /// One service invocation per tuple (stateless).
    ServiceCall {
        /// Schema of the stage input.
        input_schema: Schema,
        /// Service name, resolved by each worker's [`ServiceResolver`].
        service: String,
        /// Modelled per-call cost in milliseconds.
        service_cost_ms: f64,
        /// Input columns passed as service arguments.
        arg_cols: Vec<usize>,
        /// Name of the output column holding the service result.
        output_name: String,
        /// Whether input columns are kept alongside the result.
        keep_input: bool,
    },
    /// A partitioned hash join (stateful).
    HashJoin {
        /// Schema of the build input.
        build_schema: Schema,
        /// Schema of the probe input.
        probe_schema: Schema,
        /// Join key column in the build schema.
        build_key: usize,
        /// Join key column in the probe schema.
        probe_key: usize,
        /// Modelled per-build-tuple cost in milliseconds.
        build_cost_ms: f64,
        /// Modelled per-probe-tuple cost in milliseconds.
        probe_cost_ms: f64,
    },
}

impl WireStageSpec {
    /// Whether the stage accumulates operator state (mirrors
    /// [`EvaluatorFactory::stateful`]).
    pub fn stateful(&self) -> bool {
        matches!(self, WireStageSpec::HashJoin { .. })
    }

    /// Serializes the spec into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            WireStageSpec::ServiceCall {
                input_schema,
                service,
                service_cost_ms,
                arg_cols,
                output_name,
                keep_input,
            } => {
                out.push(0);
                put_schema(out, input_schema);
                put_str(out, service);
                put_f64(out, *service_cost_ms);
                put_varint(out, arg_cols.len() as u64);
                for c in arg_cols {
                    put_varint(out, *c as u64);
                }
                put_str(out, output_name);
                out.push(u8::from(*keep_input));
            }
            WireStageSpec::HashJoin {
                build_schema,
                probe_schema,
                build_key,
                probe_key,
                build_cost_ms,
                probe_cost_ms,
            } => {
                out.push(1);
                put_schema(out, build_schema);
                put_schema(out, probe_schema);
                put_varint(out, *build_key as u64);
                put_varint(out, *probe_key as u64);
                put_f64(out, *build_cost_ms);
                put_f64(out, *probe_cost_ms);
            }
        }
    }

    /// Deserializes a spec from `r`.
    pub fn decode(r: &mut Reader<'_>) -> Result<WireStageSpec> {
        match r.u8()? {
            0 => {
                let input_schema = get_schema(r)?;
                let service = get_str(r)?;
                let service_cost_ms = get_f64(r)?;
                let n = r.varint()? as usize;
                let mut arg_cols = Vec::with_capacity(n);
                for _ in 0..n {
                    arg_cols.push(r.varint()? as usize);
                }
                let output_name = get_str(r)?;
                let keep_input = r.u8()? != 0;
                Ok(WireStageSpec::ServiceCall {
                    input_schema,
                    service,
                    service_cost_ms,
                    arg_cols,
                    output_name,
                    keep_input,
                })
            }
            1 => Ok(WireStageSpec::HashJoin {
                build_schema: get_schema(r)?,
                probe_schema: get_schema(r)?,
                build_key: r.varint()? as usize,
                probe_key: r.varint()? as usize,
                build_cost_ms: get_f64(r)?,
                probe_cost_ms: get_f64(r)?,
            }),
            other => Err(GridError::Execution(format!(
                "socket: unknown stage spec variant {other}"
            ))),
        }
    }

    /// Builds the partition evaluator for worker `index`.
    pub fn build(
        &self,
        index: u32,
        services: &ServiceResolver,
    ) -> Result<Box<dyn PartitionEvaluator>> {
        match self {
            WireStageSpec::ServiceCall {
                input_schema,
                service,
                service_cost_ms,
                arg_cols,
                output_name,
                keep_input,
            } => {
                let svc = services(service, *service_cost_ms).ok_or_else(|| {
                    GridError::Config(format!("socket: worker cannot resolve service {service:?}"))
                })?;
                let args = arg_cols.iter().map(|&c| Expr::col(c)).collect();
                Ok(ServiceCallFactory::new(
                    input_schema,
                    svc,
                    args,
                    output_name,
                    *keep_input,
                    ServiceRegistry::new(),
                )
                .create(index))
            }
            WireStageSpec::HashJoin {
                build_schema,
                probe_schema,
                build_key,
                probe_key,
                build_cost_ms,
                probe_cost_ms,
            } => Ok(HashJoinFactory::new(
                build_schema,
                probe_schema,
                *build_key,
                *probe_key,
                *build_cost_ms,
                *probe_cost_ms,
            )
            .create(index)),
        }
    }
}

// ---------------------------------------------------------------------------
// Public configuration.
// ---------------------------------------------------------------------------

/// Which socket family carries the data plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketTransport {
    /// Unix domain sockets under the temp dir (no ports; CI default).
    Unix,
    /// Loopback TCP with an ephemeral port.
    Tcp,
}

/// How evaluator workers are launched.
#[derive(Debug, Clone)]
pub enum WorkerLaunch {
    /// Threads inside the coordinator process, speaking the same socket
    /// protocol as external processes (the protocol is what is under
    /// test; the address space is incidental).
    InProcess,
    /// One spawned OS process per worker, started as
    /// `<program> --addr <addr> --index <i>`.
    Spawn {
        /// Path to the worker binary (typically `gridq-node`).
        program: PathBuf,
    },
}

/// One scripted adaptation: once `after_routed` tuples have been routed,
/// deploy `weights` — prospectively (R2) or via the full retrospective
/// recall (R1). The socket substrate scripts its adaptations instead of
/// running the monitoring/diagnosis loop: the adaptivity *decision*
/// stack is already exercised by the other substrates, and a scripted
/// trigger makes the cross-substrate parity tests deterministic.
#[derive(Debug, Clone)]
pub struct ScriptedAdaptation {
    /// Routed-tuple threshold that triggers the deployment.
    pub after_routed: u64,
    /// The distribution weights to deploy.
    pub weights: Vec<f64>,
    /// `true` runs the drain–migrate–resume recall (required for
    /// stateful stages); `false` swaps the routing prospectively.
    pub retrospective: bool,
}

/// Configuration of a socket-substrate execution.
pub struct SocketConfig {
    /// Socket family (Unix domain by default where available).
    pub transport: SocketTransport,
    /// Worker launch mode.
    pub launch: WorkerLaunch,
    /// The stage specification shipped to workers.
    pub stage: WireStageSpec,
    /// Service resolver used by in-process workers (and by the
    /// coordinator to validate the spec).
    pub services: ServiceResolver,
    /// Multiplier from model milliseconds to real milliseconds.
    pub cost_scale: f64,
    /// Per-tuple receive cost in model milliseconds.
    pub receive_cost_ms: f64,
    /// Producers emit a recovery-log checkpoint marker after this many
    /// tuples per destination (logging runs only).
    pub checkpoint_interval: usize,
    /// Recall barrier/reply timeout in wall-clock milliseconds.
    pub recall_timeout_ms: u64,
    /// Delivery retry/backoff policy for unacknowledged windows.
    pub delivery_retry: RetryPolicy,
    /// Fault-injection hook. Installing one switches the run into
    /// resilient mode (recovery logs, window-atomic flushes, dedup).
    pub chaos: Option<Arc<dyn ChaosHook>>,
    /// Scripted adaptations, deployed in `after_routed` order.
    pub adaptations: Vec<ScriptedAdaptation>,
    /// Per-node perturbations, applied as real extra work on workers.
    pub perturbations: HashMap<NodeId, Perturbation>,
}

impl SocketConfig {
    /// A default configuration over the given stage spec and resolver:
    /// Unix sockets (TCP where Unix sockets are unavailable),
    /// in-process workers, and the threaded executor's cost defaults.
    pub fn new(stage: WireStageSpec, services: ServiceResolver) -> Self {
        SocketConfig {
            transport: if cfg!(unix) {
                SocketTransport::Unix
            } else {
                SocketTransport::Tcp
            },
            launch: WorkerLaunch::InProcess,
            stage,
            services,
            cost_scale: 0.02,
            receive_cost_ms: 1.0,
            checkpoint_interval: 50,
            recall_timeout_ms: 30_000,
            delivery_retry: RetryPolicy::default(),
            chaos: None,
            adaptations: Vec::new(),
            perturbations: HashMap::new(),
        }
    }

    /// Rejects configurations that would hang or corrupt a run.
    pub fn validate(&self) -> Result<()> {
        if !self.cost_scale.is_finite() || self.cost_scale <= 0.0 {
            return Err(GridError::Config(format!(
                "cost_scale must be finite and positive, got {}",
                self.cost_scale
            )));
        }
        if !self.receive_cost_ms.is_finite() || self.receive_cost_ms < 0.0 {
            return Err(GridError::Config(format!(
                "receive_cost_ms must be finite and non-negative, got {}",
                self.receive_cost_ms
            )));
        }
        if self.checkpoint_interval == 0 {
            return Err(GridError::Config(
                "checkpoint_interval must be positive".into(),
            ));
        }
        if self.recall_timeout_ms == 0 {
            return Err(GridError::Config(
                "recall_timeout_ms must be positive".into(),
            ));
        }
        self.delivery_retry.validate()?;
        for a in &self.adaptations {
            if a.weights.is_empty() {
                return Err(GridError::Config(
                    "scripted adaptation has no weights".into(),
                ));
            }
            if a.weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(GridError::Config(
                    "scripted adaptation weights must be finite and non-negative".into(),
                ));
            }
            if a.weights.iter().sum::<f64>() <= 0.0 {
                return Err(GridError::Config(
                    "scripted adaptation weights must have positive sum".into(),
                ));
            }
        }
        Ok(())
    }
}

/// What a socket-substrate execution measured. Field-for-field
/// comparable with `ThreadedReport` where the substrates share
/// semantics; socket-only telemetry (reconnects) is additive.
#[derive(Debug, Clone, Default)]
pub struct SocketReport {
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: f64,
    /// Result tuples collected.
    pub results: Vec<Tuple>,
    /// Input tuples processed per partition.
    pub per_partition_processed: Vec<u64>,
    /// Adaptations deployed into the router.
    pub adaptations_deployed: u64,
    /// Retrospective recalls that ran the full protocol.
    pub recalls_completed: u64,
    /// Retrospective recalls abandoned before deploying.
    pub recalls_aborted: u64,
    /// Operator-state tuples shipped between partitions by recalls.
    pub state_tuples_migrated: u64,
    /// In-flight tuples re-routed by recalls (held tuples recalled from
    /// workers plus staged buffers re-routed by producers).
    pub tuples_recalled: u64,
    /// Tuples retransmitted from recovery logs by the retry epilogue.
    pub tuples_retransmitted: u64,
    /// Windows left undelivered after the retry budget ran out.
    pub delivery_gaps: Vec<DeliveryGap>,
    /// Data-plane pushes that failed because a worker's ring closed,
    /// counted in tuples.
    pub send_failures: u64,
    /// Conservation audit of each source's recovery log (logging runs
    /// only; indexed like `DistributedPlan::sources`).
    pub log_audits: Vec<LogAudit>,
    /// High-water mark of live worker dedup-filter entries, maximised
    /// over workers — bounded by unacknowledged windows, not input size.
    pub dedup_peak_entries: u64,
    /// The final routing distribution.
    pub final_distribution: Vec<f64>,
    /// Worker connections re-established after a drop (0 on a healthy
    /// run; `conn_drop` chaos drives it up).
    pub reconnects: u64,
}

/// Parses an `Addr` from its `Display` form (`tcp:HOST:PORT` or
/// `unix:PATH`), the format `gridq-node` receives on its command line.
pub fn parse_addr(s: &str) -> Result<Addr> {
    if let Some(rest) = s.strip_prefix("tcp:") {
        return Ok(Addr::Tcp(rest.to_string()));
    }
    if let Some(rest) = s.strip_prefix("unix:") {
        return Ok(Addr::Unix(PathBuf::from(rest)));
    }
    Err(GridError::Config(format!(
        "socket: address {s:?} is neither tcp:HOST:PORT nor unix:PATH"
    )))
}

fn write_frame(conn: &mut Stream, frame: &Frame) -> std::io::Result<()> {
    conn.write_all(&frame.encode())?;
    conn.flush()
}

// ---------------------------------------------------------------------------
// Coordinator: per-worker writer thread.
// ---------------------------------------------------------------------------

/// Control commands for one worker's writer thread.
enum WCtl {
    /// A (re)established connection, plus the worker's advertised
    /// `last_received` from its hello: retransmit past it and adopt the
    /// stream.
    Conn { stream: Stream, peer_last: u64 },
    /// Send one control payload (sequenced, outbox-backed).
    Msg(Vec<u8>),
    /// Drain the data rings completely, then send the payload — used
    /// for the recall barrier (and the final shutdown), which must
    /// trail every data block staged before it.
    Barrier(Vec<u8>),
    /// The reader owes the worker a pure ack (outbox relief).
    AckNow,
    /// Stop the writer.
    Shutdown,
}

struct WriterState {
    worker: usize,
    link: Arc<Mutex<LinkState>>,
    chaos: Option<Arc<dyn ChaosHook>>,
    /// One data ring per producer, drained round-robin.
    rings: Vec<RingReceiver<Vec<u8>>>,
    conn: Option<Stream>,
}

impl WriterState {
    /// Stamps `payload` into the link outbox and writes it if a
    /// connection is live. The stamp happens unconditionally: a failed
    /// or skipped write leaves the frame in the outbox, and the next
    /// reconnection's `retransmit_after` delivers it. `data` gates the
    /// chaos seams — only data frames are dropped/chunked, mirroring
    /// the threaded executor's data-plane-only injection.
    fn send_seq(&mut self, payload: Vec<u8>, data: bool) {
        if data
            && self.conn.is_some()
            && self
                .chaos
                .as_ref()
                .is_some_and(|c| c.conn_drop(self.worker))
        {
            // Tear the connection down mid-stream: the worker sees EOF,
            // reconnects, and the handshake retransmits this frame and
            // everything unacknowledged before it.
            if let Some(c) = &self.conn {
                let _ = c.shutdown_both();
            }
            self.conn = None;
        }
        let frame = self.link.lock().stamp(kind::MSG, payload);
        let Some(conn) = &mut self.conn else { return };
        let bytes = frame.encode();
        let chunked = data
            && self
                .chaos
                .as_ref()
                .is_some_and(|c| c.partial_write(self.worker));
        let res = if chunked {
            // Deliberately tiny writes with a flush after each: the
            // worker's incremental decoder must reassemble headers and
            // payloads split at arbitrary byte boundaries.
            let mut r = Ok(());
            for chunk in bytes.chunks(7) {
                r = conn.write_all(chunk).and_then(|()| conn.flush());
                if r.is_err() {
                    break;
                }
            }
            r
        } else {
            conn.write_all(&bytes).and_then(|()| conn.flush())
        };
        if res.is_err() {
            self.conn = None;
        }
    }

    /// One round-robin sweep over the data rings; returns whether
    /// anything was sent. A single sweep (not drain-to-empty) keeps the
    /// writer responsive to control commands — reconnections especially.
    fn sweep_rings(&mut self) -> bool {
        let mut wrote = false;
        for idx in 0..self.rings.len() {
            if let Some(payload) = self.rings[idx].pop() {
                self.send_seq(payload, true);
                wrote = true;
            }
        }
        wrote
    }

    /// Handles one control command; returns `false` to stop.
    fn handle(&mut self, ctl: WCtl) -> bool {
        match ctl {
            WCtl::Conn { stream, peer_last } => {
                let frames = self.link.lock().retransmit_after(peer_last);
                let mut stream = stream;
                let mut ok = true;
                for f in &frames {
                    if write_frame(&mut stream, f).is_err() {
                        ok = false;
                        break;
                    }
                }
                self.conn = ok.then_some(stream);
            }
            WCtl::Msg(payload) => self.send_seq(payload, false),
            WCtl::Barrier(payload) => {
                // The barrier must trail every staged block. Producers
                // are parked (recall) or finished (shutdown) when a
                // barrier is issued, so the rings are quiescent and this
                // drain terminates.
                while self.sweep_rings() {}
                self.send_seq(payload, false);
            }
            WCtl::AckNow => {
                // Only send when a connection is live: the ack frame is
                // unsequenced and would otherwise silently reset the
                // received-since-ack debt without relieving the peer.
                if self.conn.is_some() {
                    let f = self.link.lock().ack_frame();
                    if let Some(conn) = &mut self.conn {
                        if write_frame(conn, &f).is_err() {
                            self.conn = None;
                        }
                    }
                }
            }
            WCtl::Shutdown => return false,
        }
        true
    }
}

fn writer_loop(mut st: WriterState, ctl: Receiver<WCtl>) {
    loop {
        // Control first, exhaustively: a reconnection or barrier must
        // not wait behind a long data backlog.
        loop {
            match ctl.try_recv() {
                Ok(c) => {
                    if !st.handle(c) {
                        return;
                    }
                }
                Err(TryRecvError::Empty) => break,
                Err(TryRecvError::Disconnected) => return,
            }
        }
        if !st.sweep_rings() {
            match ctl.recv_timeout(Duration::from_millis(2)) {
                Ok(c) => {
                    if !st.handle(c) {
                        return;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Coordinator: per-connection reader thread.
// ---------------------------------------------------------------------------

/// What the coordinator's main loop consumes.
enum Event {
    Results(Vec<Tuple>),
    Done {
        worker: usize,
        processed: u64,
        dedup_peak: u64,
    },
}

/// Recall-protocol replies routed to the scripted-adaptation driver.
enum Reply {
    Drained {
        token: u64,
    },
    MigrateDone {
        token: u64,
    },
    StateOut {
        worker: usize,
        entries: Vec<(StreamTag, usize, Tuple)>,
    },
}

/// Everything a reader thread needs to dispatch worker frames. Cloned
/// per connection life; the `link` is shared with the worker's writer
/// and with successor readers, so frame processing under its lock is
/// totally ordered across reconnections.
#[derive(Clone)]
struct ReaderCtx {
    worker: usize,
    link: Arc<Mutex<LinkState>>,
    logs: Option<SharedLogs>,
    router: Arc<Mutex<Router>>,
    chaos: Option<Arc<dyn ChaosHook>>,
    writers: Vec<Sender<WCtl>>,
    events: Sender<Event>,
    replies: Sender<Reply>,
    shutdown: Arc<AtomicBool>,
    scale: f64,
}

/// Dispatches one fresh application payload from worker `ctx.worker`.
/// Called with the link lock held, which orders dispatch across
/// reconnections; the lock order is strictly link -> router/logs, and
/// no thread takes them in the other order.
fn dispatch(ctx: &ReaderCtx, payload: &[u8]) -> Result<()> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        tag::RESULTS => {
            let tuples = wire::get_tuples(&mut r)?;
            let _ = ctx.events.send(Event::Results(tuples));
        }
        tag::ACK => {
            let source = r.varint()? as usize;
            let dest = u32::try_from(r.varint()?)
                .map_err(|_| GridError::Execution("socket: ack dest overflow".into()))?;
            let id = r.varint()?;
            let epoch = r.varint()?;
            if let Some(logs) = &ctx.logs {
                if source < logs.len() {
                    match ctx
                        .chaos
                        .as_ref()
                        .map_or(NetAction::Deliver, |c| c.on_ack(source, ctx.worker))
                    {
                        NetAction::Drop => {}
                        NetAction::Duplicate => {
                            let _ = logs[source].acknowledge(dest, id, epoch);
                            let _ = logs[source].acknowledge(dest, id, epoch);
                        }
                        NetAction::DelayMs(extra) => {
                            if extra.is_finite() && extra > 0.0 {
                                spin_for(extra, ctx.scale);
                            }
                            let _ = logs[source].acknowledge(dest, id, epoch);
                        }
                        NetAction::Deliver => {
                            let _ = logs[source].acknowledge(dest, id, epoch);
                        }
                    }
                }
            }
        }
        tag::DRAINED => {
            let token = r.varint()?;
            // A swallowed reply models a worker crashed mid-recall: the
            // driver's barrier times out and the recall aborts pre-swap.
            if ctx
                .chaos
                .as_ref()
                .is_none_or(|c| c.on_recall_ctrl(RecallPhase::Drain, ctx.worker))
            {
                let _ = ctx.replies.send(Reply::Drained { token });
            }
        }
        tag::MIGRATE_DONE => {
            let token = r.varint()?;
            if ctx
                .chaos
                .as_ref()
                .is_none_or(|c| c.on_recall_ctrl(RecallPhase::Migrate, ctx.worker))
            {
                let _ = ctx.replies.send(Reply::MigrateDone { token });
            }
        }
        tag::STATE_OUT => {
            let n = r.varint()? as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let stream = get_stream(&mut r)?;
                let source = r.varint()? as usize;
                let tuple = wire::get_tuple(&mut r)?;
                entries.push((stream, source, tuple));
            }
            let _ = ctx.replies.send(Reply::StateOut {
                worker: ctx.worker,
                entries,
            });
        }
        tag::STRAY => {
            // A retransmitted tuple the worker cannot verify ownership
            // of. Route it under the live distribution; the log entry
            // follows its tuple so a later crash still finds it
            // replayable at the owner.
            let (stream, source, tuple) = dec_forward(&mut r)?;
            let owner = {
                let mut router = ctx.router.lock();
                router.route(stream, &tuple).unwrap_or(ctx.worker as u32)
            } as usize;
            if owner != ctx.worker {
                if let Some(logs) = &ctx.logs {
                    if source < logs.len() {
                        let seq = tuple.seq();
                        let _ = logs[source].migrate_matching(
                            ctx.worker as u32,
                            owner as u32,
                            |(s, t)| *s == stream && t.seq() == seq,
                        );
                    }
                }
            }
            let _ = ctx.writers[owner].send(WCtl::Msg(enc_forward(
                tag::MIGRATED,
                stream,
                source,
                &tuple,
            )));
        }
        tag::DONE => {
            let processed = r.varint()?;
            let dedup_peak = r.varint()?;
            let _ = ctx.events.send(Event::Done {
                worker: ctx.worker,
                processed,
                dedup_peak,
            });
        }
        other => {
            return Err(GridError::Execution(format!(
                "socket: unknown worker frame tag {other}"
            )))
        }
    }
    Ok(())
}

/// Reads one connection life: feed the decoder, apply link dedup, and
/// dispatch fresh frames under the link lock. Exits on EOF, a socket
/// error, a framing error, or the shutdown flag; the worker reconnects
/// and a successor reader takes over with the same link state.
fn reader_loop(ctx: ReaderCtx, mut conn: Stream, mut dec: Decoder, leftovers: Vec<Frame>) {
    let process = |ctx: &ReaderCtx, frames: &[Frame]| -> bool {
        if frames.is_empty() {
            return true;
        }
        let mut link = ctx.link.lock();
        for f in frames {
            if link.on_receive(f) == Receive::Fresh && dispatch(ctx, &f.payload).is_err() {
                return false;
            }
        }
        if link.owes_ack() {
            let _ = ctx.writers[ctx.worker].send(WCtl::AckNow);
        }
        true
    };
    if !process(&ctx, &leftovers) {
        return;
    }
    let _ = conn.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        if ctx.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let n = match conn.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(_) => return,
        };
        let frames = match dec.feed(&buf[..n]) {
            Ok(f) => f,
            Err(_) => return,
        };
        if !process(&ctx, &frames) {
            return;
        }
    }
}

// ---------------------------------------------------------------------------
// The CONFIG payload: everything a worker needs before the first block.
// ---------------------------------------------------------------------------

/// The static per-worker configuration, sent as the first sequenced
/// frame on every worker's link (command FIFO guarantees it precedes all
/// data). Carried by value across the process boundary so a spawned
/// `gridq-node` needs nothing but its command line and this frame.
struct WireConfig {
    worker: usize,
    resilient: bool,
    logging: bool,
    hash_routing: bool,
    cost_scale: f64,
    receive_cost_ms: f64,
    /// Pre-read stall injected by `slow_peer` chaos, resolved on the
    /// coordinator so spawned processes need no chaos hook of their own.
    read_stall_ms: f64,
    /// Perturbation resolved to a linear form (`base * factor + extra`):
    /// every [`Perturbation`] variant is linear in the base cost, so the
    /// worker reproduces `perturbed()` exactly without carrying the enum.
    cost_factor: f64,
    cost_extra_ms: f64,
    eos_needed: usize,
    build_eos_needed: usize,
    build_source: Option<usize>,
    stage: WireStageSpec,
}

impl WireConfig {
    fn encode(&self) -> Vec<u8> {
        let mut out = vec![tag::CONFIG];
        put_varint(&mut out, self.worker as u64);
        out.push(u8::from(self.resilient));
        out.push(u8::from(self.logging));
        out.push(u8::from(self.hash_routing));
        put_f64(&mut out, self.cost_scale);
        put_f64(&mut out, self.receive_cost_ms);
        put_f64(&mut out, self.read_stall_ms);
        put_f64(&mut out, self.cost_factor);
        put_f64(&mut out, self.cost_extra_ms);
        put_varint(&mut out, self.eos_needed as u64);
        put_varint(&mut out, self.build_eos_needed as u64);
        put_varint(&mut out, self.build_source.map_or(0, |b| b as u64 + 1));
        self.stage.encode(&mut out);
        out
    }

    fn decode(r: &mut Reader<'_>) -> Result<WireConfig> {
        let worker = r.varint()? as usize;
        let resilient = r.u8()? != 0;
        let logging = r.u8()? != 0;
        let hash_routing = r.u8()? != 0;
        let cost_scale = get_f64(r)?;
        let receive_cost_ms = get_f64(r)?;
        let read_stall_ms = get_f64(r)?;
        let cost_factor = get_f64(r)?;
        let cost_extra_ms = get_f64(r)?;
        let eos_needed = r.varint()? as usize;
        let build_eos_needed = r.varint()? as usize;
        let build_source = match r.varint()? {
            0 => None,
            b => Some(b as usize - 1),
        };
        let stage = WireStageSpec::decode(r)?;
        Ok(WireConfig {
            worker,
            resilient,
            logging,
            hash_routing,
            cost_scale,
            receive_cost_ms,
            read_stall_ms,
            cost_factor,
            cost_extra_ms,
            eos_needed,
            build_eos_needed,
            build_source,
            stage,
        })
    }
}

// ---------------------------------------------------------------------------
// The scripted-adaptation driver.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct DriverStats {
    deployed: u64,
    recalls_completed: u64,
    recalls_aborted: u64,
    state_moved: u64,
    recalled: u64,
}

/// Coordinator-side recall state: routes surrendered worker state under
/// the post-recall distribution and keeps the recovery-log accounting
/// the threaded consumer does locally. Workers have no router, so the
/// routing decisions all happen here.
struct Driver {
    router: Arc<Mutex<Router>>,
    logs: Option<SharedLogs>,
    writers: Vec<Sender<WCtl>>,
    resilient: bool,
    build_source: Option<usize>,
    stats: DriverStats,
}

impl Driver {
    /// Routes one worker's `STATE_OUT` batch — migrated operator state
    /// and recalled held probes — to the new owners, mirroring the
    /// threaded consumer's `Migrate` handling (upfront retire of moved
    /// build entries without resilience; entries follow their tuples
    /// with it).
    fn route_state_out(&mut self, worker: usize, entries: Vec<(StreamTag, usize, Tuple)>) {
        if !self.resilient {
            if let (Some(logs), Some(b)) = (&self.logs, self.build_source) {
                let moved: HashSet<u64> = entries
                    .iter()
                    .filter(|(s, _, _)| *s == StreamTag::Build)
                    .map(|(_, _, t)| t.seq())
                    .collect();
                if !moved.is_empty() {
                    let _ = logs[b].retire_matching(worker as u32, |(s, t)| {
                        *s == StreamTag::Build && moved.contains(&t.seq())
                    });
                }
            }
        }
        let mut retire: HashMap<usize, HashSet<u64>> = HashMap::new();
        for (stream, source, tuple) in entries {
            let dest = {
                let mut r = self.router.lock();
                r.route(stream, &tuple).unwrap_or(worker as u32)
            } as usize;
            if stream == StreamTag::Probe {
                // A held probe whose bucket stayed goes straight back
                // (the worker re-holds it); one that moved is recalled
                // to its new owner.
                if dest == worker {
                    let _ = self.writers[worker].send(WCtl::Msg(enc_forward(
                        tag::MIGRATED,
                        stream,
                        source,
                        &tuple,
                    )));
                    continue;
                }
                if self.resilient {
                    if let Some(logs) = &self.logs {
                        if source < logs.len() {
                            let seq = tuple.seq();
                            let _ = logs[source].migrate_matching(
                                worker as u32,
                                dest as u32,
                                |(s, t)| *s == StreamTag::Probe && t.seq() == seq,
                            );
                        }
                    }
                } else {
                    retire.entry(source).or_default().insert(tuple.seq());
                }
                self.stats.recalled += 1;
                let _ = self.writers[dest].send(WCtl::Msg(enc_forward(
                    tag::MIGRATED,
                    stream,
                    source,
                    &tuple,
                )));
            } else {
                // Operator state. Outgoing buckets route away by
                // construction; re-insert defensively (raw, uncounted)
                // if one does not.
                self.stats.state_moved += 1;
                if dest == worker {
                    let _ = self.writers[worker].send(WCtl::Msg(enc_forward(
                        tag::REINSERT,
                        stream,
                        source,
                        &tuple,
                    )));
                } else {
                    if self.resilient {
                        if let (Some(logs), Some(b)) = (&self.logs, self.build_source) {
                            let seq = tuple.seq();
                            let _ =
                                logs[b].migrate_matching(worker as u32, dest as u32, |(s, t)| {
                                    *s == StreamTag::Build && t.seq() == seq
                                });
                        }
                    }
                    let _ = self.writers[dest].send(WCtl::Msg(enc_forward(
                        tag::MIGRATED,
                        stream,
                        source,
                        &tuple,
                    )));
                }
            }
        }
        if let Some(logs) = &self.logs {
            for (source, seqs) in retire {
                if source < logs.len() {
                    let _ = logs[source].retire_matching(worker as u32, |(s, t)| {
                        *s == StreamTag::Probe && seqs.contains(&t.seq())
                    });
                }
            }
        }
    }

    /// Collects `need` matching barrier replies within `timeout`,
    /// routing any `STATE_OUT` batches inline (each worker sends its
    /// state before its `MIGRATE_DONE` on the same FIFO reply channel,
    /// so barrier completion implies all state was routed).
    fn collect(
        &mut self,
        replies: &Receiver<Reply>,
        token: u64,
        need: usize,
        migrate: bool,
        timeout: Duration,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        let mut got = 0usize;
        while got < need {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            match replies.recv_timeout(deadline - now) {
                Ok(Reply::Drained { token: t }) => {
                    if !migrate && t == token {
                        got += 1;
                    }
                }
                Ok(Reply::MigrateDone { token: t }) => {
                    if migrate && t == token {
                        got += 1;
                    }
                }
                Ok(Reply::StateOut { worker, entries }) => {
                    self.route_state_out(worker, entries);
                }
                Err(_) => return false,
            }
        }
        true
    }
}

/// Runs the scripted adaptations in `after_routed` order, then drains
/// stray replies until teardown. Mirrors the threaded adaptivity
/// thread's recall coordination with the monitoring/diagnosis loop
/// replaced by the script.
#[allow(clippy::too_many_arguments)]
fn run_driver(
    mut driver: Driver,
    adaptations: Vec<ScriptedAdaptation>,
    gate: Option<Arc<RecallGate>>,
    routed_total: Arc<AtomicU64>,
    producers_live: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    replies: Receiver<Reply>,
    recall_timeout: Duration,
) -> DriverStats {
    let mut token = 0u64;
    'script: for a in adaptations {
        // Wait for the routed-tuple threshold; a finished scan releases
        // the wait too (R2 still applies; R1 aborts at the gate because
        // no producer can park).
        loop {
            if stop.load(Ordering::SeqCst) {
                break 'script;
            }
            if routed_total.load(Ordering::Relaxed) >= a.after_routed
                || producers_live.load(Ordering::SeqCst) == 0
            {
                break;
            }
            thread::sleep(Duration::from_micros(500));
        }
        let Ok(dist) = DistributionVector::new(&a.weights) else {
            continue;
        };
        if !a.retrospective {
            // Prospective (R2): swap the routing table; only future
            // tuples are affected.
            if driver.router.lock().apply_distribution(&dist).is_ok() {
                driver.stats.deployed += 1;
            }
            continue;
        }
        let Some(gate) = gate.as_ref() else { continue };
        token += 1;
        match gate.begin_pause(recall_timeout) {
            None => {
                driver.stats.recalls_aborted += 1;
            }
            Some(0) => {
                // Every producer already finished; the workers may send
                // DONE at any moment, so the barrier cannot be trusted.
                gate.abort_pause();
                driver.stats.recalls_aborted += 1;
            }
            Some(_) => {
                // Drain barrier: the producers are parked, so each
                // writer's ring drain (WCtl::Barrier) puts the DRAIN
                // frame after everything staged before the pause.
                for w in &driver.writers {
                    let _ = w.send(WCtl::Barrier(enc_token(tag::DRAIN, token)));
                }
                let need = driver.writers.len();
                if !driver.collect(&replies, token, need, false, recall_timeout) {
                    gate.abort_pause();
                    driver.stats.recalls_aborted += 1;
                    continue;
                }
                let moves = {
                    let mut r = driver.router.lock();
                    r.apply_retrospective(&dist)
                };
                let Ok(moves) = moves else {
                    gate.abort_pause();
                    driver.stats.recalls_aborted += 1;
                    continue;
                };
                driver.stats.deployed += 1;
                let epoch = gate.epoch() + 1;
                let bucket_count = driver.router.lock().bucket_count();
                for (p, w) in driver.writers.iter().enumerate() {
                    let outgoing = moves.outgoing.get(p).cloned().unwrap_or_default();
                    let _ = w.send(WCtl::Msg(enc_migrate(token, bucket_count, &outgoing)));
                }
                if driver.collect(&replies, token, need, true, recall_timeout) {
                    driver.stats.recalls_completed += 1;
                } else {
                    driver.stats.recalls_aborted += 1;
                }
                // Resume the producers even if a reply timed out:
                // leaving them parked would deadlock the run instead of
                // surfacing the failure at join time.
                gate.resume(epoch);
            }
        }
    }
    // Keep routing stray state until teardown: a barrier that timed out
    // may still deliver its STATE_OUT batches, and dropping them here
    // would lose real tuples.
    while !stop.load(Ordering::SeqCst) {
        match replies.recv_timeout(Duration::from_millis(25)) {
            Ok(Reply::StateOut { worker, entries }) => driver.route_state_out(worker, entries),
            Ok(_) => {}
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    driver.stats
}

// ---------------------------------------------------------------------------
// The executor.
// ---------------------------------------------------------------------------

/// A launched worker awaiting teardown.
enum WorkerJoin {
    /// An in-process worker thread.
    Thread(thread::JoinHandle<Result<()>>),
    /// A spawned `gridq-node` process.
    Process(Child),
}

/// Decrements a shared counter on drop, so a panicking producer still
/// counts as finished.
struct Decrement(Arc<AtomicU64>);

impl Drop for Decrement {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Forced teardown for error paths: close everything down without
/// waiting on worker cooperation. Spawned children are killed;
/// in-process worker threads exit on their own once the listener dies
/// (their reconnect attempts fail fast).
fn force_teardown(
    shutdown: &AtomicBool,
    addr: &Addr,
    wctls: Vec<Sender<WCtl>>,
    writer_handles: Vec<thread::JoinHandle<()>>,
    accept_handle: thread::JoinHandle<()>,
    reader_handles: &Mutex<Vec<thread::JoinHandle<()>>>,
    workers: Vec<WorkerJoin>,
) {
    for w in &wctls {
        let _ = w.send(WCtl::Shutdown);
    }
    drop(wctls);
    for h in writer_handles {
        let _ = h.join();
    }
    shutdown.store(true, Ordering::SeqCst);
    let _ = Stream::connect(addr);
    let _ = accept_handle.join();
    for h in std::mem::take(&mut *reader_handles.lock()) {
        let _ = h.join();
    }
    for w in workers {
        match w {
            WorkerJoin::Thread(_) => {}
            WorkerJoin::Process(mut c) => {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
    if let Addr::Unix(p) = addr {
        let _ = std::fs::remove_file(p);
    }
}

/// Executes a single-stage distributed plan over socket-connected
/// evaluator workers (in-process threads or spawned processes).
pub struct SocketExecutor {
    catalog: Catalog,
    config: SocketConfig,
}

impl SocketExecutor {
    /// Creates an executor over the catalog.
    pub fn new(catalog: Catalog, config: SocketConfig) -> Self {
        SocketExecutor { catalog, config }
    }

    /// Runs the plan to completion.
    #[allow(clippy::too_many_lines)]
    pub fn run(&self, plan: &DistributedPlan) -> Result<SocketReport> {
        self.config.validate()?;
        plan.validate()?;
        if plan.stages.len() != 1 {
            return Err(GridError::Execution(
                "the socket executor runs single-stage plans".into(),
            ));
        }
        let stage = &plan.stages[0];
        if stage.factory.stateful() != self.config.stage.stateful() {
            return Err(GridError::Config(
                "the wire stage spec's statefulness must match the plan's stage factory".into(),
            ));
        }
        if self.config.stage.stateful() && self.config.adaptations.iter().any(|a| !a.retrospective)
        {
            return Err(GridError::Config(
                "stateful stages require retrospective adaptations; a prospective \
                 routing change would strand operator state on the old owners"
                    .into(),
            ));
        }
        let recall_on = self.config.adaptations.iter().any(|a| a.retrospective);
        if recall_on
            && plan
                .sources
                .iter()
                .filter(|s| s.stream == StreamTag::Build)
                .count()
                > 1
        {
            return Err(GridError::Config(
                "the recall protocol supports at most one build source per stage".into(),
            ));
        }
        let partitions = stage.nodes.len();
        for a in &self.config.adaptations {
            if a.weights.len() != partitions {
                return Err(GridError::Config(format!(
                    "scripted adaptation has {} weights for {partitions} partitions",
                    a.weights.len()
                )));
            }
        }
        let partitions_u32 = u32::try_from(partitions)
            .map_err(|_| GridError::Config("too many partitions".into()))?;
        let router = Arc::new(Mutex::new(Router::from_policy(
            &stage.exchange.routing,
            partitions_u32,
        )?));
        let hash_routing = router.lock().bucket_count().is_some();
        let resilient = self.config.chaos.is_some();
        let logging_on = recall_on || resilient;
        let logs: Option<SharedLogs> = if logging_on {
            let mut v = Vec::with_capacity(plan.sources.len());
            // In resilient mode a whole window must fit one data block,
            // so a chaos drop or duplicate hits tuples and marker
            // atomically: marker delivery implies content delivery.
            let effective = self
                .config
                .checkpoint_interval
                .min(stage.exchange.buffer_tuples.max(1));
            for s in &plan.sources {
                let log = if s.stream == StreamTag::Build {
                    if resilient {
                        SharedRecoveryLog::retained(partitions, effective)?
                    } else {
                        SharedRecoveryLog::new(partitions, usize::MAX / 2)?
                    }
                } else if resilient {
                    SharedRecoveryLog::new(partitions, effective)?
                } else {
                    SharedRecoveryLog::new(partitions, self.config.checkpoint_interval)?
                };
                v.push(log);
            }
            Some(Arc::new(v))
        } else {
            None
        };
        let gate = recall_on.then(|| Arc::new(RecallGate::new(plan.sources.len())));
        let build_source = plan
            .sources
            .iter()
            .position(|s| s.stream == StreamTag::Build);
        let build_eos_needed = plan
            .sources
            .iter()
            .filter(|s| s.stream == StreamTag::Build)
            .count();
        let eos_needed = plan.sources.len();

        let started = Instant::now();
        let addr_hint = match self.config.transport {
            SocketTransport::Unix => Addr::scratch_unix(),
            SocketTransport::Tcp => Addr::loopback_tcp(),
        };
        let listener = Listener::bind(&addr_hint)?;
        let addr = listener.local_addr()?;

        // Per-worker link state, writer threads, and data rings.
        const RING_BLOCKS: usize = 8;
        let producers_n = plan.sources.len();
        let links: Vec<Arc<Mutex<LinkState>>> = (0..partitions)
            .map(|_| Arc::new(Mutex::new(LinkState::new())))
            .collect();
        let mut ring_txs: Vec<Vec<RingSender<Vec<u8>>>> =
            (0..producers_n).map(|_| Vec::new()).collect();
        let mut ring_rxs: Vec<Vec<RingReceiver<Vec<u8>>>> =
            (0..partitions).map(|_| Vec::new()).collect();
        for ring_tx_row in ring_txs.iter_mut() {
            for ring_rx_row in ring_rxs.iter_mut() {
                let (tx, rx) = ring::<Vec<u8>>(RING_BLOCKS);
                ring_tx_row.push(tx);
                ring_rx_row.push(rx);
            }
        }
        let mut wctls: Vec<Sender<WCtl>> = Vec::with_capacity(partitions);
        let mut writer_handles = Vec::with_capacity(partitions);
        for (w, rings) in ring_rxs.into_iter().enumerate() {
            let (tx, rx) = channel::<WCtl>();
            wctls.push(tx);
            let st = WriterState {
                worker: w,
                link: Arc::clone(&links[w]),
                chaos: self.config.chaos.clone(),
                rings,
                conn: None,
            };
            writer_handles.push(thread::spawn(move || writer_loop(st, rx)));
        }

        let (event_tx, event_rx) = channel::<Event>();
        let (reply_tx, reply_rx) = channel::<Reply>();
        let (handshake_tx, handshake_rx) = channel::<usize>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let reconnects = Arc::new(AtomicU64::new(0));
        let reader_handles: Arc<Mutex<Vec<thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));

        // The accept loop: handshake each connection, hand the stream's
        // read half to a fresh reader thread and its write half to the
        // worker's writer, which first retransmits whatever the worker
        // missed.
        let accept_handle = {
            let links = links.clone();
            let wctls = wctls.clone();
            let shutdown = Arc::clone(&shutdown);
            let reconnects = Arc::clone(&reconnects);
            let reader_handles = Arc::clone(&reader_handles);
            let chaos = self.config.chaos.clone();
            let logs = logs.clone();
            let router = Arc::clone(&router);
            let event_tx = event_tx.clone();
            let reply_tx = reply_tx.clone();
            let scale = self.config.cost_scale;
            thread::spawn(move || {
                let mut lives = vec![0u64; links.len()];
                loop {
                    let conn = match listener.accept() {
                        Ok(c) => c,
                        Err(_) => {
                            if shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            continue;
                        }
                    };
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    // Handshake: the first frame must be a Hello naming
                    // the worker and its link high-water mark.
                    let _ = conn.set_read_timeout(Some(Duration::from_millis(250)));
                    let mut dec = Decoder::new();
                    let mut frames: Vec<Frame> = Vec::new();
                    let deadline = Instant::now() + Duration::from_secs(5);
                    let mut buf = vec![0u8; 64 * 1024];
                    let mut conn = conn;
                    while frames.is_empty() && Instant::now() < deadline {
                        let n = match conn.read(&mut buf) {
                            Ok(0) => break,
                            Ok(n) => n,
                            Err(e)
                                if e.kind() == std::io::ErrorKind::WouldBlock
                                    || e.kind() == std::io::ErrorKind::TimedOut =>
                            {
                                continue
                            }
                            Err(_) => break,
                        };
                        match dec.feed(&buf[..n]) {
                            Ok(f) => frames.extend(f),
                            Err(_) => break,
                        }
                    }
                    let Some((index, peer_last)) = frames.first().and_then(link::parse_hello)
                    else {
                        continue;
                    };
                    let index = index as usize;
                    if index >= links.len() {
                        continue;
                    }
                    let leftovers: Vec<Frame> = frames.split_off(1);
                    lives[index] += 1;
                    if lives[index] > 1 {
                        reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    // Tell the worker what we already received so it can
                    // retransmit just the missing suffix.
                    let ack = link::hello_ack(links[index].lock().last_received());
                    if write_frame(&mut conn, &ack).is_err() {
                        continue;
                    }
                    let Ok(read_half) = conn.try_clone() else {
                        continue;
                    };
                    let ctx = ReaderCtx {
                        worker: index,
                        link: Arc::clone(&links[index]),
                        logs: logs.clone(),
                        router: Arc::clone(&router),
                        chaos: chaos.clone(),
                        writers: wctls.clone(),
                        events: event_tx.clone(),
                        replies: reply_tx.clone(),
                        shutdown: Arc::clone(&shutdown),
                        scale,
                    };
                    reader_handles.lock().push(thread::spawn(move || {
                        reader_loop(ctx, read_half, dec, leftovers)
                    }));
                    let _ = wctls[index].send(WCtl::Conn {
                        stream: conn,
                        peer_last,
                    });
                    let _ = handshake_tx.send(index);
                }
            })
        };

        // Launch the workers.
        let mut workers: Vec<WorkerJoin> = Vec::with_capacity(partitions);
        for i in 0..partitions {
            match &self.config.launch {
                WorkerLaunch::InProcess => {
                    let addr = addr.clone();
                    let services = Arc::clone(&self.config.services);
                    workers.push(WorkerJoin::Thread(thread::spawn(move || {
                        worker_main(&addr, i, &services)
                    })));
                }
                WorkerLaunch::Spawn { program } => {
                    let child = Command::new(program)
                        .arg("--addr")
                        .arg(addr.to_string())
                        .arg("--index")
                        .arg(i.to_string())
                        .stdin(Stdio::null())
                        .spawn()
                        .map_err(|e| {
                            GridError::Execution(format!(
                                "socket: spawning worker {i} ({}): {e}",
                                program.display()
                            ))
                        });
                    match child {
                        Ok(c) => workers.push(WorkerJoin::Process(c)),
                        Err(e) => {
                            force_teardown(
                                &shutdown,
                                &addr,
                                wctls,
                                writer_handles,
                                accept_handle,
                                &reader_handles,
                                workers,
                            );
                            return Err(e);
                        }
                    }
                }
            }
        }

        // Wait until every worker has completed its first handshake.
        {
            let mut connected = vec![false; partitions];
            let mut seen = 0usize;
            let deadline = Instant::now() + Duration::from_secs(15);
            while seen < partitions {
                let now = Instant::now();
                if now >= deadline {
                    force_teardown(
                        &shutdown,
                        &addr,
                        wctls,
                        writer_handles,
                        accept_handle,
                        &reader_handles,
                        workers,
                    );
                    return Err(GridError::Execution(
                        "socket: timed out waiting for workers to connect".into(),
                    ));
                }
                match handshake_rx.recv_timeout(deadline - now) {
                    Ok(i) => {
                        if i < partitions && !connected[i] {
                            connected[i] = true;
                            seen += 1;
                        }
                    }
                    Err(_) => continue,
                }
            }
        }

        // Ship each worker its configuration: the first sequenced frame
        // on the link, so it precedes every data block.
        for (w, wctl) in wctls.iter().enumerate().take(partitions) {
            let pert = self.config.perturbations.get(&stage.nodes[w]);
            let raw_stall = self
                .config
                .chaos
                .as_ref()
                .map_or(0.0, |c| c.slow_peer_stall_ms(w));
            let cfg = WireConfig {
                worker: w,
                resilient,
                logging: logging_on,
                hash_routing,
                cost_scale: self.config.cost_scale,
                receive_cost_ms: self.config.receive_cost_ms,
                read_stall_ms: if raw_stall.is_finite() {
                    raw_stall.max(0.0)
                } else {
                    0.0
                },
                cost_factor: perturbed(1.0, pert) - perturbed(0.0, pert),
                cost_extra_ms: perturbed(0.0, pert),
                eos_needed,
                build_eos_needed,
                build_source,
                stage: self.config.stage.clone(),
            };
            let _ = wctl.send(WCtl::Msg(cfg.encode()));
        }

        // Shared run counters.
        let routed_total = Arc::new(AtomicU64::new(0));
        let restaged_total = Arc::new(AtomicU64::new(0));
        let retransmitted_total = Arc::new(AtomicU64::new(0));
        let send_failures_total = Arc::new(AtomicU64::new(0));
        let delivery_gaps: Arc<Mutex<Vec<DeliveryGap>>> = Arc::new(Mutex::new(Vec::new()));
        let producers_live = Arc::new(AtomicU64::new(producers_n as u64));

        // Producer threads: scan, route, stage, and flush encoded
        // blocks into the per-worker rings. A direct port of the
        // threaded producers with ring payloads pre-encoded.
        let mut producer_handles = Vec::new();
        for (sidx, source) in plan.sources.iter().enumerate() {
            let table = self.catalog.get(&source.table)?;
            let router = Arc::clone(&router);
            let rings = std::mem::take(&mut ring_txs[sidx]);
            let logs = logs.clone();
            let gate = gate.clone();
            let scan_cost = source.scan_cost_ms;
            let stream = source.stream;
            let scale = self.config.cost_scale;
            let buffer_tuples = stage.exchange.buffer_tuples;
            let chaos = self.config.chaos.clone();
            let retry_policy = self.config.delivery_retry.clone();
            let gaps = Arc::clone(&delivery_gaps);
            let retransmitted = Arc::clone(&retransmitted_total);
            let send_failures = Arc::clone(&send_failures_total);
            let routed_total = Arc::clone(&routed_total);
            let restaged_total = Arc::clone(&restaged_total);
            let live = Arc::clone(&producers_live);
            producer_handles.push(thread::spawn(move || {
                let _live = Decrement(live);
                // Counts this producer as done even if it panics, so the
                // recall barrier can never wait on a dead thread.
                let _guard = gate.as_ref().map(|g| ProducerGuard::new(Arc::clone(g)));
                let mut buffers: Vec<Vec<Staged>> = (0..rings.len()).map(|_| Vec::new()).collect();
                // Ships one staged block to `dest`, paying the modelled
                // scan time accumulated in `due` first.
                let flush = |dest: usize,
                             buffers: &mut Vec<Vec<Staged>>,
                             disconnected: &mut Vec<bool>,
                             due: &mut f64,
                             retransmit: bool| {
                    if *due > 0.0 {
                        spin_for(*due, scale);
                        *due = 0.0;
                    }
                    let items = std::mem::take(&mut buffers[dest]);
                    if items.is_empty() {
                        return;
                    }
                    let tuples = items
                        .iter()
                        .filter(|s| matches!(s, Staged::Tuple(..)))
                        .count();
                    let fate = chaos
                        .as_ref()
                        .map_or(NetAction::Deliver, |c| c.on_data(sidx, dest));
                    if matches!(fate, NetAction::Drop) {
                        // The whole block vanishes — tuples and markers
                        // together; the retry epilogue retransmits the
                        // unacknowledged windows.
                        return;
                    }
                    if let NetAction::DelayMs(extra) = fate {
                        if extra.is_finite() && extra > 0.0 {
                            spin_for(extra, scale);
                        }
                    }
                    let payload = enc_data(sidx, retransmit, &items);
                    let mut failed = 0usize;
                    if matches!(fate, NetAction::Duplicate) {
                        // At-least-once transport: the cloned block is
                        // absorbed by the worker's block-range dedup.
                        if rings[dest].push(payload.clone()).is_err() {
                            failed += tuples;
                        }
                    }
                    if rings[dest].push(payload).is_err() {
                        failed += tuples;
                    }
                    if failed > 0 {
                        disconnected[dest] = true;
                        send_failures.fetch_add(failed as u64, Ordering::Relaxed);
                    }
                };
                // After a recall, unsent staged tuples are re-routed
                // under the new distribution (their log entries follow);
                // markers stay with their original destination so the
                // windows they close remain intact.
                let restage = |buffers: &mut Vec<Vec<Staged>>| -> u64 {
                    let mut moved = 0u64;
                    let taken: Vec<Vec<Staged>> = buffers.iter_mut().map(std::mem::take).collect();
                    for (old_dest, items) in taken.into_iter().enumerate() {
                        for item in items {
                            match item {
                                Staged::Tuple(tag, tuple) => {
                                    let dest = {
                                        let mut r = router.lock();
                                        r.route(tag, &tuple).unwrap_or(old_dest as u32)
                                    } as usize;
                                    if dest != old_dest {
                                        moved += 1;
                                        if let Some(logs) = &logs {
                                            let seq = tuple.seq();
                                            let _ = logs[sidx].migrate_matching(
                                                old_dest as u32,
                                                dest as u32,
                                                |(s, t)| *s == tag && t.seq() == seq,
                                            );
                                        }
                                    }
                                    buffers[dest].push(Staged::Tuple(tag, tuple));
                                }
                                marker => buffers[old_dest].push(marker),
                            }
                        }
                    }
                    moved
                };
                let mut epoch = gate.as_ref().map(|g| g.epoch()).unwrap_or(0);
                let mut due = 0.0f64;
                let mut disconnected = vec![false; rings.len()];
                for row in table.rows() {
                    if let Some(g) = &gate {
                        let now_epoch = g.pause_point();
                        if now_epoch != epoch {
                            epoch = now_epoch;
                            restaged_total.fetch_add(restage(&mut buffers), Ordering::Relaxed);
                        }
                    }
                    let stall = chaos
                        .as_ref()
                        .map_or(0.0, |c| c.stall_ms(StallSite::Producer, sidx));
                    due += scan_cost
                        + if stall.is_finite() {
                            stall.max(0.0)
                        } else {
                            0.0
                        };
                    let dest = {
                        let mut r = router.lock();
                        r.route(stream, row).unwrap_or(0)
                    } as usize;
                    buffers[dest].push(Staged::Tuple(stream, row.clone()));
                    let mut window_closed = false;
                    if let Some(logs) = &logs {
                        if let Ok(Some(cp)) = logs[sidx].record(dest as u32, (stream, row.clone()))
                        {
                            buffers[dest].push(Staged::Marker(cp, logs[sidx].epoch()));
                            window_closed = true;
                        }
                    }
                    routed_total.fetch_add(1, Ordering::Relaxed);
                    if resilient {
                        // Flush at window boundaries only, so a whole
                        // window (tuples plus marker) always travels in
                        // one block.
                        if window_closed {
                            flush(dest, &mut buffers, &mut disconnected, &mut due, false);
                        }
                    } else if buffers[dest].len() >= buffer_tuples {
                        flush(dest, &mut buffers, &mut disconnected, &mut due, false);
                    }
                }
                // A recall in flight must complete (and the buffers
                // restage) before the final flush.
                if let Some(g) = &gate {
                    let now_epoch = g.pause_point();
                    if now_epoch != epoch {
                        epoch = now_epoch;
                        restaged_total.fetch_add(restage(&mut buffers), Ordering::Relaxed);
                    }
                }
                for dest in 0..rings.len() {
                    if stream != StreamTag::Build || resilient {
                        if let Some(logs) = &logs {
                            if let Ok(Some(cp)) = logs[sidx].force_checkpoint(dest as u32) {
                                buffers[dest].push(Staged::Marker(cp, logs[sidx].epoch()));
                            }
                        }
                    }
                    flush(dest, &mut buffers, &mut disconnected, &mut due, false);
                    if !resilient {
                        // Eos rides the data ring so it trails every
                        // block in FIFO order.
                        let _ = rings[dest].push(enc_eos(stream, sidx));
                    }
                }
                if resilient {
                    // Delivery-retry epilogue: wait out a deterministic
                    // jittered backoff for in-flight acks, retransmit
                    // any window still unacknowledged, and repeat within
                    // the retry budget; a destination that never acks
                    // becomes an explicit DeliveryGap. Only then does
                    // Eos go out.
                    if let Some(log_vec) = &logs {
                        let mut backoff = RetryBackoff::new(&retry_policy, sidx as u64);
                        let mut gapped = vec![false; rings.len()];
                        'retry: for attempt in 0..=retry_policy.max_retries {
                            // A destination whose ring closed can never
                            // ack again (there is no failover on this
                            // substrate): record its gap immediately
                            // instead of sleeping out the budget.
                            for dest in 0..rings.len() {
                                if !disconnected[dest] || gapped[dest] {
                                    continue;
                                }
                                gapped[dest] = true;
                                buffers[dest].clear();
                                let _ = log_vec[sidx].force_checkpoint(dest as u32);
                                let windows = log_vec[sidx].undelivered_windows(dest as u32);
                                if !windows.is_empty() {
                                    let tuples: u64 =
                                        windows.iter().map(|(_, w)| w.len() as u64).sum();
                                    gaps.lock().push(DeliveryGap {
                                        source: sidx,
                                        dest,
                                        windows: windows.len() as u64,
                                        tuples,
                                    });
                                }
                            }
                            if (0..rings.len()).all(|d| {
                                gapped[d] || log_vec[sidx].undelivered_windows(d as u32).is_empty()
                            }) {
                                break 'retry;
                            }
                            // Sleep in short slices with a pause-point
                            // in each, so a concurrent recall can still
                            // park this producer.
                            let mut remaining = backoff.delay_ms(attempt);
                            while remaining > 0.0 {
                                if let Some(g) = &gate {
                                    let now_epoch = g.pause_point();
                                    if now_epoch != epoch {
                                        epoch = now_epoch;
                                        restaged_total
                                            .fetch_add(restage(&mut buffers), Ordering::Relaxed);
                                        for dest in 0..rings.len() {
                                            flush(
                                                dest,
                                                &mut buffers,
                                                &mut disconnected,
                                                &mut due,
                                                false,
                                            );
                                        }
                                    }
                                }
                                let slice = remaining.min(5.0);
                                thread::sleep(Duration::from_secs_f64(slice / 1000.0));
                                remaining -= slice;
                            }
                            // Close any window left open since the final
                            // scan flush and push its marker out with
                            // whatever the buffer holds.
                            for dest in 0..rings.len() {
                                if gapped[dest] {
                                    continue;
                                }
                                if let Ok(Some(cp)) = log_vec[sidx].force_checkpoint(dest as u32) {
                                    buffers[dest].push(Staged::Marker(cp, log_vec[sidx].epoch()));
                                    flush(dest, &mut buffers, &mut disconnected, &mut due, false);
                                }
                            }
                            let mut undelivered_any = false;
                            for dest in 0..rings.len() {
                                if gapped[dest] {
                                    continue;
                                }
                                let windows = log_vec[sidx].undelivered_windows(dest as u32);
                                if windows.is_empty() {
                                    continue;
                                }
                                undelivered_any = true;
                                if attempt == retry_policy.max_retries {
                                    let tuples: u64 =
                                        windows.iter().map(|(_, w)| w.len() as u64).sum();
                                    gaps.lock().push(DeliveryGap {
                                        source: sidx,
                                        dest,
                                        windows: windows.len() as u64,
                                        tuples,
                                    });
                                } else {
                                    let epoch_now = log_vec[sidx].epoch();
                                    for (cp, items) in windows {
                                        retransmitted
                                            .fetch_add(items.len() as u64, Ordering::Relaxed);
                                        for (tag, t) in items {
                                            buffers[dest].push(Staged::Tuple(tag, t));
                                        }
                                        buffers[dest].push(Staged::Marker(cp, epoch_now));
                                        flush(
                                            dest,
                                            &mut buffers,
                                            &mut disconnected,
                                            &mut due,
                                            true,
                                        );
                                    }
                                }
                            }
                            if !undelivered_any {
                                break 'retry;
                            }
                        }
                    }
                    for ring_tx in &rings {
                        let _ = ring_tx.push(enc_eos(stream, sidx));
                    }
                }
            }));
        }

        // The scripted-adaptation driver.
        let driver_stop = Arc::new(AtomicBool::new(false));
        let driver_handle = if self.config.adaptations.is_empty() {
            drop(reply_rx);
            None
        } else {
            let mut adaptations = self.config.adaptations.clone();
            adaptations.sort_by_key(|a| a.after_routed);
            let driver = Driver {
                router: Arc::clone(&router),
                logs: logs.clone(),
                writers: wctls.clone(),
                resilient,
                build_source,
                stats: DriverStats::default(),
            };
            let gate = gate.clone();
            let routed_total = Arc::clone(&routed_total);
            let producers_live = Arc::clone(&producers_live);
            let stop = Arc::clone(&driver_stop);
            let recall_timeout = Duration::from_millis(self.config.recall_timeout_ms);
            Some(thread::spawn(move || {
                run_driver(
                    driver,
                    adaptations,
                    gate,
                    routed_total,
                    producers_live,
                    stop,
                    reply_rx,
                    recall_timeout,
                )
            }))
        };

        // Join producers first; a panicked producer never pushed its
        // end-of-stream frames, and without them the workers wait
        // forever.
        let mut panicked: Vec<String> = Vec::new();
        for (i, h) in producer_handles.into_iter().enumerate() {
            if h.join().is_err() {
                panicked.push(format!("producer {i}"));
                for w in &wctls {
                    let _ = w.send(WCtl::Barrier(enc_eos(plan.sources[i].stream, i)));
                }
            }
        }

        // Collect results and per-worker completions.
        let mut results: Vec<Tuple> = Vec::new();
        let mut per_partition = vec![0u64; partitions];
        let mut seen_done = vec![false; partitions];
        let mut dedup_peak_entries = 0u64;
        let mut done = 0usize;
        let mut run_error: Option<GridError> = None;
        let deadline = Instant::now() + Duration::from_secs(120);
        while done < partitions {
            let now = Instant::now();
            if now >= deadline {
                run_error = Some(GridError::Execution(
                    "socket: timed out waiting for workers to finish".into(),
                ));
                break;
            }
            match event_rx.recv_timeout(deadline - now) {
                Ok(Event::Results(batch)) => results.extend(batch),
                Ok(Event::Done {
                    worker,
                    processed,
                    dedup_peak,
                }) => {
                    if worker < partitions && !seen_done[worker] {
                        seen_done[worker] = true;
                        per_partition[worker] = processed;
                        dedup_peak_entries = dedup_peak_entries.max(dedup_peak);
                        done += 1;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    run_error = Some(GridError::Execution(
                        "socket: event channel closed before completion".into(),
                    ));
                    break;
                }
            }
        }

        // Stop the driver (it also exits promptly on the stop flag when
        // an adaptation threshold was never reached).
        driver_stop.store(true, Ordering::SeqCst);
        let stats = match driver_handle {
            Some(h) => match h.join() {
                Ok(s) => s,
                Err(_) => {
                    panicked.push("adaptation driver".into());
                    DriverStats::default()
                }
            },
            None => DriverStats::default(),
        };

        if let Some(err) = run_error {
            force_teardown(
                &shutdown,
                &addr,
                wctls,
                writer_handles,
                accept_handle,
                &reader_handles,
                workers,
            );
            return Err(err);
        }

        // Graceful teardown. SHUTDOWN rides a ring barrier so it trails
        // any residual data; writers and the accept loop stay alive
        // while workers exit, so a worker whose connection died at the
        // wrong moment can still reconnect and receive it.
        for w in &wctls {
            let _ = w.send(WCtl::Barrier(vec![tag::SHUTDOWN]));
        }
        for (i, w) in workers.into_iter().enumerate() {
            match w {
                WorkerJoin::Thread(h) => match h.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => panicked.push(format!("worker {i}: {e}")),
                    Err(_) => panicked.push(format!("worker {i}")),
                },
                WorkerJoin::Process(mut c) => match c.wait() {
                    Ok(status) if status.success() => {}
                    Ok(status) => panicked.push(format!("worker process {i}: {status}")),
                    Err(e) => panicked.push(format!("worker process {i}: {e}")),
                },
            }
        }
        for w in &wctls {
            let _ = w.send(WCtl::Shutdown);
        }
        drop(wctls);
        for h in writer_handles {
            if h.join().is_err() {
                panicked.push("writer".into());
            }
        }
        shutdown.store(true, Ordering::SeqCst);
        let _ = Stream::connect(&addr);
        if accept_handle.join().is_err() {
            panicked.push("accept loop".into());
        }
        for h in std::mem::take(&mut *reader_handles.lock()) {
            if h.join().is_err() {
                panicked.push("reader".into());
            }
        }
        if let Addr::Unix(p) = &addr {
            let _ = std::fs::remove_file(p);
        }
        if !panicked.is_empty() {
            return Err(GridError::Execution(format!(
                "socket thread(s)/worker(s) failed: {}",
                panicked.join(", ")
            )));
        }

        if resilient {
            // At-least-once transport can double-deliver results across
            // a reconnect seam; collapse exact duplicates so the report
            // is effectively-once.
            let mut seen = HashSet::new();
            results.retain(|t: &Tuple| seen.insert((t.seq(), format!("{:?}", t.values()))));
        }
        let final_distribution = router.lock().current_distribution().weights().to_vec();
        let delivery_gaps = std::mem::take(&mut *delivery_gaps.lock());
        Ok(SocketReport {
            wall_ms: started.elapsed().as_secs_f64() * 1000.0,
            results,
            per_partition_processed: per_partition,
            adaptations_deployed: stats.deployed,
            recalls_completed: stats.recalls_completed,
            recalls_aborted: stats.recalls_aborted,
            state_tuples_migrated: stats.state_moved,
            tuples_recalled: stats.recalled + restaged_total.load(Ordering::Relaxed),
            tuples_retransmitted: retransmitted_total.load(Ordering::Relaxed),
            delivery_gaps,
            send_failures: send_failures_total.load(Ordering::Relaxed),
            log_audits: logs
                .map(|logs| logs.iter().map(SharedRecoveryLog::audit).collect())
                .unwrap_or_default(),
            dedup_peak_entries,
            final_distribution,
            reconnects: reconnects.load(Ordering::Relaxed),
        })
    }
}

// ---------------------------------------------------------------------------
// The worker side.
// ---------------------------------------------------------------------------

/// The worker's write half: every outgoing payload is stamped into the
/// link outbox *unconditionally* and written best-effort. A failed
/// write flips `io_ok`; the read loop then reconnects and the handshake
/// retransmits everything the coordinator has not acknowledged.
struct WireOut<'a> {
    link: &'a mut LinkState,
    conn: &'a mut Stream,
    io_ok: &'a mut bool,
}

impl WireOut<'_> {
    fn send(&mut self, payload: Vec<u8>) {
        let frame = self.link.stamp(kind::MSG, payload);
        if *self.io_ok && write_frame(self.conn, &frame).is_err() {
            *self.io_ok = false;
        }
    }
}

/// What `handle_msg` tells the read loop to do next.
enum Flow {
    Continue,
    Done,
}

/// Everything a worker accumulates over the run. Lives *outside* the
/// per-connection loop so a reconnection resumes mid-query.
struct WorkerState {
    cfg: WireConfig,
    evaluator: Box<dyn PartitionEvaluator>,
    out: Vec<Tuple>,
    processed: u64,
    due: f64,
    eos_seen: usize,
    build_eos_seen: usize,
    /// Probe tuples that arrived before the build phase completed, with
    /// the source that logged them.
    held_probes: Vec<(usize, Tuple)>,
    /// Probe-window acks deferred while the build phase is incomplete:
    /// an ack is a processing receipt, and held probes are unprocessed.
    pending_acks: Vec<(usize, Checkpoint, u64)>,
    dedup: DedupFilter,
    done_sent: bool,
}

impl WorkerState {
    fn new(cfg: WireConfig, evaluator: Box<dyn PartitionEvaluator>) -> Self {
        WorkerState {
            cfg,
            evaluator,
            out: Vec::new(),
            processed: 0,
            due: 0.0,
            eos_seen: 0,
            build_eos_seen: 0,
            held_probes: Vec::new(),
            pending_acks: Vec::new(),
            dedup: DedupFilter::new(),
            done_sent: false,
        }
    }

    fn building(&self) -> bool {
        self.cfg.build_eos_needed > 0 && self.build_eos_seen < self.cfg.build_eos_needed
    }

    /// Pays the accrued modelled cost as one sleep.
    fn pay_due(&mut self) {
        if self.due > 0.0 {
            spin_for(self.due, self.cfg.cost_scale);
            self.due = 0.0;
        }
    }

    /// Evaluates one tuple, accruing its (perturbed, linearized) cost.
    fn process_tuple(&mut self, stream: StreamTag, tuple: &Tuple) {
        let Ok(outcome) = self.evaluator.process(stream, tuple) else {
            return;
        };
        self.due += outcome.base_cost_ms * self.cfg.cost_factor
            + self.cfg.cost_extra_ms
            + self.cfg.receive_cost_ms;
        self.processed += 1;
        self.out.extend(outcome.outputs);
    }

    /// Ships a checkpoint ack. In resilient mode the pending outputs go
    /// first: once the coordinator applies the ack the window can never
    /// replay, so its outputs must already be owned downstream. The
    /// dedup eviction is optimistic (the worker cannot see the log's
    /// verdict); if the ack is dropped at the coordinator's chaos seam
    /// the window retransmits, and the already-acked marker id shadows
    /// its tuples via `is_acked` — the filter converges either way.
    fn ack_out(&mut self, wire: &mut WireOut<'_>, source: usize, cp: Checkpoint, epoch: u64) {
        if !self.cfg.logging {
            return;
        }
        if self.cfg.resilient && !self.out.is_empty() {
            let batch = std::mem::take(&mut self.out);
            wire.send(enc_results(&batch));
        }
        wire.send(enc_ack(source, cp, epoch));
        if self.cfg.resilient {
            self.dedup.window_acked(source, cp.id);
        }
    }

    /// Consumes one DATA block: the socket-side port of the threaded
    /// consumer's `handle_block`, with the ownership check for
    /// retransmitted tuples replaced by a `STRAY` forward (the worker
    /// has no router).
    fn handle_data(&mut self, r: &mut Reader<'_>, wire: &mut WireOut<'_>) -> Result<()> {
        let source = r.varint()? as usize;
        let retransmit = r.u8()? != 0;
        let count = r.varint()? as usize;
        let mut items: Vec<Staged> = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            match r.u8()? {
                0 => {
                    let stream = get_stream(r)?;
                    let tuple = wire::get_tuple(r)?;
                    items.push(Staged::Tuple(stream, tuple));
                }
                1 => {
                    let dest = u32::try_from(r.varint()?)
                        .map_err(|_| GridError::Execution("socket: marker dest overflow".into()))?;
                    let id = r.varint()?;
                    let epoch = r.varint()?;
                    items.push(Staged::Marker(Checkpoint { dest, id }, epoch));
                }
                other => {
                    return Err(GridError::Execution(format!(
                        "socket: unknown staged item kind {other}"
                    )))
                }
            }
        }
        // Whole-block range key over the tuples, mirroring
        // `Block::range_key`: one set probe skips an identically packed
        // duplicate block.
        let mut first = None;
        let mut last = 0u64;
        let mut tuples = 0u64;
        for it in &items {
            if let Staged::Tuple(_, t) = it {
                let s = t.seq();
                if first.is_none() {
                    first = Some(s);
                }
                last = s;
                tuples += 1;
            }
        }
        let dup = self.cfg.resilient
            && first.is_some_and(|f| self.dedup.block_is_dup(source, (f, last, tuples)));
        let building = self.building();
        // The covering marker for each tuple is the next one at a
        // higher index: an already-acked marker id shadows every tuple
        // ahead of it even after their per-tuple keys were evicted.
        let marker_ids: Vec<(usize, u64)> = items
            .iter()
            .enumerate()
            .filter_map(|(idx, item)| match item {
                Staged::Marker(cp, _) => Some((idx, cp.id)),
                Staged::Tuple(..) => None,
            })
            .collect();
        let mut next_marker = 0usize;
        for (idx, staged) in items.into_iter().enumerate() {
            while next_marker < marker_ids.len() && marker_ids[next_marker].0 < idx {
                next_marker += 1;
            }
            match staged {
                Staged::Tuple(stream, tuple) => {
                    if dup {
                        continue;
                    }
                    if self.cfg.resilient {
                        if marker_ids
                            .get(next_marker)
                            .is_some_and(|&(_, id)| self.dedup.is_acked(source, id))
                        {
                            continue;
                        }
                        if self.dedup.tuple_is_dup(source, tuple.seq()) {
                            continue;
                        }
                    }
                    if retransmit && self.cfg.hash_routing {
                        // A retransmitted window was addressed before any
                        // bucket moves since it closed. The worker cannot
                        // verify ownership, so it ships the tuple back and
                        // the coordinator routes it to the current owner
                        // (the dedup record above makes the forward
                        // single-shot).
                        wire.send(enc_forward(tag::STRAY, stream, source, &tuple));
                        continue;
                    }
                    if stream == StreamTag::Probe && building {
                        self.held_probes.push((source, tuple));
                    } else {
                        self.process_tuple(stream, &tuple);
                    }
                }
                Staged::Marker(cp, epoch) => {
                    if self.cfg.resilient {
                        self.dedup.close_window(source, cp.id);
                    }
                    if self.cfg.resilient && building && Some(source) != self.cfg.build_source {
                        self.pending_acks.push((source, cp, epoch));
                    } else {
                        self.ack_out(wire, source, cp, epoch);
                    }
                }
            }
        }
        self.pay_due();
        Ok(())
    }

    fn handle_eos(&mut self, r: &mut Reader<'_>, wire: &mut WireOut<'_>) -> Result<()> {
        let stream = get_stream(r)?;
        let _source = r.varint()? as usize;
        self.eos_seen += 1;
        if stream == StreamTag::Build {
            self.build_eos_seen += 1;
        }
        if self.cfg.build_eos_needed > 0 && self.build_eos_seen == self.cfg.build_eos_needed {
            // The build phase is complete: replay the held probes,
            // paying the accrued cost in slices.
            for (n, (_source, tuple)) in std::mem::take(&mut self.held_probes)
                .into_iter()
                .enumerate()
            {
                if n % 16 == 0 {
                    self.pay_due();
                }
                self.process_tuple(StreamTag::Probe, &tuple);
            }
            self.pay_due();
            // The held probes are processed: their deferred window acks
            // are now true processing receipts.
            for (source, cp, epoch) in std::mem::take(&mut self.pending_acks) {
                self.ack_out(wire, source, cp, epoch);
            }
        }
        if self.eos_seen == self.cfg.eos_needed && !self.done_sent {
            self.done_sent = true;
            self.pay_due();
            if !self.out.is_empty() {
                let batch = std::mem::take(&mut self.out);
                wire.send(enc_results(&batch));
            }
            wire.send(enc_done(self.processed, self.dedup.peak()));
            // Keep reading: late recalls and the SHUTDOWN frame still
            // arrive after DONE.
        }
        Ok(())
    }

    fn handle_migrate(&mut self, r: &mut Reader<'_>, wire: &mut WireOut<'_>) -> Result<()> {
        let token = r.varint()?;
        let bucket_count = match r.varint()? {
            0 => None,
            b => Some(
                u32::try_from(b - 1)
                    .map_err(|_| GridError::Execution("socket: bucket count overflow".into()))?,
            ),
        };
        let n = r.varint()? as usize;
        let mut outgoing = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            outgoing.push(
                u32::try_from(r.varint()?)
                    .map_err(|_| GridError::Execution("socket: bucket index overflow".into()))?,
            );
        }
        // Surrender the outgoing buckets' operator state and every held
        // probe; the coordinator routes them (keepers come straight
        // back as MIGRATED and are re-held).
        let mut entries: Vec<(StreamTag, usize, Tuple)> = Vec::new();
        if let Some(bc) = bucket_count {
            if !outgoing.is_empty() {
                let b = self.cfg.build_source.unwrap_or(0);
                for (stream, tuple) in self.evaluator.extract_state(bc, &outgoing) {
                    entries.push((stream, b, tuple));
                }
            }
        }
        for (source, tuple) in std::mem::take(&mut self.held_probes) {
            entries.push((StreamTag::Probe, source, tuple));
        }
        if !entries.is_empty() {
            wire.send(enc_state_out(&entries));
        }
        wire.send(enc_token(tag::MIGRATE_DONE, token));
        Ok(())
    }
}

/// Dispatches one fresh application frame from the coordinator.
fn handle_msg(
    state: &mut Option<WorkerState>,
    wire: &mut WireOut<'_>,
    payload: &[u8],
    services: &ServiceResolver,
    index: usize,
) -> Result<Flow> {
    let mut r = Reader::new(payload);
    let t = r.u8()?;
    if t == tag::SHUTDOWN {
        return Ok(Flow::Done);
    }
    if t == tag::CONFIG {
        // A duplicate CONFIG after a mid-handshake reconnect is
        // harmless; the first one wins.
        if state.is_none() {
            let cfg = WireConfig::decode(&mut r)?;
            if cfg.worker != index {
                return Err(GridError::Execution(format!(
                    "socket: worker {index} received config addressed to worker {}",
                    cfg.worker
                )));
            }
            let evaluator = cfg.stage.build(index as u32, services)?;
            *state = Some(WorkerState::new(cfg, evaluator));
        }
        return Ok(Flow::Continue);
    }
    let Some(st) = state.as_mut() else {
        return Err(GridError::Execution(format!(
            "socket: worker {index} received message tag {t} before CONFIG"
        )));
    };
    match t {
        tag::DATA => st.handle_data(&mut r, wire)?,
        tag::EOS => st.handle_eos(&mut r, wire)?,
        tag::DRAIN => {
            // Link FIFO means everything sent before the barrier is
            // already processed, which is exactly what Drained promises.
            let token = r.varint()?;
            wire.send(enc_token(tag::DRAINED, token));
        }
        tag::MIGRATE => st.handle_migrate(&mut r, wire)?,
        tag::MIGRATED => {
            // Recorded but always processed: bucket ping-pong
            // legitimately re-delivers a seq, and the recall barrier
            // already guarantees exactly-once for this path.
            let (stream, source, tuple) = dec_forward(&mut r)?;
            if st.cfg.resilient {
                st.dedup.note_delivered(source, tuple.seq());
            }
            if stream == StreamTag::Probe && st.building() {
                st.held_probes.push((source, tuple));
            } else {
                st.process_tuple(stream, &tuple);
                st.pay_due();
            }
        }
        tag::REINSERT => {
            // A recall routed state back to the worker that extracted
            // it: re-insert raw, uncounted.
            let (stream, _source, tuple) = dec_forward(&mut r)?;
            let _ = st.evaluator.process(stream, &tuple);
        }
        other => {
            return Err(GridError::Execution(format!(
                "socket: unknown coordinator frame tag {other}"
            )))
        }
    }
    Ok(Flow::Continue)
}

/// Runs one evaluator worker to completion: connect (and reconnect) to
/// the coordinator at `addr`, identify as worker `index`, and process
/// frames until SHUTDOWN. This is the entry point for both in-process
/// worker threads and the `gridq-node` binary.
pub fn worker_main(addr: &Addr, index: usize, services: &ServiceResolver) -> Result<()> {
    let mut link = LinkState::new();
    let mut state: Option<WorkerState> = None;
    'life: loop {
        let mut conn = {
            let mut attempt = 0u32;
            loop {
                match Stream::connect(addr) {
                    Ok(c) => break c,
                    Err(e) => {
                        attempt += 1;
                        if attempt >= 100 {
                            return Err(GridError::Execution(format!(
                                "socket: worker {index} cannot reach the coordinator: {e}"
                            )));
                        }
                        thread::sleep(Duration::from_millis(3));
                    }
                }
            }
        };
        let hello = link::hello(index as u64, link.last_received());
        if write_frame(&mut conn, &hello).is_err() {
            continue 'life;
        }
        let mut dec = Decoder::new();
        let mut io_ok = true;
        let mut handshook = false;
        let mut buf = vec![0u8; 64 * 1024];
        loop {
            if let Some(st) = &state {
                // The slow-peer seam: stall before draining the socket,
                // so the kernel buffers fill and flow control pushes
                // back on the coordinator's writer.
                if st.cfg.read_stall_ms > 0.0 {
                    spin_for(st.cfg.read_stall_ms, st.cfg.cost_scale);
                }
            }
            let n = match conn.read(&mut buf) {
                Ok(0) => continue 'life,
                Ok(n) => n,
                Err(_) => continue 'life,
            };
            let frames = dec.feed(&buf[..n])?;
            for f in frames {
                match link.on_receive(&f) {
                    Receive::Control => {
                        if !handshook {
                            if let Some(peer_last) = link::parse_hello_ack(&f) {
                                handshook = true;
                                for rf in link.retransmit_after(peer_last) {
                                    if write_frame(&mut conn, &rf).is_err() {
                                        io_ok = false;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    Receive::Duplicate => {}
                    Receive::Fresh => {
                        let mut wire = WireOut {
                            link: &mut link,
                            conn: &mut conn,
                            io_ok: &mut io_ok,
                        };
                        match handle_msg(&mut state, &mut wire, &f.payload, services, index)? {
                            Flow::Done => return Ok(()),
                            Flow::Continue => {}
                        }
                    }
                }
            }
            if io_ok && link.owes_ack() {
                let af = link.ack_frame();
                if write_frame(&mut conn, &af).is_err() {
                    io_ok = false;
                }
            }
            if !io_ok {
                continue 'life;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::{QueryId, SubplanId, Value};
    use gridq_engine::distributed::{
        ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
    };
    use gridq_engine::table::Table;

    fn int_table(name: &str, n: usize) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
            .collect();
        Arc::new(Table::new(name, schema, rows).unwrap())
    }

    /// Resolves the test workload's only service; both the in-process
    /// workers and the coordinator-side validation use it.
    fn resolver() -> ServiceResolver {
        standard_resolver()
    }

    fn wire_call_spec(table: &Arc<Table>) -> WireStageSpec {
        WireStageSpec::ServiceCall {
            input_schema: table.schema().clone(),
            service: "Square".into(),
            service_cost_ms: 1.0,
            arg_cols: vec![0],
            output_name: "sq".into(),
            keep_input: false,
        }
    }

    fn wire_join_spec(build: &Arc<Table>, probe: &Arc<Table>) -> WireStageSpec {
        WireStageSpec::HashJoin {
            build_schema: build.schema().clone(),
            probe_schema: probe.schema().clone(),
            build_key: 0,
            probe_key: 0,
            build_cost_ms: 0.1,
            probe_cost_ms: 0.5,
        }
    }

    fn call_plan(table: &Arc<Table>, partitions: usize) -> DistributedPlan {
        let factory = ServiceCallFactory::new(
            table.schema(),
            resolver()("Square", 1.0).unwrap(),
            vec![Expr::col(0)],
            "sq",
            false,
            ServiceRegistry::new(),
        );
        DistributedPlan {
            query: QueryId::new(1),
            sources: vec![SourceSpec {
                table: table.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Single,
                scan_cost_ms: 0.4,
            }],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: (0..partitions).map(|i| NodeId::new(i as u32 + 1)).collect(),
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::Weighted {
                        initial: DistributionVector::uniform(partitions),
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        }
    }

    fn join_plan(
        build: &Arc<Table>,
        probe: &Arc<Table>,
        build_scan_cost_ms: f64,
        probe_scan_cost_ms: f64,
    ) -> DistributedPlan {
        let factory = HashJoinFactory::new(build.schema(), probe.schema(), 0, 0, 0.1, 0.5);
        DistributedPlan {
            query: QueryId::new(2),
            sources: vec![
                SourceSpec {
                    table: build.name().to_string(),
                    node: NodeId::new(0),
                    stream: StreamTag::Build,
                    scan_cost_ms: build_scan_cost_ms,
                },
                SourceSpec {
                    table: probe.name().to_string(),
                    node: NodeId::new(0),
                    stream: StreamTag::Probe,
                    scan_cost_ms: probe_scan_cost_ms,
                },
            ],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: vec![NodeId::new(1), NodeId::new(2)],
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::HashBuckets {
                        bucket_count: 16,
                        initial: DistributionVector::uniform(2),
                        keys: StreamKeys {
                            build: Some(0),
                            probe: Some(0),
                            single: None,
                        },
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        }
    }

    fn catalog(tables: &[&Arc<Table>]) -> Catalog {
        let mut c = Catalog::new();
        for t in tables {
            c.register(Arc::clone(t));
        }
        c
    }

    /// Asserts the results are exactly the squares of `0..n`, in any
    /// order (sequence numbers are renumbered by operators).
    fn assert_squares(results: &[Tuple], n: usize) {
        let mut values: Vec<i64> = results
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        values.sort_unstable();
        let expected: Vec<i64> = (0..n as i64).map(|i| i * i).collect();
        assert_eq!(values, expected);
    }

    fn run_call(
        table: &Arc<Table>,
        partitions: usize,
        configure: impl FnOnce(&mut SocketConfig),
    ) -> SocketReport {
        let plan = call_plan(table, partitions);
        let mut config = SocketConfig::new(wire_call_spec(table), resolver());
        config.cost_scale = 0.002;
        configure(&mut config);
        SocketExecutor::new(catalog(&[table]), config)
            .run(&plan)
            .unwrap()
    }

    #[test]
    fn static_run_squares_every_tuple_over_unix_sockets() {
        let table = int_table("t", 200);
        let report = run_call(&table, 2, |_| {});
        assert_squares(&report.results, 200);
        assert_eq!(report.per_partition_processed.iter().sum::<u64>(), 200);
        assert_eq!(report.reconnects, 0);
        assert_eq!(report.dedup_peak_entries, 0);
        assert!(report.log_audits.is_empty(), "no recovery logs when off");
        assert!(report.delivery_gaps.is_empty());
    }

    #[test]
    fn tcp_transport_smoke() {
        let table = int_table("t", 60);
        let report = run_call(&table, 2, |c| c.transport = SocketTransport::Tcp);
        assert_squares(&report.results, 60);
    }

    #[test]
    fn scripted_prospective_adaptation_deploys() {
        let table = int_table("t", 400);
        let report = run_call(&table, 2, |c| {
            c.adaptations = vec![ScriptedAdaptation {
                after_routed: 50,
                weights: vec![0.9, 0.1],
                retrospective: false,
            }];
        });
        assert_squares(&report.results, 400);
        assert_eq!(report.adaptations_deployed, 1);
        assert!(
            (report.final_distribution[0] - 0.9).abs() < 1e-9
                && (report.final_distribution[1] - 0.1).abs() < 1e-9,
            "distribution swapped: {:?}",
            report.final_distribution
        );
    }

    #[test]
    fn retrospective_recall_migrates_join_state() {
        let build = int_table("build", 100);
        let probe = int_table("probe", 600);
        let plan = join_plan(&build, &probe, 0.2, 1.0);
        let mut config = SocketConfig::new(wire_join_spec(&build, &probe), resolver());
        config.cost_scale = 0.05;
        config.adaptations = vec![ScriptedAdaptation {
            after_routed: 150,
            weights: vec![0.25, 0.75],
            retrospective: true,
        }];
        let report = SocketExecutor::new(catalog(&[&build, &probe]), config)
            .run(&plan)
            .unwrap();
        // Every probe key under 100 joins exactly one build tuple.
        assert_eq!(report.results.len(), 100, "{report:?}");
        assert_eq!(report.adaptations_deployed, 1, "{report:?}");
        assert_eq!(report.recalls_completed, 1, "{report:?}");
        assert!(report.state_tuples_migrated >= 1, "{report:?}");
        assert!(!report.log_audits.is_empty());
        for audit in &report.log_audits {
            assert!(audit.conserved(), "{audit:?}");
        }
    }

    #[derive(Debug)]
    struct DropConn {
        remaining: AtomicU64,
    }

    impl ChaosHook for DropConn {
        fn conn_drop(&self, worker: usize) -> bool {
            worker == 0
                && self
                    .remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| v.checked_sub(1))
                    .is_ok()
        }
    }

    #[test]
    fn conn_drop_reconnects_and_loses_nothing() {
        let table = int_table("t", 200);
        let report = run_call(&table, 2, |c| {
            c.chaos = Some(Arc::new(DropConn {
                remaining: AtomicU64::new(3),
            }));
        });
        assert_squares(&report.results, 200);
        assert!(report.reconnects >= 1, "{report:?}");
        assert!(report.delivery_gaps.is_empty(), "{report:?}");
        for audit in &report.log_audits {
            assert!(audit.conserved(), "{audit:?}");
        }
    }

    #[derive(Debug)]
    struct ChunkWrites;

    impl ChaosHook for ChunkWrites {
        fn partial_write(&self, worker: usize) -> bool {
            worker == 1
        }
    }

    #[test]
    fn partial_writes_are_reassembled_by_the_decoder() {
        let table = int_table("t", 200);
        let report = run_call(&table, 2, |c| c.chaos = Some(Arc::new(ChunkWrites)));
        assert_squares(&report.results, 200);
        assert!(report.delivery_gaps.is_empty(), "{report:?}");
        for audit in &report.log_audits {
            assert!(audit.conserved(), "{audit:?}");
        }
    }

    #[derive(Debug)]
    struct SlowPeer;

    impl ChaosHook for SlowPeer {
        fn slow_peer_stall_ms(&self, worker: usize) -> f64 {
            if worker == 0 {
                2.0
            } else {
                0.0
            }
        }
    }

    #[test]
    fn slow_peer_backpressure_completes() {
        let table = int_table("t", 200);
        let report = run_call(&table, 2, |c| c.chaos = Some(Arc::new(SlowPeer)));
        assert_squares(&report.results, 200);
        assert!(report.delivery_gaps.is_empty(), "{report:?}");
        for audit in &report.log_audits {
            assert!(audit.conserved(), "{audit:?}");
        }
    }

    #[test]
    fn stage_specs_round_trip_over_the_wire() {
        let table = int_table("t", 1);
        let call = wire_call_spec(&table);
        let mut buf = Vec::new();
        call.encode(&mut buf);
        let back = WireStageSpec::decode(&mut Reader::new(&buf)).unwrap();
        assert!(!back.stateful());
        let WireStageSpec::ServiceCall {
            service,
            arg_cols,
            keep_input,
            ..
        } = back
        else {
            panic!("decoded the wrong variant");
        };
        assert_eq!(service, "Square");
        assert_eq!(arg_cols, vec![0]);
        assert!(!keep_input);

        let join = wire_join_spec(&table, &table);
        let mut buf = Vec::new();
        join.encode(&mut buf);
        let back = WireStageSpec::decode(&mut Reader::new(&buf)).unwrap();
        assert!(back.stateful());
    }

    #[test]
    fn addresses_parse_from_their_display_form() {
        assert!(matches!(parse_addr("tcp:127.0.0.1:9000"), Ok(Addr::Tcp(_))));
        assert!(matches!(parse_addr("unix:/tmp/x.sock"), Ok(Addr::Unix(_))));
        assert!(parse_addr("carrier-pigeon:coop").is_err());
    }

    #[test]
    fn stateful_stages_reject_prospective_adaptations() {
        let build = int_table("build", 10);
        let probe = int_table("probe", 10);
        let plan = join_plan(&build, &probe, 0.1, 0.1);
        let mut config = SocketConfig::new(wire_join_spec(&build, &probe), resolver());
        config.adaptations = vec![ScriptedAdaptation {
            after_routed: 5,
            weights: vec![0.5, 0.5],
            retrospective: false,
        }];
        let err = SocketExecutor::new(catalog(&[&build, &probe]), config)
            .run(&plan)
            .unwrap_err();
        assert!(matches!(err, GridError::Config(_)), "{err:?}");
    }

    #[test]
    fn adaptation_weight_arity_must_match_partitions() {
        let table = int_table("t", 10);
        let plan = call_plan(&table, 2);
        let mut config = SocketConfig::new(wire_call_spec(&table), resolver());
        config.adaptations = vec![ScriptedAdaptation {
            after_routed: 5,
            weights: vec![1.0],
            retrospective: false,
        }];
        let err = SocketExecutor::new(catalog(&[&table]), config)
            .run(&plan)
            .unwrap_err();
        assert!(matches!(err, GridError::Config(_)), "{err:?}");
    }
}
