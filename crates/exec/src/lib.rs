#![warn(missing_docs)]

//! A real multi-threaded executor for partitioned plans.
//!
//! The simulator (`gridq-sim`) reproduces the paper's *measurements* in
//! virtual time; this crate demonstrates that the adaptivity architecture
//! is substrate-independent by running the same [`DistributedPlan`]s over
//! OS threads and mpsc channels against the wall clock:
//!
//! - one producer thread per source scan, routing tuples through the
//!   shared exchange [`Router`] and sending buffers over channels;
//! - one consumer thread per stage partition, evaluating the same
//!   [`gridq_engine::evaluator::PartitionEvaluator`] clones and *actually spending CPU/sleep time*
//!   proportional to the cost model (scaled down by `cost_scale` to keep
//!   tests fast);
//! - an adaptivity thread hosting the MonitoringEventDetector, Diagnoser,
//!   and Responder, fed by real M1/M2 notifications and deploying new
//!   distribution vectors into the shared router while the query runs.
//!
//! Prospective (R2) adaptations swap the routing table in place and only
//! affect future tuples, so they are restricted to stateless stages.
//! Retrospective (R1) adaptations run the full recall protocol (see
//! the `recall` module docs): producers log outgoing tuples into
//! checkpointed recovery logs, consumers acknowledge checkpoint markers,
//! and on deploy the adaptivity thread pauses the producers behind a
//! drain barrier, migrates the surrendered hash-bucket state between
//! consumers, and restages the producers' unsent buffers under the new
//! distribution — so stateful hash-partitioned stages repartition
//! mid-flight without losing or duplicating a tuple.

mod dedup;
mod failover;
mod recall;
pub mod service;
pub mod socket;

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gridq_adapt::{
    AdaptationCommand, AdaptivityConfig, DetectorOutput, Diagnoser, MonitoringEventDetector,
    ProducerId, Responder, ResponsePolicy, M1, M2,
};
use gridq_common::cast;
use gridq_common::sync::ring::{ring, RingReceiver, RingSender, Waker};
use gridq_common::sync::Mutex;
use gridq_common::{
    ChaosHook, DistributionVector, GridError, NetAction, NodeId, NotifyKind, PartitionId,
    RecallPhase, Result, SimTime, StallSite, SubplanId, Tuple,
};
use gridq_engine::distributed::{DistributedPlan, Router};
use gridq_engine::evaluator::{PartitionEvaluator, StreamTag};
use gridq_engine::physical::Catalog;
use gridq_grid::Perturbation;
use gridq_obs::{Obs, ObsConfig, ObsReport, TimelineKind};
use gridq_recovery::{AckOutcome, Checkpoint, LogAudit, SharedRecoveryLog};

use dedup::DedupFilter;
pub use failover::{DeliveryGap, FailoverConfig, RetryPolicy};
use failover::{HeartbeatMonitor, RetryBackoff};
use recall::{Ctrl, ProducerGuard, RecallGate};
pub use service::{
    ContentionLedger, QueryOutcome, QueryRun, QueryService, QuerySubmission, ServiceConfig,
    ServiceReport, TenancyHandle,
};

type LogItem = (StreamTag, Tuple);
type SharedLogs = Arc<Vec<SharedRecoveryLog<LogItem>>>;

/// Configuration of a threaded execution.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Adaptivity configuration. R2 deploys on stateless stages; R1
    /// deploys run the recall protocol and also cover stateful stages.
    pub adaptivity: AdaptivityConfig,
    /// Multiplier from model milliseconds to real milliseconds
    /// (e.g. `0.02` runs a 3000-tuple query in a couple of seconds).
    pub cost_scale: f64,
    /// Per-node perturbations, applied as real extra work.
    pub perturbations: HashMap<NodeId, Perturbation>,
    /// Per-tuple receive cost in model milliseconds.
    pub receive_cost_ms: f64,
    /// Producers emit a recovery-log checkpoint marker after this many
    /// tuples per destination (R1 runs only). Build streams are never
    /// checkpointed: their tuples *are* the downstream operator state
    /// and must stay recallable for the whole run.
    pub checkpoint_interval: usize,
    /// Observability layer configuration (metrics registry and
    /// adaptivity timeline).
    pub obs: ObsConfig,
    /// How long the recall coordinator waits for producers to park and
    /// for each round of consumer replies before abandoning a recall, in
    /// wall-clock milliseconds. The default is generous: on a healthy run
    /// the barrier fills in microseconds, and an abort here only delays
    /// (never corrupts) the query. Chaos tests shrink it so an injected
    /// control-reply loss aborts in milliseconds instead of seconds.
    pub recall_timeout_ms: u64,
    /// Fault-injection hook consulted at the chaos seams (exchange
    /// sends, checkpoint acks, monitoring notifications, recall control
    /// replies, per-tuple work, worker crashes). `None` injects nothing
    /// and leaves behavior identical to an uninstrumented run.
    pub chaos: Option<Arc<dyn ChaosHook>>,
    /// Delivery-retry policy: how producers back off and retransmit
    /// unacknowledged recovery-log windows. Consulted only in resilient
    /// mode (a chaos hook installed, or failover enabled).
    pub delivery_retry: RetryPolicy,
    /// Heartbeat/lease failure detection and the failover recall.
    /// Requires R1 adaptivity: failover rides the recall machinery.
    pub failover: FailoverConfig,
    /// Service-plane tenancy handle, injected by [`QueryService`] when
    /// this query shares evaluator nodes with co-resident queries: the
    /// contention ledger inflates consumers' modelled costs, and the
    /// adaptivity thread feeds the shared cross-query diagnoser /
    /// deploys its tenant rebalances. `None` (the default) runs the
    /// query exactly as before the service plane existed.
    pub tenancy: Option<TenancyHandle>,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            adaptivity: AdaptivityConfig::default(),
            cost_scale: 0.02,
            perturbations: HashMap::new(),
            receive_cost_ms: 1.0,
            checkpoint_interval: 50,
            obs: ObsConfig::default(),
            recall_timeout_ms: 30_000,
            chaos: None,
            delivery_retry: RetryPolicy::default(),
            failover: FailoverConfig::default(),
            tenancy: None,
        }
    }
}

impl ThreadedConfig {
    /// Rejects configurations that would hang or corrupt a run before any
    /// thread is spawned: non-positive or non-finite cost scales (which
    /// would turn every modelled cost into zero or infinite sleeps),
    /// negative or non-finite receive costs, a zero checkpoint interval
    /// (no window could ever close), plus anything
    /// [`AdaptivityConfig::validate`] rejects.
    pub fn validate(&self) -> Result<()> {
        if !self.cost_scale.is_finite() || self.cost_scale <= 0.0 {
            return Err(GridError::Config(format!(
                "cost_scale must be finite and positive, got {}",
                self.cost_scale
            )));
        }
        if !self.receive_cost_ms.is_finite() || self.receive_cost_ms < 0.0 {
            return Err(GridError::Config(format!(
                "receive_cost_ms must be finite and non-negative, got {}",
                self.receive_cost_ms
            )));
        }
        if self.checkpoint_interval == 0 {
            return Err(GridError::Config(
                "checkpoint_interval must be positive".into(),
            ));
        }
        if self.recall_timeout_ms == 0 {
            return Err(GridError::Config(
                "recall_timeout_ms must be positive".into(),
            ));
        }
        self.delivery_retry.validate()?;
        self.failover.validate()?;
        if self.failover.enabled
            && !(self.adaptivity.enabled && self.adaptivity.response == ResponsePolicy::R1)
        {
            return Err(GridError::Config(
                "failover requires retrospective (R1) adaptivity: declaring a \
                 node dead is only useful if the recall machinery can drain, \
                 redistribute, and replay its state"
                    .into(),
            ));
        }
        self.obs.validate()?;
        self.adaptivity.validate()
    }
}

/// What a threaded execution measured.
#[derive(Debug, Clone, Default)]
pub struct ThreadedReport {
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: f64,
    /// Result tuples collected.
    pub results: Vec<Tuple>,
    /// Input tuples processed per partition (replayed/migrated tuples
    /// count at every partition that processed them).
    pub per_partition_processed: Vec<u64>,
    /// Raw M1 events emitted.
    pub raw_m1_events: u64,
    /// Raw M2 events emitted.
    pub raw_m2_events: u64,
    /// Adaptations deployed into the router.
    pub adaptations_deployed: u64,
    /// Of those, deploys proposed by the *cross-query* diagnoser: weight
    /// shifts away from a node contended by a co-resident query
    /// (service-plane runs only; always 0 without a tenancy handle).
    pub tenant_rebalances: u64,
    /// Retrospective recalls that ran the full drain-migrate-resume
    /// protocol.
    pub recalls_completed: u64,
    /// Retrospective recalls abandoned before deploying (producers
    /// already finished, or a barrier timed out). An aborted recall
    /// leaves the routing untouched.
    pub recalls_aborted: u64,
    /// Operator-state tuples shipped between partitions by recalls.
    pub state_tuples_migrated: u64,
    /// In-flight tuples re-routed by recalls: held tuples recalled from
    /// consumers plus staged buffers re-routed by producers.
    pub tuples_recalled: u64,
    /// Consumers declared dead by the heartbeat detector.
    pub nodes_failed: u64,
    /// Failover recalls that drained, redistributed, and replayed a dead
    /// partition's log entries to the survivors.
    pub failovers_completed: u64,
    /// Tuples retransmitted from recovery logs by the delivery-retry
    /// epilogue (resilient runs only).
    pub tuples_retransmitted: u64,
    /// Windows left undelivered after the retry budget ran out, one
    /// entry per (source, dest) edge that gave up. Empty on a healthy
    /// run; the query completes either way.
    pub delivery_gaps: Vec<DeliveryGap>,
    /// Data-plane block pushes that failed because the destination
    /// consumer was already gone (its ring closed), counted in tuples.
    /// Surfaced immediately at send time — not discarded, and not
    /// deferred until a heartbeat lease expires.
    pub send_failures: u64,
    /// Conservation audit of each source's recovery log (logging runs
    /// only: R1 adaptivity, chaos, or failover; indexed like
    /// `DistributedPlan::sources`).
    pub log_audits: Vec<LogAudit>,
    /// High-water mark of live consumer dedup-filter entries (tuple keys
    /// plus block keys), maximised over partitions. Bounded by the
    /// unacknowledged recovery-log windows, not by the input size — the
    /// regression oracle for the at-least-once filter's memory.
    pub dedup_peak_entries: u64,
    /// The final routing distribution.
    pub final_distribution: Vec<f64>,
    /// Observability snapshot (metrics registry and adaptivity timeline);
    /// `None` when the obs layer is disabled.
    pub obs: Option<ObsReport>,
}

enum Msg {
    /// End of one source's stream; carries the stream tag so consumers
    /// can tell when the build phase is complete, and the producer index
    /// so the consumer can drain that producer's data ring first (every
    /// push precedes the Eos send, but the ring and the control channel
    /// carry no cross-plane ordering of their own).
    Eos { stream: StreamTag, source: usize },
    /// Recall barrier marker: the consumer replies `Ctrl::Drained` once
    /// it sees this, proving the channel holds no pre-pause tuples.
    Drain { token: u64 },
    /// Recall migration command: hand over the state of `outgoing`
    /// buckets and re-route held tuples under the (already swapped)
    /// router, then reply `Ctrl::MigrateDone`.
    Migrate {
        token: u64,
        bucket_count: Option<u32>,
        outgoing: Vec<u32>,
    },
    /// A tuple re-delivered by the recall protocol (migrated operator
    /// state or a recalled held tuple). Not logged again: the barrier
    /// plus direct channel carry the exactly-once guarantee.
    Migrated {
        stream: StreamTag,
        source: usize,
        tuple: Tuple,
    },
}

/// A producer's per-destination staging buffer entry: either a routed
/// tuple or a checkpoint marker riding in sequence behind the tuple that
/// closed its window.
#[derive(Clone)]
enum Staged {
    Tuple(StreamTag, Tuple),
    Marker(Checkpoint, u64),
}

/// The data-plane unit: one producer's staged batch for one destination,
/// shipped over a bounded SPSC ring in a single push. Routing was paid
/// once per item when the block was staged; checkpoint markers ride
/// in-order behind the tuples that closed their windows, so delivering a
/// block delivers whole windows atomically.
struct Block {
    /// Index into `DistributedPlan::sources`, so consumers can attribute
    /// tuples and markers to the right recovery log.
    source: usize,
    items: Vec<Staged>,
    /// Set on retry-epilogue retransmissions. A retransmitted window
    /// targets its *original* destination, and a recall may have moved a
    /// tuple's bucket elsewhere in the meantime — the consumer re-checks
    /// ownership of fresh tuples from such blocks and forwards strays to
    /// the current owner. Ordinary blocks skip the check: their routing
    /// was computed against the live distribution when they were staged.
    retransmit: bool,
}

impl Block {
    /// The resilient-mode dedup key: `(first_seq, last_seq, count)` over
    /// the block's tuples (markers excluded), or `None` for marker-only
    /// blocks. Within one source a window's identity is pinned by its
    /// extremes plus cardinality: windows only ever *shrink* after
    /// closing (entries migrate out to other destinations' open windows,
    /// never in), so two same-key deliveries of a source's window at the
    /// same consumer carry the same tuple set and the second can be
    /// skipped wholesale.
    fn range_key(&self) -> Option<(u64, u64, usize)> {
        let mut first = None;
        let mut last = 0;
        let mut count = 0usize;
        for item in &self.items {
            if let Staged::Tuple(_, t) = item {
                let seq = t.seq();
                first.get_or_insert(seq);
                last = seq;
                count += 1;
            }
        }
        first.map(|f| (f, last, count))
    }
}

/// A consumer's control-plane address: the mpsc sender plus the waker
/// that pulls the consumer out of its idle park. Every control send
/// wakes, so a consumer parked between ring polls reacts to `Eos`,
/// `Drain`, `Migrate`, and replayed `Migrated` traffic immediately.
#[derive(Clone)]
struct CtrlTx {
    tx: Sender<Msg>,
    waker: Arc<Waker>,
}

impl CtrlTx {
    /// Sends a control message and wakes the consumer. Returns whether
    /// the consumer's receiver still exists.
    fn send(&self, msg: Msg) -> bool {
        let ok = self.tx.send(msg).is_ok();
        self.waker.wake();
        ok
    }

    /// Wakes the consumer without sending (used by producers after a
    /// ring push).
    fn wake(&self) {
        self.waker.wake();
    }
}

enum Raw {
    M1(M1),
    M2(M2),
    /// A consumer liveness beat (failover runs only): sent once per
    /// receive-loop iteration, renews the worker's lease.
    Beat(usize),
    /// A consumer finished cleanly; its lease no longer applies.
    Done(usize),
    ProducersDone,
}

/// What the adaptivity thread hands back at teardown.
#[derive(Default)]
struct AdaptStats {
    m1: u64,
    m2: u64,
    deployed: u64,
    tenant_rebalances: u64,
    recalls_completed: u64,
    recalls_aborted: u64,
    state_tuples_migrated: u64,
    tuples_recalled: u64,
    nodes_failed: u64,
    failovers_completed: u64,
}

fn spin_for(model_ms: f64, scale: f64) {
    let dur = Duration::from_secs_f64((model_ms * scale / 1000.0).max(0.0));
    if !dur.is_zero() {
        thread::sleep(dur);
    }
}

fn perturbed(base_ms: f64, perturbation: Option<&Perturbation>) -> f64 {
    let out = match perturbation {
        None | Some(Perturbation::None) => base_ms,
        Some(Perturbation::CostFactor(k)) => base_ms * k,
        Some(Perturbation::SleepMs(extra)) => base_ms + extra,
        Some(Perturbation::NormalFactor { mean, .. }) => base_ms * mean,
    };
    // A non-finite delay/factor is a rejected sample (see
    // Perturbation::apply): fall back to the unperturbed cost instead of
    // poisoning downstream wall-clock arithmetic.
    if out.is_finite() {
        out
    } else {
        base_ms
    }
}

/// Collects one reply per consumer for recall attempt `token`, dropping
/// stale replies from aborted attempts. Returns the summed
/// `(state_moved, recalled)` counts (zero for `Drained` replies), or
/// `None` on timeout.
fn collect_replies(
    rx: &Receiver<Ctrl>,
    token: u64,
    expected: usize,
    want_migrate: bool,
    timeout: Duration,
) -> Option<(u64, u64)> {
    let deadline = Instant::now() + timeout;
    let mut got = 0usize;
    let mut moved = 0u64;
    let mut recalled_total = 0u64;
    while got < expected {
        let now = Instant::now();
        if now >= deadline {
            return None;
        }
        match rx.recv_timeout(deadline - now) {
            Ok(Ctrl::Drained { token: t }) if !want_migrate && t == token => got += 1,
            Ok(Ctrl::MigrateDone {
                token: t,
                state_moved,
                recalled,
            }) if want_migrate && t == token => {
                got += 1;
                moved += state_moved;
                recalled_total += recalled;
            }
            Ok(_) => {} // stale reply from an aborted attempt
            Err(_) => return None,
        }
    }
    Some((moved, recalled_total))
}

/// How many times a failover recall is retried after an aborted attempt
/// (lost control reply, barrier timeout) before the dead worker is left
/// to the producers' delivery-gap path.
const FAILOVER_ATTEMPTS: u32 = 3;

/// Everything one failover recall attempt borrows from the adaptivity
/// thread's state.
struct FailoverRun<'a, R, N>
where
    R: Fn(SimTime, TimelineKind) -> u64,
    N: Fn() -> SimTime,
{
    dead: usize,
    down_seq: u64,
    gate: Option<&'a RecallGate>,
    monitor: Option<&'a HeartbeatMonitor>,
    logs: Option<&'a Vec<SharedRecoveryLog<LogItem>>>,
    adapt_senders: &'a [CtrlTx],
    ctrl_rx: &'a Receiver<Ctrl>,
    router: &'a Mutex<Router>,
    diagnoser: &'a mut Diagnoser,
    responder: &'a mut Responder,
    obs: Option<&'a Obs>,
    record: &'a R,
    now_model: &'a N,
    stage_id: SubplanId,
    build_source: Option<usize>,
    recall_timeout: Duration,
    recall_token: &'a mut u64,
    stats: &'a mut AdaptStats,
}

/// Runs one failover recall attempt for a dead consumer: drain barrier
/// over the survivors, redistribution away from the dead partition,
/// replay of that partition's surviving recovery-log entries to their
/// new owners, epoch-bumped resume. Returns `false` when the attempt had
/// to abort; the caller retries up to [`FAILOVER_ATTEMPTS`] times.
///
/// Deliberately records no `Deploy`/`RecallStart`/`RecallFinish`
/// timeline events — those carry diagnosis back-references and a
/// failover has no diagnosis. `NodeDown -> Failover` is this path's
/// causal pair.
fn run_failover<R, N>(run: FailoverRun<'_, R, N>) -> bool
where
    R: Fn(SimTime, TimelineKind) -> u64,
    N: Fn() -> SimTime,
{
    let FailoverRun {
        dead,
        down_seq,
        gate,
        monitor,
        logs,
        adapt_senders,
        ctrl_rx,
        router,
        diagnoser,
        responder,
        obs,
        record,
        now_model,
        stage_id,
        build_source,
        recall_timeout,
        recall_token,
        stats,
    } = run;
    // Config validation ties failover to R1 adaptivity, so the gate and
    // logs always exist here; degrade to "handled" rather than spin if
    // that invariant ever breaks.
    let (Some(gate), Some(m), Some(logs)) = (gate, monitor, logs) else {
        return true;
    };
    *recall_token += 1;
    let token = *recall_token;
    match gate.begin_pause(recall_timeout) {
        None => return false,
        Some(0) => {
            // No producer is parked, so none can be trusted to hold its
            // buffers still across the barrier; retry on a later
            // iteration once the retry epilogues reach a pause point.
            gate.abort_pause();
            return false;
        }
        Some(_) => {}
    }
    let targets: Vec<usize> = (0..adapt_senders.len())
        .filter(|&p| !m.is_dead(p) && !m.is_done(p))
        .collect();
    let drained = !targets.is_empty()
        && targets
            .iter()
            .all(|&p| adapt_senders[p].send(Msg::Drain { token }))
        && collect_replies(ctrl_rx, token, targets.len(), false, recall_timeout).is_some();
    if !drained {
        gate.abort_pause();
        return false;
    }
    // Route nothing more at the dead partition: zero its weight (and any
    // previously declared dead peer's) and renormalize over survivors.
    let target = {
        let current = router.lock().current_distribution();
        let w: Vec<f64> = current
            .weights()
            .iter()
            .enumerate()
            .map(|(p, &w)| if p == dead || m.is_dead(p) { 0.0 } else { w })
            .collect();
        DistributionVector::new(&w)
    };
    let Ok(target) = target else {
        // Every partition is dead or weightless; nothing to deploy.
        gate.abort_pause();
        return false;
    };
    let moves = {
        let mut r = router.lock();
        r.apply_retrospective(&target)
    };
    let Ok(moves) = moves else {
        gate.abort_pause();
        return false;
    };
    diagnoser.set_distribution(target);
    let bucket_count = router.lock().bucket_count();
    for &p in &targets {
        let outgoing = moves.outgoing.get(p).cloned().unwrap_or_default();
        adapt_senders[p].send(Msg::Migrate {
            token,
            bucket_count,
            outgoing,
        });
    }
    let Some((moved, recalled)) =
        collect_replies(ctrl_rx, token, targets.len(), true, recall_timeout)
    else {
        gate.abort_pause();
        return false;
    };
    stats.state_tuples_migrated += moved;
    stats.tuples_recalled += recalled;
    // Replay the dead partition's surviving log entries, build stream
    // first so reconstructed operator state is in place before any
    // replayed probe tuple can reach it.
    let mut order: Vec<usize> = (0..logs.len()).collect();
    order.sort_by_key(|&s| usize::from(Some(s) != build_source));
    let fallback = targets.first().copied().unwrap_or(0);
    let mut replayed = 0u64;
    for s in order {
        let entries = logs[s].drain_dest(dead as u32).unwrap_or_default();
        for (stream, tuple) in entries {
            let routed = {
                let mut r = router.lock();
                r.route(stream, &tuple)
            };
            let dest = match routed {
                Ok(d) if targets.contains(&(d as usize)) => d as usize,
                _ => fallback,
            };
            replayed += 1;
            adapt_senders[dest].send(Msg::Migrated {
                stream,
                source: s,
                tuple: tuple.clone(),
            });
            // Re-record under the new owner, but send no checkpoint
            // markers from here: a coordinator-sent marker could close a
            // window whose tail is still staged unsent at the producer,
            // acknowledging tuples that were never delivered. The
            // producers' per-attempt forced checkpoints close these
            // windows instead, and retransmissions of already-replayed
            // tuples collapse in the consumers' dedup filter.
            let _ = logs[s].record_replayed(dest as u32, (stream, tuple));
        }
    }
    stats.failovers_completed += 1;
    if let Some(o) = obs {
        o.metrics().counter("exec.failovers").add(1);
        o.metrics().counter("exec.tuples_replayed").add(replayed);
    }
    record(
        now_model(),
        TimelineKind::Failover {
            partition: PartitionId::new(stage_id, dead as u32).to_string(),
            replayed,
            down_seq,
        },
    );
    responder.on_deploy_acknowledged(now_model());
    gate.resume(gate.epoch() + 1);
    true
}

/// Executes a single-stage distributed plan over real threads.
pub struct ThreadedExecutor {
    catalog: Catalog,
    config: ThreadedConfig,
}

impl ThreadedExecutor {
    /// Creates an executor over the catalog.
    pub fn new(catalog: Catalog, config: ThreadedConfig) -> Self {
        ThreadedExecutor { catalog, config }
    }

    /// Runs the plan to completion.
    pub fn run(&self, plan: &DistributedPlan) -> Result<ThreadedReport> {
        self.config.validate()?;
        plan.validate()?;
        if plan.stages.len() != 1 {
            return Err(GridError::Execution(
                "the threaded executor runs single-stage plans".into(),
            ));
        }
        let stage = &plan.stages[0];
        let response = self.config.adaptivity.response;
        if self.config.adaptivity.enabled
            && stage.factory.stateful()
            && response == ResponsePolicy::R2
        {
            return Err(GridError::Config(
                "stateful stages require the retrospective (R1) response policy; \
                 a prospective routing change would strand operator state on the \
                 old owners"
                    .into(),
            ));
        }
        let recall_on = self.config.adaptivity.enabled && response == ResponsePolicy::R1;
        if recall_on
            && plan
                .sources
                .iter()
                .filter(|s| s.stream == StreamTag::Build)
                .count()
                > 1
        {
            return Err(GridError::Config(
                "the recall protocol supports at most one build source per stage".into(),
            ));
        }
        let monitoring = self.config.adaptivity.monitoring_active();
        let partitions = stage.nodes.len();
        let router = Arc::new(Mutex::new(Router::from_policy(
            &stage.exchange.routing,
            cast::index_to_u32(partitions)?,
        )?));

        // Channels. The hot data plane is a bounded SPSC ring per
        // (producer, consumer) edge carrying whole tuple blocks; the ring
        // is the backpressure (a slow consumer parks its producers at
        // `RING_BLOCKS` staged blocks). The control plane (Eos, recall
        // commands, migrated re-deliveries, backstops) stays on one mpsc
        // channel per consumer, paired with the waker that interrupts the
        // consumer's idle park.
        const RING_BLOCKS: usize = 8;
        let producers_n = plan.sources.len();
        let mut to_consumer: Vec<CtrlTx> = Vec::new();
        let mut consumer_rx: Vec<Receiver<Msg>> = Vec::new();
        let mut consumer_wakers: Vec<Arc<Waker>> = Vec::new();
        for _ in 0..partitions {
            let (tx, rx) = channel();
            let waker = Arc::new(Waker::new());
            to_consumer.push(CtrlTx {
                tx,
                waker: Arc::clone(&waker),
            });
            consumer_rx.push(rx);
            consumer_wakers.push(waker);
        }
        // ring_txs[producer][consumer] / ring_rxs[consumer][producer].
        let mut ring_txs: Vec<Vec<RingSender<Block>>> =
            (0..producers_n).map(|_| Vec::new()).collect();
        let mut ring_rxs: Vec<Vec<RingReceiver<Block>>> =
            (0..partitions).map(|_| Vec::new()).collect();
        for ring_tx_row in ring_txs.iter_mut() {
            for ring_rx_row in ring_rxs.iter_mut() {
                let (tx, rx) = ring::<Block>(RING_BLOCKS);
                ring_tx_row.push(tx);
                ring_rx_row.push(rx);
            }
        }
        let (result_tx, result_rx) = channel::<Vec<Tuple>>();
        let (raw_tx, raw_rx) = channel::<Raw>();
        let (ctrl_tx, ctrl_rx) = channel::<Ctrl>();

        let started = Instant::now();
        let obs = if self.config.obs.enabled {
            Some(Obs::new(self.config.obs.timeline_capacity))
        } else {
            None
        };
        let (routed_ctr, processed_ctr) = match &obs {
            Some(o) => (
                Some(o.metrics().counter("exec.tuples_routed")),
                Some(o.metrics().counter("exec.tuples_processed")),
            ),
            None => (None, None),
        };
        let routed_total = Arc::new(AtomicU64::new(0));
        let processed_total = Arc::new(AtomicU64::new(0));
        let restaged_total = Arc::new(AtomicU64::new(0));
        let total_rows: u64 = {
            let mut sum = 0;
            for s in &plan.sources {
                sum += self.catalog.get(&s.table)?.len() as u64;
            }
            sum
        };

        // Resilient mode hardens the data plane: recovery logs always on,
        // whole windows flushed atomically, producers retransmitting
        // unacknowledged windows, consumers deduplicating. It is what
        // makes injected drops/duplicates and node crashes survivable.
        let resilient = self.config.chaos.is_some() || self.config.failover.enabled;
        let logging_on = recall_on || resilient;

        // Recall-protocol state: one recovery log per source and the
        // gate producers park behind during a recall.
        let logs: Option<SharedLogs> = if logging_on {
            let mut v = Vec::with_capacity(plan.sources.len());
            // In resilient mode a whole window must fit one exchange
            // buffer, so a dropped or duplicated batch hits tuples and
            // marker atomically: marker delivery implies content delivery.
            let effective = self
                .config
                .checkpoint_interval
                .min(stage.exchange.buffer_tuples.max(1));
            for s in &plan.sources {
                let log = if s.stream == StreamTag::Build {
                    if resilient {
                        // Build tuples are downstream operator state: keep
                        // the entries replayable after delivery so node
                        // failure can reconstruct a dead partition, while
                        // markers still flow as delivery receipts.
                        SharedRecoveryLog::retained(partitions, effective)?
                    } else {
                        // Effectively no checkpointing (mirrors the
                        // simulator): entries stay recallable all run.
                        SharedRecoveryLog::new(partitions, usize::MAX / 2)?
                    }
                } else if resilient {
                    SharedRecoveryLog::new(partitions, effective)?
                } else {
                    SharedRecoveryLog::new(partitions, self.config.checkpoint_interval)?
                };
                v.push(log);
            }
            Some(Arc::new(v))
        } else {
            None
        };
        let delivery_gaps: Arc<Mutex<Vec<DeliveryGap>>> = Arc::new(Mutex::new(Vec::new()));
        let retransmitted_total = Arc::new(AtomicU64::new(0));
        let send_failures_total = Arc::new(AtomicU64::new(0));
        let gate = recall_on.then(|| Arc::new(RecallGate::new(plan.sources.len())));
        let build_source = plan
            .sources
            .iter()
            .position(|s| s.stream == StreamTag::Build);

        // Producer threads.
        let mut producer_handles = Vec::new();
        for (sidx, source) in plan.sources.iter().enumerate() {
            let table = self.catalog.get(&source.table)?;
            let router = Arc::clone(&router);
            let rings = std::mem::take(&mut ring_txs[sidx]);
            let ctrl = to_consumer.clone();
            let raw = raw_tx.clone();
            let routed_total = Arc::clone(&routed_total);
            let restaged_total = Arc::clone(&restaged_total);
            let logs = logs.clone();
            let gate = gate.clone();
            let scan_cost = source.scan_cost_ms;
            let stream = source.stream;
            let scale = self.config.cost_scale;
            let buffer_tuples = stage.exchange.buffer_tuples;
            let stage_id = stage.id;
            let query = plan.query;
            let routed_ctr = routed_ctr.clone();
            let chaos = self.config.chaos.clone();
            let retry_policy = self.config.delivery_retry.clone();
            let gaps = Arc::clone(&delivery_gaps);
            let retransmitted = Arc::clone(&retransmitted_total);
            let send_failures = Arc::clone(&send_failures_total);
            let failover_on = self.config.failover.enabled;
            producer_handles.push(thread::spawn(move || {
                // Counts this producer as done even if it panics, so the
                // recall barrier can never wait on a dead thread.
                let _guard = gate.as_ref().map(|g| ProducerGuard::new(Arc::clone(g)));
                let mut buffers: Vec<Vec<Staged>> = (0..rings.len()).map(|_| Vec::new()).collect();
                // Ships one staged block to `dest`. Pays the modelled scan
                // time accumulated in `due` first, in a single sleep:
                // batching the per-row sleeps at block boundaries is what
                // lifts the data plane above the OS timer granularity.
                let flush = |dest: usize,
                             buffers: &mut Vec<Vec<Staged>>,
                             disconnected: &mut Vec<bool>,
                             due: &mut f64,
                             started: &Instant,
                             retransmit: bool| {
                    if *due > 0.0 {
                        spin_for(*due, scale);
                        *due = 0.0;
                    }
                    let items = std::mem::take(&mut buffers[dest]);
                    if items.is_empty() {
                        return;
                    }
                    let tuples = items
                        .iter()
                        .filter(|s| matches!(s, Staged::Tuple(..)))
                        .count();
                    let fate = chaos
                        .as_ref()
                        .map_or(NetAction::Deliver, |c| c.on_data(sidx, dest));
                    if fate == NetAction::Drop {
                        // The whole block vanishes — tuples and the
                        // markers that would acknowledge them, together.
                        // In resilient mode the windows' acks never
                        // arrive, so the retry epilogue retransmits them
                        // from the recovery log.
                        return;
                    }
                    if let NetAction::DelayMs(extra) = fate {
                        if extra.is_finite() && extra > 0.0 {
                            spin_for(extra, scale);
                        }
                    }
                    let send_started = Instant::now();
                    let mut count = 0usize;
                    let mut failed = 0usize;
                    if fate == NetAction::Duplicate {
                        // At-least-once transport: the cloned block is
                        // absorbed by the consumer's block-range dedup.
                        count += tuples;
                        if rings[dest]
                            .push(Block {
                                source: sidx,
                                items: items.clone(),
                                retransmit,
                            })
                            .is_err()
                        {
                            failed += tuples;
                        }
                    }
                    count += tuples;
                    if rings[dest]
                        .push(Block {
                            source: sidx,
                            items,
                            retransmit,
                        })
                        .is_err()
                    {
                        failed += tuples;
                    }
                    ctrl[dest].wake();
                    if failed > 0 {
                        // The consumer is gone: its ring rejected the
                        // block. Count the loss *now* instead of
                        // discarding the error — the report surfaces it
                        // even before any heartbeat lease expires.
                        disconnected[dest] = true;
                        send_failures.fetch_add(failed as u64, Ordering::Relaxed);
                    }
                    let m2_kept = chaos
                        .as_ref()
                        .is_none_or(|c| c.on_notification(NotifyKind::M2, sidx));
                    if monitoring && count > 0 && m2_kept {
                        let send_cost =
                            send_started.elapsed().as_secs_f64() * 1000.0 / scale.max(1e-9);
                        let _ = raw.send(Raw::M2(M2 {
                            query,
                            producer: ProducerId::Source(sidx as u32),
                            recipient: PartitionId::new(stage_id, dest as u32),
                            send_cost_ms: send_cost,
                            tuples_in_buffer: count,
                            // Wall-clock -> model milliseconds, so the
                            // Responder's cooldown compares like units.
                            at: SimTime::from_millis(
                                started.elapsed().as_secs_f64() * 1000.0 / scale.max(1e-9),
                            ),
                        }));
                    }
                };
                // After a recall, unsent staged tuples are re-routed
                // under the new distribution (their log entries follow);
                // markers stay with their original destination so the
                // windows they close remain intact.
                let restage = |buffers: &mut Vec<Vec<Staged>>| -> u64 {
                    let mut moved = 0u64;
                    let taken: Vec<Vec<Staged>> = buffers.iter_mut().map(std::mem::take).collect();
                    for (old_dest, items) in taken.into_iter().enumerate() {
                        for item in items {
                            match item {
                                Staged::Tuple(tag, tuple) => {
                                    let dest = {
                                        let mut r = router.lock();
                                        r.route(tag, &tuple).unwrap_or(old_dest as u32)
                                    } as usize;
                                    if dest != old_dest {
                                        moved += 1;
                                        if let Some(logs) = &logs {
                                            let seq = tuple.seq();
                                            let _ = logs[sidx].migrate_matching(
                                                old_dest as u32,
                                                dest as u32,
                                                |(s, t)| *s == tag && t.seq() == seq,
                                            );
                                        }
                                    }
                                    buffers[dest].push(Staged::Tuple(tag, tuple));
                                }
                                marker => buffers[old_dest].push(marker),
                            }
                        }
                    }
                    moved
                };
                let started_local = Instant::now();
                let mut epoch = gate.as_ref().map(|g| g.epoch()).unwrap_or(0);
                // Modelled scan milliseconds owed but not yet slept; paid
                // in one batch at the next flush.
                let mut due = 0.0f64;
                let mut disconnected = vec![false; rings.len()];
                for row in table.rows() {
                    if let Some(g) = &gate {
                        let now_epoch = g.pause_point();
                        if now_epoch != epoch {
                            epoch = now_epoch;
                            restaged_total.fetch_add(restage(&mut buffers), Ordering::Relaxed);
                        }
                    }
                    let stall = chaos
                        .as_ref()
                        .map_or(0.0, |c| c.stall_ms(StallSite::Producer, sidx));
                    due += scan_cost
                        + if stall.is_finite() {
                            stall.max(0.0)
                        } else {
                            0.0
                        };
                    let dest = {
                        let mut r = router.lock();
                        r.route(stream, row).unwrap_or(0)
                    } as usize;
                    buffers[dest].push(Staged::Tuple(stream, row.clone()));
                    let mut window_closed = false;
                    if let Some(logs) = &logs {
                        if let Ok(Some(cp)) = logs[sidx].record(dest as u32, (stream, row.clone()))
                        {
                            buffers[dest].push(Staged::Marker(cp, logs[sidx].epoch()));
                            window_closed = true;
                        }
                    }
                    routed_total.fetch_add(1, Ordering::Relaxed);
                    if let Some(c) = &routed_ctr {
                        c.add(1);
                    }
                    if resilient {
                        // Flush at window boundaries only: the interval is
                        // clamped to the buffer size, so a whole window
                        // (tuples plus marker) always travels in one
                        // block and a chaos drop or duplicate hits it
                        // atomically.
                        if window_closed {
                            flush(
                                dest,
                                &mut buffers,
                                &mut disconnected,
                                &mut due,
                                &started_local,
                                false,
                            );
                        }
                    } else if buffers[dest].len() >= buffer_tuples {
                        flush(
                            dest,
                            &mut buffers,
                            &mut disconnected,
                            &mut due,
                            &started_local,
                            false,
                        );
                    }
                }
                // A recall in flight must complete (and the buffers
                // restage) before the final flush: finishing mid-pause
                // would send tuples routed under the old distribution
                // after the consumers already drained.
                if let Some(g) = &gate {
                    let now_epoch = g.pause_point();
                    if now_epoch != epoch {
                        restaged_total.fetch_add(restage(&mut buffers), Ordering::Relaxed);
                    }
                }
                for dest in 0..rings.len() {
                    // Resilient runs checkpoint build streams too: the
                    // markers are delivery receipts, and retained build
                    // logs keep the entries replayable regardless.
                    if stream != StreamTag::Build || resilient {
                        if let Some(logs) = &logs {
                            if let Ok(Some(cp)) = logs[sidx].force_checkpoint(dest as u32) {
                                buffers[dest].push(Staged::Marker(cp, logs[sidx].epoch()));
                            }
                        }
                    }
                    flush(
                        dest,
                        &mut buffers,
                        &mut disconnected,
                        &mut due,
                        &started_local,
                        false,
                    );
                    if !resilient {
                        ctrl[dest].send(Msg::Eos {
                            stream,
                            source: sidx,
                        });
                    }
                }
                if resilient {
                    // Delivery-retry epilogue: wait out a deterministic
                    // jittered backoff for in-flight acks, retransmit any
                    // window still unacknowledged, and repeat within the
                    // retry budget. A destination that never acks becomes
                    // an explicit DeliveryGap — the query completes with
                    // a loud record of what is missing instead of
                    // hanging. Only then does Eos go out, so consumers
                    // cannot exit while redelivery is still possible.
                    if let Some(log_vec) = &logs {
                        let mut backoff = RetryBackoff::new(&retry_policy, sidx as u64);
                        let mut gapped = vec![false; rings.len()];
                        'retry: for attempt in 0..=retry_policy.max_retries {
                            // A destination whose ring closed can never
                            // ack again, and with failover disabled
                            // nothing can revive delivery there: record
                            // its gap immediately instead of sleeping out
                            // the whole backoff budget against a dead
                            // consumer. With failover enabled the budget
                            // is exactly what keeps this producer alive
                            // until the lease expires and the coordinator
                            // replays the dead partition's log onto the
                            // survivors, so the fast path stays off.
                            if !failover_on {
                                for dest in 0..rings.len() {
                                    if !disconnected[dest] || gapped[dest] {
                                        continue;
                                    }
                                    gapped[dest] = true;
                                    buffers[dest].clear();
                                    let _ = log_vec[sidx].force_checkpoint(dest as u32);
                                    let windows = log_vec[sidx].undelivered_windows(dest as u32);
                                    if !windows.is_empty() {
                                        let tuples: u64 =
                                            windows.iter().map(|(_, w)| w.len() as u64).sum();
                                        gaps.lock().push(DeliveryGap {
                                            source: sidx,
                                            dest,
                                            windows: windows.len() as u64,
                                            tuples,
                                        });
                                    }
                                }
                                // Nothing pending at any live destination:
                                // skip the remaining backoff outright.
                                if (0..rings.len()).all(|d| {
                                    gapped[d]
                                        || log_vec[sidx].undelivered_windows(d as u32).is_empty()
                                }) {
                                    break 'retry;
                                }
                            }
                            // Sleep in short slices with a pause-point in
                            // each, so a concurrent (failover) recall can
                            // still park this producer.
                            let mut remaining = backoff.delay_ms(attempt);
                            while remaining > 0.0 {
                                if let Some(g) = &gate {
                                    let now_epoch = g.pause_point();
                                    if now_epoch != epoch {
                                        epoch = now_epoch;
                                        restaged_total
                                            .fetch_add(restage(&mut buffers), Ordering::Relaxed);
                                        for dest in 0..rings.len() {
                                            flush(
                                                dest,
                                                &mut buffers,
                                                &mut disconnected,
                                                &mut due,
                                                &started_local,
                                                false,
                                            );
                                        }
                                    }
                                }
                                let slice = remaining.min(5.0);
                                thread::sleep(Duration::from_secs_f64(slice / 1000.0));
                                remaining -= slice;
                            }
                            // Close any window the run left open since the
                            // final scan flush (recalls and failover
                            // replay append to open windows) and push its
                            // marker out with whatever the buffer holds —
                            // one block, so marker delivery still implies
                            // content delivery.
                            for dest in 0..rings.len() {
                                if gapped[dest] {
                                    continue;
                                }
                                if let Ok(Some(cp)) = log_vec[sidx].force_checkpoint(dest as u32) {
                                    buffers[dest].push(Staged::Marker(cp, log_vec[sidx].epoch()));
                                    flush(
                                        dest,
                                        &mut buffers,
                                        &mut disconnected,
                                        &mut due,
                                        &started_local,
                                        false,
                                    );
                                }
                            }
                            let mut undelivered_any = false;
                            for dest in 0..rings.len() {
                                if gapped[dest] {
                                    continue;
                                }
                                let windows = log_vec[sidx].undelivered_windows(dest as u32);
                                if windows.is_empty() {
                                    continue;
                                }
                                undelivered_any = true;
                                if attempt == retry_policy.max_retries {
                                    let tuples: u64 =
                                        windows.iter().map(|(_, w)| w.len() as u64).sum();
                                    gaps.lock().push(DeliveryGap {
                                        source: sidx,
                                        dest,
                                        windows: windows.len() as u64,
                                        tuples,
                                    });
                                } else {
                                    let epoch_now = log_vec[sidx].epoch();
                                    for (cp, items) in windows {
                                        retransmitted
                                            .fetch_add(items.len() as u64, Ordering::Relaxed);
                                        for (tag, t) in items {
                                            buffers[dest].push(Staged::Tuple(tag, t));
                                        }
                                        buffers[dest].push(Staged::Marker(cp, epoch_now));
                                        flush(
                                            dest,
                                            &mut buffers,
                                            &mut disconnected,
                                            &mut due,
                                            &started_local,
                                            true,
                                        );
                                    }
                                }
                            }
                            if !undelivered_any {
                                break 'retry;
                            }
                        }
                    }
                    for c in &ctrl {
                        c.send(Msg::Eos {
                            stream,
                            source: sidx,
                        });
                    }
                }
            }));
        }
        let peers = to_consumer.clone();
        let adapt_senders = to_consumer.clone();
        let backstop = to_consumer.clone();
        drop(to_consumer);

        // Consumer threads.
        let eos_needed = plan.sources.len();
        let build_eos_needed = plan
            .sources
            .iter()
            .filter(|s| s.stream == StreamTag::Build)
            .count();
        let mut consumer_handles = Vec::new();
        for (i, rx) in consumer_rx.into_iter().enumerate() {
            let rings = std::mem::take(&mut ring_rxs[i]);
            let waker = Arc::clone(&consumer_wakers[i]);
            let mut evaluator = stage.factory.create(i as u32);
            let node = stage.nodes[i];
            let perturbation = self.config.perturbations.get(&node).cloned();
            let results = result_tx.clone();
            let raw = raw_tx.clone();
            let ctrl = ctrl_tx.clone();
            let peers = peers.clone();
            let router = Arc::clone(&router);
            let logs = logs.clone();
            let processed_total = Arc::clone(&processed_total);
            let scale = self.config.cost_scale;
            let receive_cost = self.config.receive_cost_ms;
            let interval = self.config.adaptivity.monitoring_interval_tuples.max(1);
            let stage_id = stage.id;
            let query = plan.query;
            let processed_ctr = processed_ctr.clone();
            let chaos = self.config.chaos.clone();
            // Service-plane contention: co-resident queries on this node
            // inflate the modelled per-tuple cost. The counter is read
            // lock-free per tuple; the slope is fixed for the run.
            let contention = self
                .config
                .tenancy
                .as_ref()
                .map(|t| (t.ledger().counter(node), t.ledger().alpha()));
            let failover_on = self.config.failover.enabled;
            let recv_slice_ms = if failover_on {
                self.config.failover.heartbeat_ms.min(50)
            } else {
                50
            };
            consumer_handles.push(thread::spawn(move || -> (u64, u64) {
                let started = Instant::now();
                let mut processed = 0u64;
                let mut outputs_total = 0u64;
                let mut batch = 0u32;
                let mut batch_cost = 0.0;
                let mut batch_wait = 0.0;
                let mut out: Vec<Tuple> = Vec::new();
                let mut eos_seen = 0usize;
                let mut build_eos_seen = 0usize;
                // Probe tuples that arrived before the build phase
                // completed, with the source that logged them; replayed
                // once every build source is done (the iterator model
                // consumes the build input first), or recalled to their
                // new owner by a retrospective redistribution.
                let mut held_probes: Vec<(usize, Tuple)> = Vec::new();
                // Resilient-mode dedup: the transport is at-least-once
                // (retransmission, chaos duplication), processing must be
                // effectively-once. The filter works at two granularities
                // — whole-block range keys and `(source, seq)` tuple keys
                // — and evicts both when the covering recovery-log window
                // is acknowledged, keeping it O(unacked windows) instead
                // of O(tuples ever delivered).
                let mut dedup = DedupFilter::new();
                // Modelled processing cost accrued but not yet spent in
                // real time; paid once per block (or control message)
                // instead of once per tuple, which is where batching wins
                // its throughput back from the sleep granularity floor.
                let mut due = 0.0f64;
                // Probe-window acks deferred while the build phase is
                // incomplete: an ack is a *processing* receipt here, and
                // held probes are unprocessed — a crash before the build
                // completes must find their windows still replayable.
                let mut pending_acks: Vec<(usize, Checkpoint, u64)> = Vec::new();
                // Applies one checkpoint ack through the chaos seam. In
                // resilient mode the pending outputs are handed to the
                // collector *first*: once a window is acknowledged its
                // outputs are owned downstream, so a later crash of this
                // consumer can never lose them (replay covers exactly the
                // unacknowledged windows).
                let apply_ack = |source: usize,
                                 cp: Checkpoint,
                                 epoch: u64,
                                 out: &mut Vec<Tuple>,
                                 dedup: &mut DedupFilter| {
                    let Some(logs) = &logs else { return };
                    if resilient && !out.is_empty() {
                        let _ = results.send(std::mem::take(out));
                    }
                    let outcome = match chaos
                        .as_ref()
                        .map_or(NetAction::Deliver, |c| c.on_ack(source, i))
                    {
                        NetAction::Drop => None,
                        NetAction::Duplicate => {
                            let first = logs[source].acknowledge(cp.dest, cp.id, epoch);
                            let _ = logs[source].acknowledge(cp.dest, cp.id, epoch);
                            Some(first)
                        }
                        NetAction::DelayMs(extra) => {
                            if extra.is_finite() && extra > 0.0 {
                                spin_for(extra, scale);
                            }
                            Some(logs[source].acknowledge(cp.dest, cp.id, epoch))
                        }
                        NetAction::Deliver => Some(logs[source].acknowledge(cp.dest, cp.id, epoch)),
                    };
                    // Once the log accepts the ack the window can never be
                    // retransmitted again, so its dedup entries are dead
                    // weight — evict them. (`Duplicate` means somebody
                    // already acked it, same conclusion.)
                    if matches!(
                        outcome,
                        Some(AckOutcome::Accepted(_)) | Some(AckOutcome::Duplicate)
                    ) {
                        dedup.window_acked(source, cp.id);
                    }
                };
                // Evaluates one tuple, accruing the modelled (and
                // perturbed) cost into `due` for the caller to pay as one
                // sleep. Shared by the streaming path, the held-probe
                // replay, and migrated re-delivery, so every processed
                // tuple feeds the same M1 batch. The M1 cost estimate
                // stays per-tuple exact because it reads the model, not
                // the wall clock.
                let process_one = |evaluator: &mut Box<dyn PartitionEvaluator>,
                                   stream: StreamTag,
                                   tuple: &Tuple,
                                   out: &mut Vec<Tuple>,
                                   processed: &mut u64,
                                   outputs_total: &mut u64,
                                   batch: &mut u32,
                                   batch_cost: &mut f64,
                                   due: &mut f64| {
                    let Ok(outcome) = evaluator.process(stream, tuple) else {
                        return;
                    };
                    let stall = chaos
                        .as_ref()
                        .map_or(0.0, |c| c.stall_ms(StallSite::Consumer, i));
                    let tenants_factor = contention.as_ref().map_or(1.0, |(ctr, alpha)| {
                        let extra = ctr.load(Ordering::Relaxed).saturating_sub(1);
                        1.0 + alpha * cast::count_to_f64(u64::from(extra))
                    });
                    let model_cost = (perturbed(outcome.base_cost_ms, perturbation.as_ref())
                        + receive_cost
                        + if stall.is_finite() {
                            stall.max(0.0)
                        } else {
                            0.0
                        })
                        * tenants_factor;
                    *due += model_cost;
                    *processed += 1;
                    processed_total.fetch_add(1, Ordering::Relaxed);
                    if let Some(c) = &processed_ctr {
                        c.add(1);
                    }
                    *batch += 1;
                    *batch_cost += model_cost;
                    *outputs_total += outcome.outputs.len() as u64;
                    out.extend(outcome.outputs);
                };
                // Emits the M1 for the current batch. `force` flushes a
                // partial tail batch (end of stream); without it the
                // last `processed % interval` tuples would vanish from
                // the monitoring record.
                let emit_m1 = |batch: &mut u32,
                               batch_cost: &mut f64,
                               batch_wait: &mut f64,
                               processed: u64,
                               outputs_total: u64,
                               force: bool| {
                    if !monitoring || *batch == 0 || (!force && *batch < interval) {
                        return;
                    }
                    if chaos
                        .as_ref()
                        .is_some_and(|c| !c.on_notification(NotifyKind::M1, i))
                    {
                        // The notification is lost in flight: the batch
                        // counters still reset, exactly as if it had been
                        // sent and dropped by the network.
                        *batch = 0;
                        *batch_cost = 0.0;
                        *batch_wait = 0.0;
                        return;
                    }
                    let _ = raw.send(Raw::M1(M1 {
                        query,
                        partition: PartitionId::new(stage_id, i as u32),
                        node,
                        cost_per_tuple_ms: *batch_cost / f64::from(*batch),
                        leaf_wait_ms: *batch_wait / f64::from(*batch) / scale,
                        selectivity: if processed == 0 {
                            1.0
                        } else {
                            cast::ratio(outputs_total, processed)
                        },
                        tuples_produced: outputs_total,
                        at: SimTime::from_millis(
                            started.elapsed().as_secs_f64() * 1000.0 / scale.max(1e-9),
                        ),
                    }));
                    *batch = 0;
                    *batch_cost = 0.0;
                    *batch_wait = 0.0;
                };
                // Consumes one tuple block off a ring. Resilient-mode
                // dedup runs at two granularities: a whole-block range
                // hit skips every tuple in one set probe (markers still
                // apply — acks are idempotent, and the duplicate may be
                // the only copy whose ack survives the chaos plan), and
                // the per-tuple `seen` filter catches redelivery that is
                // not block-identical (a window retransmitted into a
                // differently-packed block).
                let handle_block = |block: Block,
                                    evaluator: &mut Box<dyn PartitionEvaluator>,
                                    out: &mut Vec<Tuple>,
                                    processed: &mut u64,
                                    outputs_total: &mut u64,
                                    batch: &mut u32,
                                    batch_cost: &mut f64,
                                    batch_wait: &mut f64,
                                    due: &mut f64,
                                    held_probes: &mut Vec<(usize, Tuple)>,
                                    pending_acks: &mut Vec<(usize, Checkpoint, u64)>,
                                    dedup: &mut DedupFilter,
                                    build_eos_seen: usize| {
                    let source = block.source;
                    let retransmit = block.retransmit;
                    let dup = resilient
                        && block.range_key().is_some_and(|(first, last, count)| {
                            dedup.block_is_dup(source, (first, last, count as u64))
                        });
                    let building = build_eos_needed > 0 && build_eos_seen < build_eos_needed;
                    // The covering marker for each tuple is the next one
                    // at a higher index in the block: retransmissions
                    // always repack a window's tuples with its marker, so
                    // an already-acked marker id shadows every tuple ahead
                    // of it even after their per-tuple keys were evicted.
                    let marker_ids: Vec<(usize, u64)> = block
                        .items
                        .iter()
                        .enumerate()
                        .filter_map(|(idx, item)| match item {
                            Staged::Marker(cp, _) => Some((idx, cp.id)),
                            Staged::Tuple(..) => None,
                        })
                        .collect();
                    let mut next_marker = 0usize;
                    for (idx, staged) in block.items.into_iter().enumerate() {
                        while next_marker < marker_ids.len() && marker_ids[next_marker].0 < idx {
                            next_marker += 1;
                        }
                        match staged {
                            Staged::Tuple(stream, tuple) => {
                                if dup {
                                    continue;
                                }
                                if resilient {
                                    if marker_ids
                                        .get(next_marker)
                                        .is_some_and(|&(_, id)| dedup.is_acked(source, id))
                                    {
                                        continue;
                                    }
                                    if dedup.tuple_is_dup(source, tuple.seq()) {
                                        continue;
                                    }
                                }
                                if retransmit {
                                    // A retransmitted window was addressed
                                    // before any bucket moves since it
                                    // closed: under hash routing a fresh
                                    // tuple whose bucket migrated away must
                                    // be processed by the current owner.
                                    // Forwarding here — behind the dedup
                                    // filter, log entry riding along — is
                                    // the sound direction: re-routing at
                                    // the producer would let an ack-loss
                                    // redelivery reach a partition that
                                    // never saw the original and duplicate
                                    // its output.
                                    let owner = {
                                        let mut r = router.lock();
                                        r.bucket_count()
                                            .map(|_| r.route(stream, &tuple).unwrap_or(i as u32))
                                    };
                                    if let Some(owner) = owner {
                                        if owner as usize != i {
                                            if let Some(logs) = &logs {
                                                let seq = tuple.seq();
                                                let _ = logs[source].migrate_matching(
                                                    i as u32,
                                                    owner,
                                                    |(s, t)| *s == stream && t.seq() == seq,
                                                );
                                            }
                                            peers[owner as usize].send(Msg::Migrated {
                                                stream,
                                                source,
                                                tuple,
                                            });
                                            continue;
                                        }
                                    }
                                }
                                if stream == StreamTag::Probe && building {
                                    held_probes.push((source, tuple));
                                } else {
                                    process_one(
                                        evaluator,
                                        stream,
                                        &tuple,
                                        out,
                                        processed,
                                        outputs_total,
                                        batch,
                                        batch_cost,
                                        due,
                                    );
                                    emit_m1(
                                        batch,
                                        batch_cost,
                                        batch_wait,
                                        *processed,
                                        *outputs_total,
                                        false,
                                    );
                                }
                            }
                            Staged::Marker(cp, epoch) => {
                                debug_assert_eq!(cp.dest as usize, i);
                                // Acks are best-effort control traffic: a
                                // lost one keeps the window in the log
                                // until a retransmission's ack supersedes
                                // it, a duplicate is absorbed by the log
                                // itself. Probe-window acks are deferred
                                // while the build phase is incomplete. The
                                // window closes at the *marker*, not the
                                // ack: entries delivered since the last
                                // marker are now covered by this id and
                                // will be evicted when its ack lands.
                                if resilient {
                                    dedup.close_window(source, cp.id);
                                }
                                if resilient && building && Some(source) != build_source {
                                    pending_acks.push((source, cp, epoch));
                                } else {
                                    apply_ack(source, cp, epoch, out, dedup);
                                }
                            }
                        }
                    }
                    // Pay the block's accumulated modelled cost as one
                    // sleep instead of one per tuple.
                    if *due > 0.0 {
                        spin_for(*due, scale);
                        *due = 0.0;
                    }
                };
                // Drains one ring, consulting the crash seam once per
                // block. A macro rather than a closure: it needs the
                // enclosing `return` (a crash is the whole thread dying).
                macro_rules! drain_ring {
                    ($r:expr) => {
                        while let Some(block) = $r.pop() {
                            if chaos.as_ref().is_some_and(|c| c.crash_worker(i)) {
                                return (processed, dedup.peak());
                            }
                            handle_block(
                                block,
                                &mut evaluator,
                                &mut out,
                                &mut processed,
                                &mut outputs_total,
                                &mut batch,
                                &mut batch_cost,
                                &mut batch_wait,
                                &mut due,
                                &mut held_probes,
                                &mut pending_acks,
                                &mut dedup,
                                build_eos_seen,
                            );
                        }
                    };
                }
                // Set once the control channel disconnects (every
                // producer and the coordinator are gone); the loop makes
                // one final pass over the rings before exiting.
                let mut ctrl_gone = false;
                // A control message pulled out of order by the data
                // plane's preemption check, handled first next cycle.
                let mut stashed: Option<Msg> = None;
                // Set by the final Eos: exit once the cycle unwinds.
                let mut done = false;
                // The two planes carry no ordering between them, so the
                // loop re-establishes the old single-FIFO guarantees by
                // construction. Control drains first and completely: a
                // recall re-delivery (`Migrated`) is enqueued before the
                // coordinator resumes the producers, hence before any
                // post-recall block is pushed — handling all visible
                // control before any data keeps migrated state ahead of
                // the tuples that probe it. The data drain re-checks the
                // control channel before every block for the same reason.
                // The inverse direction (a block pushed before Eos/Drain
                // was sent) is handled inside those arms, which drain the
                // rings the guarantee covers before acting.
                loop {
                    // Beat per cycle: an idle consumer renews its lease
                    // once per park slice, a busy one once per pass.
                    if failover_on {
                        let _ = raw.send(Raw::Beat(i));
                    }
                    let mut progressed = false;
                    // Control plane, exhaustively and in FIFO order.
                    loop {
                        let msg = match stashed.take() {
                            Some(m) => m,
                            None => match rx.try_recv() {
                                Ok(m) => m,
                                Err(TryRecvError::Disconnected) => {
                                    ctrl_gone = true;
                                    break;
                                }
                                Err(TryRecvError::Empty) => break,
                            },
                        };
                        progressed = true;
                        // The crash seam: consulted once per control
                        // message (and once per block in the drains).
                        // Dying here means no flush, no acks, no control
                        // replies — exactly a vanished node.
                        if chaos.as_ref().is_some_and(|c| c.crash_worker(i)) {
                            return (processed, dedup.peak());
                        }
                        match msg {
                            Msg::Eos {
                                stream: tag,
                                source,
                            } => {
                                // Every push from this producer precedes
                                // its Eos: consume its ring before acting,
                                // so the held-probe replay and the final
                                // exit observe all of its blocks.
                                drain_ring!(rings[source]);
                                eos_seen += 1;
                                if tag == StreamTag::Build {
                                    build_eos_seen += 1;
                                }
                                if build_eos_needed > 0 && build_eos_seen == build_eos_needed {
                                    for (n, (_, tuple)) in
                                        std::mem::take(&mut held_probes).into_iter().enumerate()
                                    {
                                        // Replaying a large backlog takes real
                                        // time; pay the accrued cost in
                                        // slices and keep the lease renewed.
                                        if n % 16 == 0 {
                                            if failover_on {
                                                let _ = raw.send(Raw::Beat(i));
                                            }
                                            if due > 0.0 {
                                                spin_for(due, scale);
                                                due = 0.0;
                                            }
                                        }
                                        process_one(
                                            &mut evaluator,
                                            StreamTag::Probe,
                                            &tuple,
                                            &mut out,
                                            &mut processed,
                                            &mut outputs_total,
                                            &mut batch,
                                            &mut batch_cost,
                                            &mut due,
                                        );
                                        emit_m1(
                                            &mut batch,
                                            &mut batch_cost,
                                            &mut batch_wait,
                                            processed,
                                            outputs_total,
                                            false,
                                        );
                                    }
                                    if due > 0.0 {
                                        spin_for(due, scale);
                                        due = 0.0;
                                    }
                                    // The held probes are processed: their
                                    // deferred window acks are now true
                                    // processing receipts, so release them.
                                    for (source, cp, epoch) in std::mem::take(&mut pending_acks) {
                                        apply_ack(source, cp, epoch, &mut out, &mut dedup);
                                    }
                                }
                                if eos_seen == eos_needed {
                                    // Flush the partial tail batch before the
                                    // monitoring record goes quiet.
                                    emit_m1(
                                        &mut batch,
                                        &mut batch_cost,
                                        &mut batch_wait,
                                        processed,
                                        outputs_total,
                                        true,
                                    );
                                    done = true;
                                }
                            }
                            Msg::Drain { token } => {
                                // The producers are parked behind the recall
                                // gate, so the rings hold everything sent
                                // before the pause: consume it all before
                                // replying, which is exactly what `Drained`
                                // promises the coordinator.
                                for r in &rings {
                                    drain_ring!(r);
                                }
                                if chaos
                                    .as_ref()
                                    .is_none_or(|c| c.on_recall_ctrl(RecallPhase::Drain, i))
                                {
                                    let _ = ctrl.send(Ctrl::Drained { token });
                                }
                                // A swallowed reply models a crashed worker
                                // mid-recall: the coordinator's barrier times
                                // out and the recall aborts pre-swap, leaving
                                // router and state untouched.
                            }
                            Msg::Migrate {
                                token,
                                bucket_count,
                                outgoing,
                            } => {
                                let mut state_moved = 0u64;
                                let mut recalled = 0u64;
                                // Hand the surrendered buckets' operator
                                // state to the new owners. The entries leave
                                // this consumer's slice of the build log: the
                                // migration traffic now carries them.
                                if let Some(bc) = bucket_count {
                                    if !outgoing.is_empty() {
                                        let extracted = evaluator.extract_state(bc, &outgoing);
                                        if !resilient {
                                            if let (Some(logs), Some(b)) = (&logs, build_source) {
                                                let moved: HashSet<u64> = extracted
                                                    .iter()
                                                    .map(|(_, t)| t.seq())
                                                    .collect();
                                                let _ =
                                                    logs[b].retire_matching(i as u32, |(s, t)| {
                                                        *s == StreamTag::Build
                                                            && moved.contains(&t.seq())
                                                    });
                                            }
                                        }
                                        for (stream, tuple) in extracted {
                                            let dest = {
                                                let mut r = router.lock();
                                                r.route(stream, &tuple).unwrap_or(i as u32)
                                            }
                                                as usize;
                                            state_moved += 1;
                                            if dest == i {
                                                // Outgoing buckets route away
                                                // by construction; re-insert
                                                // defensively if not.
                                                let _ = evaluator.process(stream, &tuple);
                                            } else {
                                                if resilient {
                                                    // The log entry follows its
                                                    // tuple to the new owner's
                                                    // open window instead of
                                                    // retiring: a later crash
                                                    // there must still find it
                                                    // replayable.
                                                    if let (Some(logs), Some(b)) =
                                                        (&logs, build_source)
                                                    {
                                                        let seq = tuple.seq();
                                                        let _ = logs[b].migrate_matching(
                                                            i as u32,
                                                            dest as u32,
                                                            |(s, t)| {
                                                                *s == StreamTag::Build
                                                                    && t.seq() == seq
                                                            },
                                                        );
                                                    }
                                                }
                                                peers[dest].send(Msg::Migrated {
                                                    stream,
                                                    source: build_source.unwrap_or(0),
                                                    tuple,
                                                });
                                            }
                                        }
                                    }
                                }
                                // Recall held probe tuples whose bucket moved.
                                if !held_probes.is_empty() {
                                    let mut retire: HashMap<usize, HashSet<u64>> = HashMap::new();
                                    for (source, tuple) in std::mem::take(&mut held_probes) {
                                        let dest = {
                                            let mut r = router.lock();
                                            r.route(StreamTag::Probe, &tuple).unwrap_or(i as u32)
                                        }
                                            as usize;
                                        if dest == i {
                                            held_probes.push((source, tuple));
                                        } else {
                                            if resilient {
                                                // As with build state: the
                                                // entry rides along, staying
                                                // replayable at the new owner.
                                                if let Some(logs) = &logs {
                                                    let seq = tuple.seq();
                                                    let _ = logs[source].migrate_matching(
                                                        i as u32,
                                                        dest as u32,
                                                        |(s, t)| {
                                                            *s == StreamTag::Probe && t.seq() == seq
                                                        },
                                                    );
                                                }
                                            } else {
                                                retire
                                                    .entry(source)
                                                    .or_default()
                                                    .insert(tuple.seq());
                                            }
                                            recalled += 1;
                                            peers[dest].send(Msg::Migrated {
                                                stream: StreamTag::Probe,
                                                source,
                                                tuple,
                                            });
                                        }
                                    }
                                    if let Some(logs) = &logs {
                                        for (source, seqs) in retire {
                                            let _ =
                                                logs[source].retire_matching(i as u32, |(s, t)| {
                                                    *s == StreamTag::Probe
                                                        && seqs.contains(&t.seq())
                                                });
                                        }
                                    }
                                }
                                if chaos
                                    .as_ref()
                                    .is_none_or(|c| c.on_recall_ctrl(RecallPhase::Migrate, i))
                                {
                                    let _ = ctrl.send(Ctrl::MigrateDone {
                                        token,
                                        state_moved,
                                        recalled,
                                    });
                                }
                            }
                            Msg::Migrated {
                                stream,
                                source,
                                tuple,
                            } => {
                                // Recorded but always processed: bucket
                                // ping-pong legitimately re-delivers a seq,
                                // and the recall barrier already guarantees
                                // exactly-once for this path.
                                if resilient {
                                    dedup.note_delivered(source, tuple.seq());
                                }
                                if stream == StreamTag::Probe
                                    && build_eos_needed > 0
                                    && build_eos_seen < build_eos_needed
                                {
                                    held_probes.push((source, tuple));
                                } else {
                                    process_one(
                                        &mut evaluator,
                                        stream,
                                        &tuple,
                                        &mut out,
                                        &mut processed,
                                        &mut outputs_total,
                                        &mut batch,
                                        &mut batch_cost,
                                        &mut due,
                                    );
                                    emit_m1(
                                        &mut batch,
                                        &mut batch_cost,
                                        &mut batch_wait,
                                        processed,
                                        outputs_total,
                                        false,
                                    );
                                    if due > 0.0 {
                                        spin_for(due, scale);
                                        due = 0.0;
                                    }
                                }
                            }
                        }
                        if done {
                            break;
                        }
                    }
                    if done {
                        break;
                    }
                    // Data plane: drain every ring, re-checking the
                    // control channel before each block — a `Migrated`
                    // that arrives mid-drain precedes any block pushed
                    // after it, so control preempts.
                    'drain: for r in &rings {
                        loop {
                            if !ctrl_gone {
                                match rx.try_recv() {
                                    Ok(m) => {
                                        stashed = Some(m);
                                        break 'drain;
                                    }
                                    Err(TryRecvError::Disconnected) => ctrl_gone = true,
                                    Err(TryRecvError::Empty) => {}
                                }
                            }
                            let Some(block) = r.pop() else { break };
                            progressed = true;
                            if chaos.as_ref().is_some_and(|c| c.crash_worker(i)) {
                                return (processed, dedup.peak());
                            }
                            handle_block(
                                block,
                                &mut evaluator,
                                &mut out,
                                &mut processed,
                                &mut outputs_total,
                                &mut batch,
                                &mut batch_cost,
                                &mut batch_wait,
                                &mut due,
                                &mut held_probes,
                                &mut pending_acks,
                                &mut dedup,
                                build_eos_seen,
                            );
                        }
                    }
                    if stashed.is_some() {
                        continue;
                    }
                    if ctrl_gone {
                        // Every sender is gone and the rings were just
                        // drained dry: nothing more can arrive.
                        break;
                    }
                    if progressed {
                        continue;
                    }
                    // Idle. Register on the waker, then re-poll both
                    // planes: a push or send that landed between the
                    // polls above and the registration would wake nobody,
                    // and the park would eat a full slice against input
                    // already waiting.
                    waker.register();
                    if rings.iter().any(|r| !r.is_empty()) {
                        waker.clear();
                        continue;
                    }
                    match rx.try_recv() {
                        Ok(m) => {
                            waker.clear();
                            stashed = Some(m);
                        }
                        Err(TryRecvError::Disconnected) => {
                            waker.clear();
                            ctrl_gone = true;
                        }
                        Err(TryRecvError::Empty) => {
                            // The partition spends this slice waiting for
                            // input. Dropping the wait (as this arm once
                            // did) understated the leaf-wait signal the
                            // A2 diagnoser keys on.
                            let wait_started = Instant::now();
                            thread::park_timeout(Duration::from_millis(recv_slice_ms));
                            waker.clear();
                            batch_wait += wait_started.elapsed().as_secs_f64() * 1000.0;
                        }
                    }
                }
                if failover_on {
                    // A clean exit is not a death: retire the lease.
                    let _ = raw.send(Raw::Done(i));
                }
                let _ = results.send(std::mem::take(&mut out));
                (processed, dedup.peak())
            }));
        }
        drop(result_tx);
        drop(ctrl_tx);
        drop(peers);

        // Adaptivity thread: detector -> diagnoser -> responder ->
        // shared router; for retrospective commands it additionally acts
        // as the recall coordinator.
        let adapt_handle = {
            let adapt = self.config.adaptivity.clone();
            let router = Arc::clone(&router);
            let routed_total = Arc::clone(&routed_total);
            let processed_total = Arc::clone(&processed_total);
            let gate = gate.clone();
            let initial = router.lock().current_distribution();
            let stage_id = stage.id;
            let partitions_u32 = cast::index_to_u32(partitions)?;
            let scale = self.config.cost_scale;
            let recall_timeout = Duration::from_millis(self.config.recall_timeout_ms);
            let obs = obs.clone();
            let failover_cfg = self.config.failover.clone();
            let flogs = logs.clone();
            let query = plan.query;
            let tenancy = self.config.tenancy.clone();
            thread::spawn(move || -> AdaptStats {
                let mut detector = MonitoringEventDetector::new(&adapt);
                let mut diagnoser = Diagnoser::new(stage_id, partitions_u32, initial, &adapt);
                let mut responder = Responder::new(&adapt);
                if let Some(o) = &obs {
                    detector.set_metric_sink(o.sink());
                    diagnoser.set_metric_sink(o.sink());
                    responder.set_metric_sink(o.sink());
                }
                // Timeline events carry both clocks: `at` is the model
                // time stamped on the raw event by its producer thread,
                // `wall_ms` is the real elapsed time at recording.
                let record = |at: SimTime, kind: TimelineKind| -> u64 {
                    match &obs {
                        Some(o) => o.record(
                            at.as_millis(),
                            Some(started.elapsed().as_secs_f64() * 1000.0),
                            kind,
                        ),
                        None => 0,
                    }
                };
                let now_model = || {
                    SimTime::from_millis(started.elapsed().as_secs_f64() * 1000.0 / scale.max(1e-9))
                };
                let mut stats = AdaptStats::default();
                let mut recall_token = 0u64;
                let mut monitor = failover_cfg
                    .enabled
                    .then(|| HeartbeatMonitor::new(partitions, failover_cfg.lease_ms));
                // Dead workers awaiting a failover recall, with per-worker
                // attempt counts: an aborted attempt (lost control reply,
                // barrier timeout) is retried a few times before the worker
                // is left to the producers' delivery-gap path.
                let mut failover_queue: Vec<(usize, u64, u32)> = Vec::new();
                loop {
                    // With a monitor installed the loop must keep checking
                    // leases even when no monitoring events arrive, so the
                    // blocking receive becomes a heartbeat-paced timeout.
                    let received = if monitor.is_some() {
                        match raw_rx
                            .recv_timeout(Duration::from_millis(failover_cfg.heartbeat_ms.max(1)))
                        {
                            Ok(r) => Some(r),
                            Err(RecvTimeoutError::Timeout) => None,
                            Err(RecvTimeoutError::Disconnected) => break,
                        }
                    } else {
                        match raw_rx.recv() {
                            Ok(r) => Some(r),
                            Err(_) => break,
                        }
                    };
                    if let Some(m) = &mut monitor {
                        match received {
                            Some(Raw::Beat(w)) => m.beat(w),
                            Some(Raw::Done(w)) => m.mark_done(w),
                            _ => {}
                        }
                        while let Some(dead) = m.expired() {
                            stats.nodes_failed += 1;
                            let at = now_model();
                            let down_seq = record(
                                at,
                                TimelineKind::NodeDown {
                                    partition: PartitionId::new(stage_id, dead as u32).to_string(),
                                },
                            );
                            responder.on_node_failure(at);
                            failover_queue.push((dead, down_seq, 0));
                        }
                    }
                    if !failover_queue.is_empty() {
                        let (dead, down_seq, attempts) = failover_queue[0];
                        let completed = run_failover(FailoverRun {
                            dead,
                            down_seq,
                            gate: gate.as_deref(),
                            monitor: monitor.as_ref(),
                            logs: flogs.as_deref(),
                            adapt_senders: &adapt_senders,
                            ctrl_rx: &ctrl_rx,
                            router: &router,
                            diagnoser: &mut diagnoser,
                            responder: &mut responder,
                            obs: obs.as_ref(),
                            record: &record,
                            now_model: &now_model,
                            stage_id,
                            build_source,
                            recall_timeout,
                            recall_token: &mut recall_token,
                            stats: &mut stats,
                        });
                        if completed {
                            failover_queue.remove(0);
                        } else if attempts + 1 >= FAILOVER_ATTEMPTS {
                            // Give up: the producers' retry budget will
                            // exhaust against the dead partition and record
                            // an explicit delivery gap instead of hanging.
                            failover_queue.remove(0);
                        } else {
                            failover_queue[0].2 = attempts + 1;
                        }
                    }
                    let Some(raw) = received else { continue };
                    let (output, at, raw_seq) = match raw {
                        Raw::M1(event) => {
                            stats.m1 += 1;
                            let output = detector.on_m1(&event);
                            let raw_seq = record(
                                event.at,
                                TimelineKind::RawM1 {
                                    partition: event.partition.to_string(),
                                    node: event.node.to_string(),
                                    cost_per_tuple_ms: event.cost_per_tuple_ms,
                                    leaf_wait_ms: event.leaf_wait_ms,
                                    gate_fired: !matches!(output, DetectorOutput::Quiet),
                                },
                            );
                            (output, event.at, raw_seq)
                        }
                        Raw::M2(event) => {
                            stats.m2 += 1;
                            let output = detector.on_m2(&event);
                            let raw_seq = record(
                                event.at,
                                TimelineKind::RawM2 {
                                    producer: event.producer.to_string(),
                                    recipient: event.recipient.to_string(),
                                    cost_per_tuple_ms: event.cost_per_tuple_ms(),
                                    gate_fired: !matches!(output, DetectorOutput::Quiet),
                                },
                            );
                            (output, event.at, raw_seq)
                        }
                        // Liveness traffic was consumed by the monitor
                        // above; it never feeds the detector.
                        Raw::Beat(_) | Raw::Done(_) => continue,
                        Raw::ProducersDone => break,
                    };
                    // Commands to deploy this round, each with the seq of
                    // its diagnosis-level timeline event and whether it
                    // came from the cross-query (tenant) diagnoser.
                    let mut pending: Vec<(AdaptationCommand, u64, bool)> = Vec::new();
                    let imbalance = match output {
                        DetectorOutput::Quiet => None,
                        DetectorOutput::Cost(update) => {
                            let notify_seq = record(
                                at,
                                TimelineKind::DetectorNotify {
                                    scope: update.partition.to_string(),
                                    avg_cost_ms: update.avg_cost_ms,
                                    window_len: update.window_len,
                                    raw_seq,
                                },
                            );
                            // Service plane: the same smoothed cost feeds
                            // the shared cross-query diagnoser, which sees
                            // *all* tenants' placements and may attribute
                            // the shift to a co-resident query.
                            if let Some(t) = &tenancy {
                                if let Some(r) = t.observe_cost(
                                    query,
                                    update.partition,
                                    update.avg_cost_ms,
                                    update.at,
                                ) {
                                    let tenant_seq = record(
                                        update.at,
                                        TimelineKind::TenantRebalance {
                                            query: r.query.to_string(),
                                            induced_by: r.induced_by.to_string(),
                                            node: r.node.to_string(),
                                            proposed: r.proposed.weights().to_vec(),
                                            notify_seq,
                                        },
                                    );
                                    t.deployed(query, r.proposed.clone());
                                    pending.push((
                                        AdaptationCommand {
                                            stage: stage_id,
                                            new_distribution: r.proposed,
                                            retrospective: adapt.response == ResponsePolicy::R1,
                                            at: r.at,
                                        },
                                        tenant_seq,
                                        true,
                                    ));
                                }
                            }
                            diagnoser
                                .on_cost_update(&update)
                                .map(|imb| (imb, notify_seq))
                        }
                        DetectorOutput::Comm(update) => {
                            let notify_seq = record(
                                at,
                                TimelineKind::DetectorNotify {
                                    scope: format!("{}->{}", update.producer, update.recipient),
                                    avg_cost_ms: update.avg_cost_per_tuple_ms,
                                    window_len: update.window_len,
                                    raw_seq,
                                },
                            );
                            diagnoser
                                .on_comm_update(&update)
                                .map(|imb| (imb, notify_seq))
                        }
                    };
                    if let Some((imbalance, notify_seq)) = imbalance {
                        let diagnosis_seq = record(
                            imbalance.at,
                            TimelineKind::Diagnosis {
                                stage: imbalance.stage.to_string(),
                                proposed: imbalance.proposed.weights().to_vec(),
                                costs: imbalance.costs.clone(),
                                notify_seq,
                            },
                        );
                        // R1 estimates progress from tuples *processed*
                        // (what a recall would have to preserve), R2 from
                        // tuples routed — mirroring the simulator.
                        let done = if adapt.response == ResponsePolicy::R1 {
                            processed_total.load(Ordering::Relaxed)
                        } else {
                            routed_total.load(Ordering::Relaxed)
                        };
                        let progress = cast::ratio(done, total_rows.max(1));
                        let (decision, cmd) = responder.on_imbalance(&imbalance, progress);
                        record(
                            imbalance.at,
                            TimelineKind::ResponderDecision {
                                decision: decision.as_str().to_string(),
                                diagnosis_seq,
                            },
                        );
                        if let Some(cmd) = cmd {
                            pending.push((cmd, diagnosis_seq, false));
                        }
                    }
                    for (mut cmd, diagnosis_seq, tenant) in pending {
                        // A diagnosis computed from pre-failure observations
                        // may still weight a dead partition; zero it so no
                        // adaptation resurrects routing to a lost worker.
                        if let Some(m) = &monitor {
                            let weights = cmd.new_distribution.weights();
                            let stale = weights
                                .iter()
                                .enumerate()
                                .any(|(p, &w)| m.is_dead(p) && w > 0.0);
                            if stale {
                                let w: Vec<f64> = weights
                                    .iter()
                                    .enumerate()
                                    .map(|(p, &w)| if m.is_dead(p) { 0.0 } else { w })
                                    .collect();
                                match DistributionVector::new(&w) {
                                    Ok(d) => cmd.new_distribution = d,
                                    // All surviving weight vanished: nothing
                                    // sane to deploy.
                                    Err(_) => continue,
                                }
                            }
                        }
                        diagnoser.set_distribution(cmd.new_distribution.clone());
                        if !cmd.retrospective {
                            // Prospective: swap the routing table; only
                            // future tuples are affected.
                            if router
                                .lock()
                                .apply_distribution(&cmd.new_distribution)
                                .is_ok()
                            {
                                stats.deployed += 1;
                                if tenant {
                                    stats.tenant_rebalances += 1;
                                }
                                record(
                                    cmd.at,
                                    TimelineKind::Deploy {
                                        stage: cmd.stage.to_string(),
                                        weights: cmd.new_distribution.weights().to_vec(),
                                        retrospective: false,
                                        diagnosis_seq,
                                    },
                                );
                                responder.on_deploy_acknowledged(now_model());
                            }
                            continue;
                        }
                        let Some(gate) = gate.as_ref() else { continue };
                        // Retrospective: run the drain-barrier recall.
                        recall_token += 1;
                        let token = recall_token;
                        match gate.begin_pause(recall_timeout) {
                            None => {
                                stats.recalls_aborted += 1;
                            }
                            Some(0) => {
                                // Every producer already finished; the
                                // consumers may exit at any moment, so
                                // the barrier cannot be trusted. The
                                // remaining work drains under the old
                                // distribution.
                                gate.abort_pause();
                                stats.recalls_aborted += 1;
                            }
                            Some(_) => {
                                // Dead workers can never answer the barrier;
                                // address the recall to the survivors only.
                                let targets: Vec<usize> = (0..adapt_senders.len())
                                    .filter(|&p| {
                                        monitor
                                            .as_ref()
                                            .is_none_or(|m| !m.is_dead(p) && !m.is_done(p))
                                    })
                                    .collect();
                                let drained = !targets.is_empty()
                                    && targets
                                        .iter()
                                        .all(|&p| adapt_senders[p].send(Msg::Drain { token }))
                                    && collect_replies(
                                        &ctrl_rx,
                                        token,
                                        targets.len(),
                                        false,
                                        recall_timeout,
                                    )
                                    .is_some();
                                if !drained {
                                    gate.abort_pause();
                                    stats.recalls_aborted += 1;
                                    continue;
                                }
                                let moves = {
                                    let mut r = router.lock();
                                    r.apply_retrospective(&cmd.new_distribution)
                                };
                                let Ok(moves) = moves else {
                                    gate.abort_pause();
                                    stats.recalls_aborted += 1;
                                    continue;
                                };
                                stats.deployed += 1;
                                if tenant {
                                    stats.tenant_rebalances += 1;
                                }
                                let deploy_seq = record(
                                    cmd.at,
                                    TimelineKind::Deploy {
                                        stage: cmd.stage.to_string(),
                                        weights: cmd.new_distribution.weights().to_vec(),
                                        retrospective: true,
                                        diagnosis_seq,
                                    },
                                );
                                let epoch = gate.epoch() + 1;
                                let start_seq = record(
                                    cmd.at,
                                    TimelineKind::RecallStart {
                                        stage: cmd.stage.to_string(),
                                        epoch,
                                        deploy_seq,
                                    },
                                );
                                let bucket_count = router.lock().bucket_count();
                                for &p in &targets {
                                    let outgoing =
                                        moves.outgoing.get(p).cloned().unwrap_or_default();
                                    adapt_senders[p].send(Msg::Migrate {
                                        token,
                                        bucket_count,
                                        outgoing,
                                    });
                                }
                                let replies = collect_replies(
                                    &ctrl_rx,
                                    token,
                                    targets.len(),
                                    true,
                                    recall_timeout,
                                );
                                let (moved, recalled) = replies.unwrap_or((0, 0));
                                stats.state_tuples_migrated += moved;
                                stats.tuples_recalled += recalled;
                                let now = now_model();
                                record(
                                    now,
                                    TimelineKind::RecallFinish {
                                        epoch,
                                        state_tuples_migrated: moved,
                                        tuples_recalled: recalled,
                                        start_seq,
                                    },
                                );
                                responder.on_deploy_acknowledged(now);
                                if replies.is_some() {
                                    stats.recalls_completed += 1;
                                } else {
                                    stats.recalls_aborted += 1;
                                }
                                // Resume the producers even if a reply
                                // timed out: leaving them parked would
                                // deadlock the run instead of surfacing
                                // the failure at join time.
                                gate.resume(epoch);
                            }
                        }
                    }
                }
                // Teardown: surface how much per-stream state the loop
                // accumulated, then evict it so detector/diagnoser maps
                // never outlive the query they monitored.
                if let Some(o) = &obs {
                    o.metrics()
                        .gauge("adapt.tracked_streams_at_teardown")
                        .set(cast::usize_to_f64(
                            detector.tracked_streams() + diagnoser.tracked_cost_entries(),
                        ));
                }
                detector.reset_for_query(query);
                diagnoser.reset_for_query();
                let after = detector.tracked_streams() + diagnoser.tracked_cost_entries();
                debug_assert_eq!(after, 0);
                // Surfaced separately from the pre-eviction gauge so the
                // chaos oracles can assert a chaos-killed worker's streams
                // were actually retired, not merely counted.
                if let Some(o) = &obs {
                    o.metrics()
                        .gauge("adapt.tracked_streams_after_teardown")
                        .set(cast::usize_to_f64(after));
                }
                stats
            })
        };

        // Wait for producers, then consumers, then the adaptivity thread.
        // Every handle is joined even when an earlier one panicked, so a
        // single failed worker cannot leave stray threads running behind
        // an early error return; the first failure is reported after all
        // threads have stopped.
        let mut panicked: Vec<String> = Vec::new();
        for (i, h) in producer_handles.into_iter().enumerate() {
            if h.join().is_err() {
                panicked.push(format!("producer {i}"));
                // A dead producer never sent its end-of-stream markers;
                // without them the consumers would wait forever, because
                // the recall coordinator keeps the channels open.
                for tx in &backstop {
                    tx.send(Msg::Eos {
                        stream: plan.sources[i].stream,
                        source: i,
                    });
                }
            }
        }
        drop(backstop);
        let mut per_partition = Vec::with_capacity(partitions);
        let mut dedup_peak_entries = 0u64;
        for (i, h) in consumer_handles.into_iter().enumerate() {
            match h.join() {
                Ok((processed, peak)) => {
                    per_partition.push(processed);
                    dedup_peak_entries = dedup_peak_entries.max(peak);
                }
                Err(_) => panicked.push(format!("consumer {i}")),
            }
        }
        let _ = raw_tx.send(Raw::ProducersDone);
        drop(raw_tx);
        let stats = match adapt_handle.join() {
            Ok(stats) => stats,
            Err(_) => {
                panicked.push("adaptivity thread".into());
                AdaptStats::default()
            }
        };
        if !panicked.is_empty() {
            return Err(GridError::Execution(format!(
                "worker thread(s) panicked: {}",
                panicked.join(", ")
            )));
        }

        let mut results = Vec::new();
        while let Ok(batch) = result_rx.try_recv() {
            results.extend(batch);
        }
        if resilient {
            // At-least-once transport can double-deliver across a crash
            // seam (a worker flushed results, died before acking, and the
            // retransmission was processed by its successor). Collapse
            // exact duplicates here so the report is effectively-once.
            let mut seen = HashSet::new();
            results.retain(|t: &Tuple| seen.insert((t.seq(), format!("{:?}", t.values()))));
        }
        let final_distribution = router.lock().current_distribution().weights().to_vec();
        let delivery_gaps = std::mem::take(&mut *delivery_gaps.lock());
        Ok(ThreadedReport {
            wall_ms: started.elapsed().as_secs_f64() * 1000.0,
            results,
            per_partition_processed: per_partition,
            raw_m1_events: stats.m1,
            raw_m2_events: stats.m2,
            adaptations_deployed: stats.deployed,
            tenant_rebalances: stats.tenant_rebalances,
            recalls_completed: stats.recalls_completed,
            recalls_aborted: stats.recalls_aborted,
            state_tuples_migrated: stats.state_tuples_migrated,
            tuples_recalled: stats.tuples_recalled + restaged_total.load(Ordering::Relaxed),
            nodes_failed: stats.nodes_failed,
            failovers_completed: stats.failovers_completed,
            tuples_retransmitted: retransmitted_total.load(Ordering::Relaxed),
            send_failures: send_failures_total.load(Ordering::Relaxed),
            delivery_gaps,
            log_audits: logs
                .map(|logs| logs.iter().map(SharedRecoveryLog::audit).collect())
                .unwrap_or_default(),
            dedup_peak_entries,
            final_distribution,
            obs: obs.as_ref().map(Obs::report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::{DataType, DistributionVector, Field, QueryId, Schema, SubplanId, Value};
    use gridq_engine::distributed::{
        ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
    };
    use gridq_engine::evaluator::{HashJoinFactory, ServiceCallFactory};
    use gridq_engine::service::{FnService, Service, ServiceRegistry};
    use gridq_engine::table::Table;
    use gridq_engine::Expr;

    fn int_table(name: &str, n: usize) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
            .collect();
        Arc::new(Table::new(name, schema, rows).unwrap())
    }

    fn square() -> Arc<dyn Service> {
        Arc::new(FnService::new(
            "Square",
            vec![DataType::Int],
            DataType::Int,
            1.0,
            |args| Ok(Value::Int(args[0].as_int().unwrap().pow(2))),
        ))
    }

    fn call_plan(table: &Arc<Table>, partitions: usize) -> DistributedPlan {
        let factory = ServiceCallFactory::new(
            table.schema(),
            square(),
            vec![Expr::col(0)],
            "sq",
            false,
            ServiceRegistry::new(),
        );
        DistributedPlan {
            query: QueryId::new(1),
            sources: vec![SourceSpec {
                table: table.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Single,
                scan_cost_ms: 0.4,
            }],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: (0..partitions).map(|i| NodeId::new(i as u32 + 1)).collect(),
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::Weighted {
                        initial: DistributionVector::uniform(partitions),
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        }
    }

    /// A Q2-shaped stateful hash-join plan: build and probe streams hash
    /// partitioned over `bucket_count` buckets on two nodes.
    fn join_plan(
        build: &Arc<Table>,
        probe: &Arc<Table>,
        build_scan_cost_ms: f64,
        probe_scan_cost_ms: f64,
    ) -> DistributedPlan {
        let factory = HashJoinFactory::new(build.schema(), probe.schema(), 0, 0, 0.1, 0.5);
        DistributedPlan {
            query: QueryId::new(2),
            sources: vec![
                SourceSpec {
                    table: build.name().to_string(),
                    node: NodeId::new(0),
                    stream: StreamTag::Build,
                    scan_cost_ms: build_scan_cost_ms,
                },
                SourceSpec {
                    table: probe.name().to_string(),
                    node: NodeId::new(0),
                    stream: StreamTag::Probe,
                    scan_cost_ms: probe_scan_cost_ms,
                },
            ],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: vec![NodeId::new(1), NodeId::new(2)],
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::HashBuckets {
                        bucket_count: 16,
                        initial: DistributionVector::uniform(2),
                        keys: StreamKeys {
                            build: Some(0),
                            probe: Some(0),
                            single: None,
                        },
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        }
    }

    fn catalog(tables: &[&Arc<Table>]) -> Catalog {
        let mut c = Catalog::new();
        for t in tables {
            c.register(Arc::clone(t));
        }
        c
    }

    /// Result tuples as a sorted multiset of value rows (sequence numbers
    /// are renumbered by operators and not comparable across runs).
    fn multiset(tuples: &[Tuple]) -> Vec<String> {
        let mut rows: Vec<String> = tuples.iter().map(|t| format!("{:?}", t.values())).collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn static_run_produces_all_results() {
        let table = int_table("t", 200);
        let plan = call_plan(&table, 2);
        let exec = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        let report = exec.run(&plan).unwrap();
        assert_eq!(report.results.len(), 200);
        assert_eq!(report.per_partition_processed.iter().sum::<u64>(), 200);
        assert_eq!(report.adaptations_deployed, 0);
        assert_eq!(report.recalls_completed, 0);
        assert!(report.log_audits.is_empty(), "no recovery logs when off");
        // Spot-check a value.
        let mut values: Vec<i64> = report
            .results
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        values.sort_unstable();
        assert_eq!(values[0], 0);
        assert_eq!(values[199], 199 * 199);
    }

    #[test]
    fn adaptive_run_shifts_load_away_from_perturbed_node() {
        let table = int_table("t", 400);
        let plan = call_plan(&table, 2);
        let mut perturbations = HashMap::new();
        perturbations.insert(NodeId::new(2), Perturbation::CostFactor(10.0));
        let exec = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::default(),
                cost_scale: 0.01,
                perturbations,
                ..Default::default()
            },
        );
        let report = exec.run(&plan).unwrap();
        assert_eq!(report.results.len(), 400);
        assert!(report.adaptations_deployed >= 1, "must adapt: {report:?}");
        // The obs layer must have witnessed every deployed adaptation,
        // with a causal chain back to a detector notification and a raw
        // event, stamped with wall-clock time.
        let obs = report.obs.as_ref().expect("obs enabled by default");
        let deploys: Vec<_> = obs
            .events
            .iter()
            .filter(|e| matches!(e.kind, TimelineKind::Deploy { .. }))
            .collect();
        assert_eq!(deploys.len() as u64, report.adaptations_deployed);
        for deploy in deploys {
            assert!(deploy.wall_ms.is_some(), "threaded events carry wall time");
            let TimelineKind::Deploy { diagnosis_seq, .. } = &deploy.kind else {
                unreachable!()
            };
            let diagnosis = obs
                .events
                .iter()
                .find(|e| e.seq == *diagnosis_seq)
                .expect("diagnosis in timeline");
            let TimelineKind::Diagnosis { notify_seq, .. } = &diagnosis.kind else {
                panic!("deploy must link a diagnosis, got {:?}", diagnosis.kind)
            };
            let notify = obs
                .events
                .iter()
                .find(|e| e.seq == *notify_seq)
                .expect("notification in timeline");
            assert!(matches!(notify.kind, TimelineKind::DetectorNotify { .. }));
        }
        assert_eq!(
            obs.metrics.counters.get("exec.tuples_processed"),
            Some(&400),
            "consumer threads record into the shared registry"
        );
        let tracked = obs
            .metrics
            .gauges
            .get("adapt.tracked_streams_at_teardown")
            .expect("teardown gauge recorded");
        assert!(
            *tracked > 0.0,
            "an adaptive run tracks at least one stream before eviction"
        );
        assert!(
            report.final_distribution[0] > 0.6,
            "router must favour the fast node: {:?}",
            report.final_distribution
        );
        assert!(
            report.per_partition_processed[0] > report.per_partition_processed[1],
            "fast node should process more: {:?}",
            report.per_partition_processed
        );
        assert!(report.raw_m1_events > 0);
    }

    #[test]
    fn invalid_config_is_rejected_before_spawning() {
        let table = int_table("t", 10);
        let plan = call_plan(&table, 2);
        let bad_configs = [
            ThreadedConfig {
                cost_scale: 0.0,
                ..Default::default()
            },
            ThreadedConfig {
                cost_scale: f64::NAN,
                ..Default::default()
            },
            ThreadedConfig {
                receive_cost_ms: -1.0,
                ..Default::default()
            },
            ThreadedConfig {
                checkpoint_interval: 0,
                ..Default::default()
            },
            ThreadedConfig {
                adaptivity: AdaptivityConfig {
                    detector_window: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            ThreadedConfig {
                obs: ObsConfig {
                    enabled: true,
                    timeline_capacity: 0,
                },
                ..Default::default()
            },
        ];
        for bad in bad_configs {
            let exec = ThreadedExecutor::new(catalog(&[&table]), bad);
            assert!(
                matches!(exec.run(&plan), Err(GridError::Config(_))),
                "invalid config must be rejected"
            );
        }
    }

    #[test]
    fn panicking_service_yields_error_not_deadlock() {
        let table = int_table("t", 50);
        let factory = ServiceCallFactory::new(
            table.schema(),
            Arc::new(FnService::new(
                "Boom",
                vec![DataType::Int],
                DataType::Int,
                1.0,
                |_| panic!("service crashed"),
            )),
            vec![Expr::col(0)],
            "boom",
            false,
            ServiceRegistry::new(),
        );
        let plan = DistributedPlan {
            query: QueryId::new(3),
            sources: vec![SourceSpec {
                table: table.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Single,
                scan_cost_ms: 0.1,
            }],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: vec![NodeId::new(1), NodeId::new(2)],
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::Weighted {
                        initial: DistributionVector::uniform(2),
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        };
        let exec = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        // Both consumers die on their first tuple; the run must still
        // join every thread and surface a typed error instead of hanging
        // or poisoning the shared router.
        match exec.run(&plan) {
            Err(GridError::Execution(msg)) => {
                assert!(msg.contains("panicked"), "unexpected message: {msg}")
            }
            other => panic!("expected execution error, got {other:?}"),
        }
    }

    #[test]
    fn stateful_plan_with_r2_is_rejected_but_runs_statically() {
        let build = int_table("b", 20);
        let probe = int_table("p", 20);
        let plan = join_plan(&build, &probe, 0.1, 0.1);
        // Prospective adaptivity on a stateful stage would strand the
        // hash table on the old owners: rejected, like the simulator.
        let exec = ThreadedExecutor::new(
            catalog(&[&build, &probe]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::default(), // R2
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        assert!(matches!(exec.run(&plan), Err(GridError::Config(_))));
        // But the same stateful plan runs fine statically.
        let static_exec = ThreadedExecutor::new(
            catalog(&[&build, &probe]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        let report = static_exec.run(&plan).unwrap();
        assert_eq!(report.results.len(), 20);
    }

    #[test]
    fn stateful_r1_run_recalls_and_matches_static() {
        let build = int_table("b", 60);
        let probe = int_table("p", 300);
        // Static baseline for the result multiset.
        let static_report = ThreadedExecutor::new(
            catalog(&[&build, &probe]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        )
        .run(&join_plan(&build, &probe, 0.1, 0.1))
        .unwrap();
        assert_eq!(static_report.results.len(), 60);

        // Adaptive R1 run with one node perturbed. The probe scan is the
        // bottleneck so producers are still alive when the imbalance is
        // diagnosed, giving the recall something to pause.
        let plan = join_plan(&build, &probe, 1.0, 10.0);
        let mut perturbations = HashMap::new();
        perturbations.insert(NodeId::new(2), Perturbation::CostFactor(10.0));
        let adapt = AdaptivityConfig {
            response: ResponsePolicy::R1,
            ..Default::default()
        };
        let report = ThreadedExecutor::new(
            catalog(&[&build, &probe]),
            ThreadedConfig {
                adaptivity: adapt,
                cost_scale: 0.01,
                perturbations,
                checkpoint_interval: 8,
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();

        // The run adapted retrospectively at least once and the result
        // multiset is exactly the static one: the recall lost nothing
        // and duplicated nothing.
        assert!(
            report.adaptations_deployed >= 1 && report.recalls_completed >= 1,
            "expected at least one completed recall: {report:?}"
        );
        assert_eq!(multiset(&static_report.results), multiset(&report.results));
        assert!(
            report.state_tuples_migrated > 0,
            "a bucket-map change must migrate hash-table state: {report:?}"
        );

        // Ack-log conservation: every recorded tuple is accounted for as
        // pruned (acknowledged), retired (re-delivered by the recall), or
        // still unacknowledged — and the probe log fully drains because
        // the probe producer force-checkpoints at end of stream.
        assert_eq!(report.log_audits.len(), 2);
        for audit in &report.log_audits {
            assert!(audit.conserved(), "log audit must balance: {audit:?}");
        }
        assert_eq!(
            report.log_audits[1].unacked, 0,
            "probe log must drain: {:?}",
            report.log_audits[1]
        );
        assert!(report.log_audits[0].recorded >= 60);

        // Timeline: every completed recall is bracketed by RecallStart /
        // RecallFinish, and chains RecallFinish -> RecallStart ->
        // Deploy -> Diagnosis -> DetectorNotify -> raw event.
        let obs = report.obs.as_ref().expect("obs enabled by default");
        let finishes: Vec<_> = obs
            .events
            .iter()
            .filter(|e| matches!(e.kind, TimelineKind::RecallFinish { .. }))
            .collect();
        assert!(!finishes.is_empty());
        for finish in finishes {
            let TimelineKind::RecallFinish { start_seq, .. } = &finish.kind else {
                unreachable!()
            };
            let start = obs.events.iter().find(|e| e.seq == *start_seq).unwrap();
            let TimelineKind::RecallStart { deploy_seq, .. } = &start.kind else {
                panic!("finish must link a RecallStart, got {:?}", start.kind)
            };
            let deploy = obs.events.iter().find(|e| e.seq == *deploy_seq).unwrap();
            let TimelineKind::Deploy {
                retrospective,
                diagnosis_seq,
                ..
            } = &deploy.kind
            else {
                panic!("start must link a Deploy, got {:?}", deploy.kind)
            };
            assert!(retrospective, "recalled deploys are retrospective");
            let diagnosis = obs.events.iter().find(|e| e.seq == *diagnosis_seq).unwrap();
            let TimelineKind::Diagnosis { notify_seq, .. } = &diagnosis.kind else {
                panic!("deploy must link a Diagnosis, got {:?}", diagnosis.kind)
            };
            let notify = obs.events.iter().find(|e| e.seq == *notify_seq).unwrap();
            let TimelineKind::DetectorNotify { raw_seq, .. } = &notify.kind else {
                panic!("diagnosis must link a notify, got {:?}", notify.kind)
            };
            let raw = obs.events.iter().find(|e| e.seq == *raw_seq).unwrap();
            assert!(matches!(
                raw.kind,
                TimelineKind::RawM1 { .. } | TimelineKind::RawM2 { .. }
            ));
        }
    }

    #[test]
    fn leaf_wait_includes_receive_timeout_slices() {
        // One slow producer (60 model-ms per scan at scale 1.0 = 60 real
        // ms, longer than the consumer's 50 ms receive timeout) and one
        // cheap consumer: almost all of the consumer's life is waiting.
        // Each wait spans a full Timeout slice, which the old code
        // silently discarded — reported leaf-wait was ~10 ms/tuple
        // instead of ~60.
        let table = int_table("t", 8);
        let mut plan = call_plan(&table, 1);
        plan.sources[0].scan_cost_ms = 60.0;
        plan.stages[0].exchange.buffer_tuples = 1;
        let adapt = AdaptivityConfig {
            monitoring_interval_tuples: 4,
            ..Default::default()
        };
        let exec = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: adapt,
                cost_scale: 1.0,
                ..Default::default()
            },
        );
        let report = exec.run(&plan).unwrap();
        assert_eq!(report.results.len(), 8);
        assert!(report.raw_m1_events >= 1);
        let obs = report.obs.as_ref().unwrap();
        let max_leaf_wait = obs
            .events
            .iter()
            .filter_map(|e| match e.kind {
                TimelineKind::RawM1 { leaf_wait_ms, .. } => Some(leaf_wait_ms),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        assert!(
            max_leaf_wait > 25.0,
            "leaf wait must include timed-out receive slices, got {max_leaf_wait}"
        );
    }

    #[test]
    fn tail_batch_m1_is_flushed_at_eos() {
        // 25 tuples on one partition with an interval of 10: two full
        // batches plus a 5-tuple tail. The old code dropped the tail on
        // the floor, leaving the last tuples unmonitored.
        let table = int_table("t", 25);
        let plan = call_plan(&table, 1);
        let adapt = AdaptivityConfig {
            monitoring_interval_tuples: 10,
            ..Default::default()
        };
        let exec = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: adapt,
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        let report = exec.run(&plan).unwrap();
        assert_eq!(report.results.len(), 25);
        assert_eq!(
            report.raw_m1_events, 3,
            "10 + 10 + tail(5) batches must all be reported"
        );
    }

    /// Drops the first `drops` data batches and duplicates the next
    /// `dups`, then delivers faithfully — a lossy start with a clean
    /// tail, so the retry budget always converges.
    #[derive(Debug)]
    struct FlakyStart {
        drops: u64,
        dups: u64,
        data_calls: AtomicU64,
        ack_calls: AtomicU64,
    }

    impl FlakyStart {
        fn new(drops: u64, dups: u64) -> Self {
            FlakyStart {
                drops,
                dups,
                data_calls: AtomicU64::new(0),
                ack_calls: AtomicU64::new(0),
            }
        }
    }

    impl ChaosHook for FlakyStart {
        fn on_data(&self, _source: usize, _dest: usize) -> NetAction {
            let n = self.data_calls.fetch_add(1, Ordering::Relaxed);
            if n < self.drops {
                NetAction::Drop
            } else if n < self.drops + self.dups {
                NetAction::Duplicate
            } else {
                NetAction::Deliver
            }
        }

        fn on_ack(&self, _source: usize, _worker: usize) -> NetAction {
            // Duplicate the first ack too: the log must absorb it.
            if self.ack_calls.fetch_add(1, Ordering::Relaxed) == 0 {
                NetAction::Duplicate
            } else {
                NetAction::Deliver
            }
        }
    }

    #[test]
    fn dropped_and_duplicated_batches_are_healed_by_retransmission() {
        let table = int_table("t", 200);
        let plan = call_plan(&table, 2);
        let clean = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        let report = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                chaos: Some(Arc::new(FlakyStart::new(4, 4))),
                delivery_retry: RetryPolicy {
                    base_ms: 5.0,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        assert_eq!(
            multiset(&clean.results),
            multiset(&report.results),
            "retransmission and dedup must restore the clean multiset"
        );
        assert!(
            report.tuples_retransmitted > 0,
            "dropped windows must be retransmitted: {report:?}"
        );
        assert!(report.delivery_gaps.is_empty(), "nothing was undeliverable");
        for audit in &report.log_audits {
            assert!(audit.conserved(), "log audit must balance: {audit:?}");
            assert_eq!(audit.unacked, 0, "all windows eventually acked: {audit:?}");
        }
        assert!(
            report.log_audits.iter().any(|a| a.acks_duplicate > 0),
            "the duplicated ack must be counted: {:?}",
            report.log_audits
        );
    }

    /// Duplicates every data batch, forever: sustained at-least-once
    /// pressure on the consumer dedup filter.
    #[derive(Debug)]
    struct AlwaysDuplicate;

    impl ChaosHook for AlwaysDuplicate {
        fn on_data(&self, _source: usize, _dest: usize) -> NetAction {
            NetAction::Duplicate
        }
    }

    #[test]
    fn consumer_dedup_memory_is_bounded_by_unacked_windows() {
        let total = 2000usize;
        let table = int_table("t", total);
        let plan = call_plan(&table, 2);
        let clean = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        let report = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                checkpoint_interval: 8,
                chaos: Some(Arc::new(AlwaysDuplicate)),
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        assert_eq!(
            multiset(&clean.results),
            multiset(&report.results),
            "every duplicate must be absorbed"
        );
        assert!(
            report.dedup_peak_entries > 0,
            "resilient runs must track the filter's high-water mark"
        );
        // The filter must stay O(unacked windows), not O(history): each
        // of the 2000 input tuples is delivered twice, so an unbounded
        // filter would end the run holding well over `total` entries.
        // Acks are applied inline at marker processing here, so the live
        // set is a handful of in-flight windows plus block range keys.
        assert!(
            report.dedup_peak_entries < (total / 8) as u64,
            "dedup peak {} must stay far below the {} tuples delivered",
            report.dedup_peak_entries,
            total
        );
        for audit in &report.log_audits {
            assert!(audit.conserved(), "log audit must balance: {audit:?}");
            assert_eq!(audit.unacked, 0, "all windows eventually acked: {audit:?}");
        }
    }

    /// Drops every data batch to one destination, forever: a dead link.
    #[derive(Debug)]
    struct DeadLinkTo(usize);

    impl ChaosHook for DeadLinkTo {
        fn on_data(&self, _source: usize, dest: usize) -> NetAction {
            if dest == self.0 {
                NetAction::Drop
            } else {
                NetAction::Deliver
            }
        }
    }

    #[test]
    fn exhausted_retries_record_delivery_gaps_instead_of_hanging() {
        let table = int_table("t", 100);
        let plan = call_plan(&table, 2);
        let report = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                chaos: Some(Arc::new(DeadLinkTo(1))),
                delivery_retry: RetryPolicy {
                    base_ms: 2.0,
                    max_retries: 3,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        // The query completed — degraded, not hung — and says exactly
        // what is missing.
        assert!(
            !report.delivery_gaps.is_empty(),
            "a dead link must surface as a gap: {report:?}"
        );
        assert!(report.delivery_gaps.iter().all(|g| g.dest == 1));
        let gapped: u64 = report.delivery_gaps.iter().map(|g| g.tuples).sum();
        assert!(gapped > 0);
        assert!(report.results.len() < 100, "partition 1's share is missing");
        assert!(!report.results.is_empty(), "partition 0 still answered");
        for audit in &report.log_audits {
            assert!(audit.conserved(), "log audit must balance: {audit:?}");
        }
        assert!(
            report.log_audits.iter().any(|a| a.unacked > 0),
            "the gapped windows stay visibly unacknowledged"
        );
    }

    #[test]
    fn dead_consumer_surfaces_gaps_before_failover_would_fire() {
        // A consumer that dies with failover disabled used to have its
        // push errors silently discarded (`let _ = send(...)`) and the
        // producer then slept out the entire retry/backoff budget against
        // the closed channel before any gap surfaced. Closed-ring pushes
        // are now counted into `send_failures` and the retry loop gaps
        // the destination out immediately.
        let table = int_table("t", 200);
        let plan = call_plan(&table, 2);
        let started = Instant::now();
        let report = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                chaos: Some(Arc::new(CrashOnNth {
                    worker: 1,
                    after: 2,
                    calls: AtomicU64::new(0),
                })),
                delivery_retry: RetryPolicy {
                    base_ms: 500.0,
                    max_retries: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        let wall = started.elapsed();
        assert!(
            report.send_failures > 0,
            "pushes into the dead consumer's closed ring are counted: {report:?}"
        );
        assert!(
            !report.delivery_gaps.is_empty(),
            "the dead consumer surfaces as delivery gaps: {report:?}"
        );
        assert!(report.delivery_gaps.iter().all(|g| g.dest == 1));
        assert!(report.results.len() < 200, "partition 1's share is missing");
        assert!(!report.results.is_empty(), "partition 0 still answered");
        // The full budget would be ~30s of backoff (500ms doubling over
        // 6 retries); the fast path must settle in roughly one attempt.
        assert!(
            wall < Duration::from_secs(10),
            "the gap fast path must not sleep out the backoff budget: {wall:?}"
        );
    }

    /// Crashes one worker after it has received `after` messages.
    #[derive(Debug)]
    struct CrashOnNth {
        worker: usize,
        after: u64,
        calls: AtomicU64,
    }

    impl ChaosHook for CrashOnNth {
        fn crash_worker(&self, worker: usize) -> bool {
            worker == self.worker && self.calls.fetch_add(1, Ordering::Relaxed) + 1 == self.after
        }
    }

    #[test]
    // The failover recall assigns the dead partition the literal weight
    // 0.0 (not a computed residue), so bit-exact equality is the
    // property under test.
    #[allow(clippy::float_cmp)]
    fn consumer_crash_fails_over_and_matches_static() {
        let build = int_table("b", 60);
        let probe = int_table("p", 300);
        let plan = join_plan(&build, &probe, 0.1, 0.1);
        let static_report = ThreadedExecutor::new(
            catalog(&[&build, &probe]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();
        assert_eq!(static_report.results.len(), 60);

        // Kill partition 1 on its 10th message — mid-build, while it
        // holds operator state and deferred probe windows.
        let adapt = AdaptivityConfig {
            response: ResponsePolicy::R1,
            ..Default::default()
        };
        let report = ThreadedExecutor::new(
            catalog(&[&build, &probe]),
            ThreadedConfig {
                adaptivity: adapt,
                cost_scale: 0.002,
                checkpoint_interval: 8,
                chaos: Some(Arc::new(CrashOnNth {
                    worker: 1,
                    after: 10,
                    calls: AtomicU64::new(0),
                })),
                delivery_retry: RetryPolicy {
                    base_ms: 20.0,
                    max_retries: 8,
                    ..Default::default()
                },
                failover: FailoverConfig {
                    enabled: true,
                    heartbeat_ms: 20,
                    lease_ms: 300,
                },
                ..Default::default()
            },
        )
        .run(&plan)
        .unwrap();

        assert_eq!(report.nodes_failed, 1, "one death detected: {report:?}");
        assert!(
            report.failovers_completed >= 1,
            "the failover recall must complete: {report:?}"
        );
        assert!(
            report.delivery_gaps.is_empty(),
            "replay + retransmission means nothing is lost: {report:?}"
        );
        assert_eq!(
            multiset(&static_report.results),
            multiset(&report.results),
            "a crashed consumer must not change the result multiset"
        );
        for audit in &report.log_audits {
            assert!(audit.conserved(), "log audit must balance: {audit:?}");
        }
        assert_eq!(
            report.final_distribution[1], 0.0,
            "the dead partition keeps zero weight: {:?}",
            report.final_distribution
        );
        // Timeline: the failover links back to the death that caused it.
        let obs = report.obs.as_ref().expect("obs enabled by default");
        let failover = obs
            .events
            .iter()
            .find(|e| matches!(e.kind, TimelineKind::Failover { .. }))
            .expect("a Failover event is recorded");
        let TimelineKind::Failover {
            down_seq, replayed, ..
        } = &failover.kind
        else {
            unreachable!()
        };
        assert!(*replayed > 0, "the dead partition's log entries replay");
        let down = obs
            .events
            .iter()
            .find(|e| e.seq == *down_seq)
            .expect("NodeDown in timeline");
        assert!(matches!(down.kind, TimelineKind::NodeDown { .. }));
    }
}
