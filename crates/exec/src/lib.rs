#![warn(missing_docs)]

//! A real multi-threaded executor for partitioned plans.
//!
//! The simulator (`gridq-sim`) reproduces the paper's *measurements* in
//! virtual time; this crate demonstrates that the adaptivity architecture
//! is substrate-independent by running the same [`DistributedPlan`]s over
//! OS threads and mpsc channels against the wall clock:
//!
//! - one producer thread per source scan, routing tuples through the
//!   shared exchange [`Router`] and sending buffers over channels;
//! - one consumer thread per stage partition, evaluating the same
//!   [`gridq_engine::evaluator::PartitionEvaluator`] clones and *actually spending CPU/sleep time*
//!   proportional to the cost model (scaled down by `cost_scale` to keep
//!   tests fast);
//! - an adaptivity thread hosting the MonitoringEventDetector, Diagnoser,
//!   and Responder, fed by real M1/M2 notifications and deploying new
//!   distribution vectors into the shared router while the query runs.
//!
//! The threaded executor deploys **prospective (R2)** adaptations on
//! stateless stages. Retrospective (R1) responses and stateful
//! repartitioning need the recall protocol that the simulator implements
//! in full; here a stateful stage runs with adaptivity disabled rather
//! than risking result corruption.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use gridq_adapt::{
    AdaptivityConfig, DetectorOutput, Diagnoser, MonitoringEventDetector, ProducerId, Responder,
    ResponsePolicy, M1, M2,
};
use gridq_common::sync::Mutex;
use gridq_common::{GridError, NodeId, PartitionId, Result, SimTime, Tuple};
use gridq_engine::distributed::{DistributedPlan, Router};
use gridq_engine::evaluator::StreamTag;
use gridq_engine::physical::Catalog;
use gridq_grid::Perturbation;
use gridq_obs::{Obs, ObsConfig, ObsReport, TimelineKind};

/// Configuration of a threaded execution.
#[derive(Debug, Clone)]
pub struct ThreadedConfig {
    /// Adaptivity configuration (R2/stateless only; see crate docs).
    pub adaptivity: AdaptivityConfig,
    /// Multiplier from model milliseconds to real milliseconds
    /// (e.g. `0.02` runs a 3000-tuple query in a couple of seconds).
    pub cost_scale: f64,
    /// Per-node perturbations, applied as real extra work.
    pub perturbations: HashMap<NodeId, Perturbation>,
    /// Per-tuple receive cost in model milliseconds.
    pub receive_cost_ms: f64,
    /// Observability layer configuration (metrics registry and
    /// adaptivity timeline).
    pub obs: ObsConfig,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            adaptivity: AdaptivityConfig::default(),
            cost_scale: 0.02,
            perturbations: HashMap::new(),
            receive_cost_ms: 1.0,
            obs: ObsConfig::default(),
        }
    }
}

impl ThreadedConfig {
    /// Rejects configurations that would hang or corrupt a run before any
    /// thread is spawned: non-positive or non-finite cost scales (which
    /// would turn every modelled cost into zero or infinite sleeps) and
    /// negative or non-finite receive costs, plus anything
    /// [`AdaptivityConfig::validate`] rejects.
    pub fn validate(&self) -> Result<()> {
        if !self.cost_scale.is_finite() || self.cost_scale <= 0.0 {
            return Err(GridError::Config(format!(
                "cost_scale must be finite and positive, got {}",
                self.cost_scale
            )));
        }
        if !self.receive_cost_ms.is_finite() || self.receive_cost_ms < 0.0 {
            return Err(GridError::Config(format!(
                "receive_cost_ms must be finite and non-negative, got {}",
                self.receive_cost_ms
            )));
        }
        self.obs.validate()?;
        self.adaptivity.validate()
    }
}

/// What a threaded execution measured.
#[derive(Debug, Clone, Default)]
pub struct ThreadedReport {
    /// Wall-clock duration of the run, milliseconds.
    pub wall_ms: f64,
    /// Result tuples collected.
    pub results: Vec<Tuple>,
    /// Input tuples processed per partition.
    pub per_partition_processed: Vec<u64>,
    /// Raw M1 events emitted.
    pub raw_m1_events: u64,
    /// Raw M2 events emitted.
    pub raw_m2_events: u64,
    /// Adaptations deployed into the router.
    pub adaptations_deployed: u64,
    /// The final routing distribution.
    pub final_distribution: Vec<f64>,
    /// Observability snapshot (metrics registry and adaptivity timeline);
    /// `None` when the obs layer is disabled.
    pub obs: Option<ObsReport>,
}

enum Msg {
    Tuple(StreamTag, Tuple),
    /// End of one source's stream; carries the stream tag so consumers
    /// can tell when the build phase is complete.
    Eos(StreamTag),
}

enum Raw {
    M1(M1),
    M2(M2),
    ProducersDone,
}

fn spin_for(model_ms: f64, scale: f64) {
    let dur = Duration::from_secs_f64((model_ms * scale / 1000.0).max(0.0));
    if !dur.is_zero() {
        thread::sleep(dur);
    }
}

fn perturbed(base_ms: f64, perturbation: Option<&Perturbation>) -> f64 {
    match perturbation {
        None | Some(Perturbation::None) => base_ms,
        Some(Perturbation::CostFactor(k)) => base_ms * k,
        Some(Perturbation::SleepMs(extra)) => base_ms + extra,
        Some(Perturbation::NormalFactor { mean, .. }) => base_ms * mean,
    }
}

/// Executes a single-stage distributed plan over real threads.
pub struct ThreadedExecutor {
    catalog: Catalog,
    config: ThreadedConfig,
}

impl ThreadedExecutor {
    /// Creates an executor over the catalog.
    pub fn new(catalog: Catalog, config: ThreadedConfig) -> Self {
        ThreadedExecutor { catalog, config }
    }

    /// Runs the plan to completion.
    pub fn run(&self, plan: &DistributedPlan) -> Result<ThreadedReport> {
        self.config.validate()?;
        plan.validate()?;
        if plan.stages.len() != 1 {
            return Err(GridError::Execution(
                "the threaded executor runs single-stage plans".into(),
            ));
        }
        let stage = &plan.stages[0];
        let adaptivity_on = self.config.adaptivity.monitoring_active()
            && !stage.factory.stateful()
            && self.config.adaptivity.response == ResponsePolicy::R2;
        if self.config.adaptivity.enabled
            && stage.factory.stateful()
            && self.config.adaptivity.response == ResponsePolicy::R1
        {
            return Err(GridError::Config(
                "retrospective responses are implemented by the simulator; \
                 run stateful adaptive plans on gridq-sim"
                    .into(),
            ));
        }
        let partitions = stage.nodes.len();
        let router = Arc::new(Mutex::new(Router::from_policy(
            &stage.exchange.routing,
            partitions as u32,
        )?));

        // Channels: producers -> consumers, consumers -> collector,
        // everyone -> adaptivity thread.
        let mut to_consumer: Vec<Sender<Msg>> = Vec::new();
        let mut consumer_rx: Vec<Receiver<Msg>> = Vec::new();
        for _ in 0..partitions {
            let (tx, rx) = channel();
            to_consumer.push(tx);
            consumer_rx.push(rx);
        }
        let (result_tx, result_rx) = channel::<Vec<Tuple>>();
        let (raw_tx, raw_rx) = channel::<Raw>();

        let started = Instant::now();
        let obs = if self.config.obs.enabled {
            Some(Obs::new(self.config.obs.timeline_capacity))
        } else {
            None
        };
        let (routed_ctr, processed_ctr) = match &obs {
            Some(o) => (
                Some(o.metrics().counter("exec.tuples_routed")),
                Some(o.metrics().counter("exec.tuples_processed")),
            ),
            None => (None, None),
        };
        let routed_total = Arc::new(AtomicU64::new(0));
        let total_rows: u64 = {
            let mut sum = 0;
            for s in &plan.sources {
                sum += self.catalog.get(&s.table)?.len() as u64;
            }
            sum
        };

        // Producer threads.
        let mut producer_handles = Vec::new();
        for (sidx, source) in plan.sources.iter().enumerate() {
            let table = self.catalog.get(&source.table)?;
            let router = Arc::clone(&router);
            let senders = to_consumer.clone();
            let raw = raw_tx.clone();
            let routed_total = Arc::clone(&routed_total);
            let scan_cost = source.scan_cost_ms;
            let stream = source.stream;
            let scale = self.config.cost_scale;
            let buffer_tuples = stage.exchange.buffer_tuples;
            let stage_id = stage.id;
            let query = plan.query;
            let monitoring = adaptivity_on;
            let routed_ctr = routed_ctr.clone();
            producer_handles.push(thread::spawn(move || {
                let mut buffers: Vec<Vec<(StreamTag, Tuple)>> = vec![Vec::new(); senders.len()];
                let flush =
                    |dest: usize, buffers: &mut Vec<Vec<(StreamTag, Tuple)>>, started: &Instant| {
                        let items = std::mem::take(&mut buffers[dest]);
                        if items.is_empty() {
                            return;
                        }
                        let send_started = Instant::now();
                        let count = items.len();
                        for (tag, t) in items {
                            let _ = senders[dest].send(Msg::Tuple(tag, t));
                        }
                        if monitoring {
                            let send_cost =
                                send_started.elapsed().as_secs_f64() * 1000.0 / scale.max(1e-9);
                            let _ = raw.send(Raw::M2(M2 {
                                query,
                                producer: ProducerId::Source(sidx as u32),
                                recipient: PartitionId::new(stage_id, dest as u32),
                                send_cost_ms: send_cost,
                                tuples_in_buffer: count,
                                // Wall-clock -> model milliseconds, so the
                                // Responder's cooldown compares like units.
                                at: SimTime::from_millis(
                                    started.elapsed().as_secs_f64() * 1000.0 / scale.max(1e-9),
                                ),
                            }));
                        }
                    };
                let started_local = Instant::now();
                for row in table.rows() {
                    spin_for(scan_cost, scale);
                    let dest = {
                        let mut r = router.lock();
                        r.route(stream, row).unwrap_or(0)
                    } as usize;
                    buffers[dest].push((stream, row.clone()));
                    routed_total.fetch_add(1, Ordering::Relaxed);
                    if let Some(c) = &routed_ctr {
                        c.add(1);
                    }
                    if buffers[dest].len() >= buffer_tuples {
                        flush(dest, &mut buffers, &started_local);
                    }
                }
                for (dest, sender) in senders.iter().enumerate() {
                    flush(dest, &mut buffers, &started_local);
                    let _ = sender.send(Msg::Eos(stream));
                }
            }));
        }
        drop(to_consumer);

        // Consumer threads.
        let eos_needed = plan.sources.len();
        let build_eos_needed = plan
            .sources
            .iter()
            .filter(|s| s.stream == StreamTag::Build)
            .count();
        let mut consumer_handles = Vec::new();
        for (i, rx) in consumer_rx.into_iter().enumerate() {
            let mut evaluator = stage.factory.create(i as u32);
            let node = stage.nodes[i];
            let perturbation = self.config.perturbations.get(&node).cloned();
            let results = result_tx.clone();
            let raw = raw_tx.clone();
            let scale = self.config.cost_scale;
            let receive_cost = self.config.receive_cost_ms;
            let monitoring = adaptivity_on;
            let interval = self.config.adaptivity.monitoring_interval_tuples.max(1);
            let stage_id = stage.id;
            let query = plan.query;
            let processed_ctr = processed_ctr.clone();
            consumer_handles.push(thread::spawn(move || -> (u64, Vec<Tuple>) {
                let started = Instant::now();
                let mut processed = 0u64;
                let mut outputs_total = 0u64;
                let mut batch = 0u32;
                let mut batch_cost = 0.0;
                let mut batch_wait = 0.0;
                let mut out: Vec<Tuple> = Vec::new();
                let mut eos_seen = 0usize;
                let mut build_eos_seen = 0usize;
                // Probe tuples that arrived before the build phase
                // completed; replayed once every build source is done
                // (the iterator model consumes the build input first).
                let mut held_probes: Vec<Tuple> = Vec::new();
                loop {
                    let wait_started = Instant::now();
                    let msg = match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(m) => m,
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    };
                    batch_wait += wait_started.elapsed().as_secs_f64() * 1000.0;
                    match msg {
                        Msg::Eos(tag) => {
                            eos_seen += 1;
                            if tag == StreamTag::Build {
                                build_eos_seen += 1;
                            }
                            if build_eos_seen == build_eos_needed {
                                for tuple in held_probes.drain(..) {
                                    if let Ok(outcome) = evaluator.process(StreamTag::Probe, &tuple)
                                    {
                                        let model_cost =
                                            perturbed(outcome.base_cost_ms, perturbation.as_ref())
                                                + receive_cost;
                                        spin_for(model_cost, scale);
                                        processed += 1;
                                        if let Some(c) = &processed_ctr {
                                            c.add(1);
                                        }
                                        outputs_total += outcome.outputs.len() as u64;
                                        out.extend(outcome.outputs);
                                    }
                                }
                            }
                            if eos_seen == eos_needed {
                                break;
                            }
                        }
                        Msg::Tuple(StreamTag::Probe, tuple)
                            if build_eos_needed > 0 && build_eos_seen < build_eos_needed =>
                        {
                            held_probes.push(tuple);
                        }
                        Msg::Tuple(tag, tuple) => {
                            let outcome = match evaluator.process(tag, &tuple) {
                                Ok(o) => o,
                                Err(_) => continue,
                            };
                            let model_cost = perturbed(outcome.base_cost_ms, perturbation.as_ref())
                                + receive_cost;
                            spin_for(model_cost, scale);
                            processed += 1;
                            if let Some(c) = &processed_ctr {
                                c.add(1);
                            }
                            batch += 1;
                            batch_cost += model_cost;
                            outputs_total += outcome.outputs.len() as u64;
                            out.extend(outcome.outputs);
                            if monitoring && batch >= interval {
                                let _ = raw.send(Raw::M1(M1 {
                                    query,
                                    partition: PartitionId::new(stage_id, i as u32),
                                    node,
                                    cost_per_tuple_ms: batch_cost / f64::from(batch),
                                    leaf_wait_ms: batch_wait / f64::from(batch) / scale,
                                    selectivity: if processed == 0 {
                                        1.0
                                    } else {
                                        outputs_total as f64 / processed as f64
                                    },
                                    tuples_produced: outputs_total,
                                    at: SimTime::from_millis(
                                        started.elapsed().as_secs_f64() * 1000.0 / scale.max(1e-9),
                                    ),
                                }));
                                batch = 0;
                                batch_cost = 0.0;
                                batch_wait = 0.0;
                            }
                        }
                    }
                }
                let _ = results.send(std::mem::take(&mut out));
                (processed, Vec::new())
            }));
        }
        drop(result_tx);

        // Adaptivity thread: detector -> diagnoser -> responder ->
        // shared router.
        let adapt_handle = {
            let adapt = self.config.adaptivity.clone();
            let router = Arc::clone(&router);
            let routed_total = Arc::clone(&routed_total);
            let initial = router.lock().current_distribution();
            let stage_id = stage.id;
            let partitions = partitions as u32;
            let obs = obs.clone();
            thread::spawn(move || -> (u64, u64, u64) {
                let mut detector = MonitoringEventDetector::new(&adapt);
                let mut diagnoser = Diagnoser::new(stage_id, partitions, initial, &adapt);
                let mut responder = Responder::new(&adapt);
                if let Some(o) = &obs {
                    detector.set_metric_sink(o.sink());
                    diagnoser.set_metric_sink(o.sink());
                    responder.set_metric_sink(o.sink());
                }
                // Timeline events carry both clocks: `at` is the model
                // time stamped on the raw event by its producer thread,
                // `wall_ms` is the real elapsed time at recording.
                let record = |at: SimTime, kind: TimelineKind| -> u64 {
                    match &obs {
                        Some(o) => o.record(
                            at.as_millis(),
                            Some(started.elapsed().as_secs_f64() * 1000.0),
                            kind,
                        ),
                        None => 0,
                    }
                };
                let mut m1 = 0u64;
                let mut m2 = 0u64;
                let mut deployed = 0u64;
                while let Ok(raw) = raw_rx.recv() {
                    let (output, at, raw_seq) = match raw {
                        Raw::M1(event) => {
                            m1 += 1;
                            let output = detector.on_m1(&event);
                            let raw_seq = record(
                                event.at,
                                TimelineKind::RawM1 {
                                    partition: event.partition.to_string(),
                                    node: event.node.to_string(),
                                    cost_per_tuple_ms: event.cost_per_tuple_ms,
                                    gate_fired: !matches!(output, DetectorOutput::Quiet),
                                },
                            );
                            (output, event.at, raw_seq)
                        }
                        Raw::M2(event) => {
                            m2 += 1;
                            let output = detector.on_m2(&event);
                            let raw_seq = record(
                                event.at,
                                TimelineKind::RawM2 {
                                    producer: event.producer.to_string(),
                                    recipient: event.recipient.to_string(),
                                    cost_per_tuple_ms: event.cost_per_tuple_ms(),
                                    gate_fired: !matches!(output, DetectorOutput::Quiet),
                                },
                            );
                            (output, event.at, raw_seq)
                        }
                        Raw::ProducersDone => break,
                    };
                    let imbalance = match output {
                        DetectorOutput::Quiet => None,
                        DetectorOutput::Cost(update) => {
                            let notify_seq = record(
                                at,
                                TimelineKind::DetectorNotify {
                                    scope: update.partition.to_string(),
                                    avg_cost_ms: update.avg_cost_ms,
                                    window_len: update.window_len,
                                    raw_seq,
                                },
                            );
                            diagnoser
                                .on_cost_update(&update)
                                .map(|imb| (imb, notify_seq))
                        }
                        DetectorOutput::Comm(update) => {
                            let notify_seq = record(
                                at,
                                TimelineKind::DetectorNotify {
                                    scope: format!("{}->{}", update.producer, update.recipient),
                                    avg_cost_ms: update.avg_cost_per_tuple_ms,
                                    window_len: update.window_len,
                                    raw_seq,
                                },
                            );
                            diagnoser
                                .on_comm_update(&update)
                                .map(|imb| (imb, notify_seq))
                        }
                    };
                    if let Some((imbalance, notify_seq)) = imbalance {
                        let diagnosis_seq = record(
                            imbalance.at,
                            TimelineKind::Diagnosis {
                                stage: imbalance.stage.to_string(),
                                proposed: imbalance.proposed.weights().to_vec(),
                                costs: imbalance.costs.clone(),
                                notify_seq,
                            },
                        );
                        let progress =
                            routed_total.load(Ordering::Relaxed) as f64 / total_rows.max(1) as f64;
                        let (decision, cmd) = responder.on_imbalance(&imbalance, progress);
                        record(
                            imbalance.at,
                            TimelineKind::ResponderDecision {
                                decision: decision.as_str().to_string(),
                                diagnosis_seq,
                            },
                        );
                        if let Some(cmd) = cmd {
                            diagnoser.set_distribution(cmd.new_distribution.clone());
                            if router
                                .lock()
                                .apply_distribution(&cmd.new_distribution)
                                .is_ok()
                            {
                                deployed += 1;
                                record(
                                    cmd.at,
                                    TimelineKind::Deploy {
                                        stage: cmd.stage.to_string(),
                                        weights: cmd.new_distribution.weights().to_vec(),
                                        retrospective: cmd.retrospective,
                                        diagnosis_seq,
                                    },
                                );
                            }
                        }
                    }
                }
                // Teardown: surface how much per-stream state the loop
                // accumulated, then evict it so detector/diagnoser maps
                // never outlive the query they monitored.
                if let Some(o) = &obs {
                    o.metrics().gauge("adapt.tracked_streams_at_teardown").set(
                        (detector.tracked_streams() + diagnoser.tracked_cost_entries()) as f64,
                    );
                }
                detector.reset_for_query();
                diagnoser.reset_for_query();
                debug_assert_eq!(
                    detector.tracked_streams() + diagnoser.tracked_cost_entries(),
                    0
                );
                (m1, m2, deployed)
            })
        };

        // Wait for producers, then consumers, then the adaptivity thread.
        // Every handle is joined even when an earlier one panicked, so a
        // single failed worker cannot leave stray threads running behind
        // an early error return; the first failure is reported after all
        // threads have stopped.
        let mut panicked: Vec<String> = Vec::new();
        for (i, h) in producer_handles.into_iter().enumerate() {
            if h.join().is_err() {
                panicked.push(format!("producer {i}"));
            }
        }
        let mut per_partition = Vec::with_capacity(partitions);
        for (i, h) in consumer_handles.into_iter().enumerate() {
            match h.join() {
                Ok((processed, _)) => per_partition.push(processed),
                Err(_) => panicked.push(format!("consumer {i}")),
            }
        }
        let _ = raw_tx.send(Raw::ProducersDone);
        drop(raw_tx);
        let adapt_result = adapt_handle.join();
        if adapt_result.is_err() {
            panicked.push("adaptivity thread".into());
        }
        if !panicked.is_empty() {
            return Err(GridError::Execution(format!(
                "worker thread(s) panicked: {}",
                panicked.join(", ")
            )));
        }
        let (m1, m2, deployed) = adapt_result.expect("checked above");

        let mut results = Vec::new();
        while let Ok(batch) = result_rx.try_recv() {
            results.extend(batch);
        }
        let final_distribution = router.lock().current_distribution().weights().to_vec();
        Ok(ThreadedReport {
            wall_ms: started.elapsed().as_secs_f64() * 1000.0,
            results,
            per_partition_processed: per_partition,
            raw_m1_events: m1,
            raw_m2_events: m2,
            adaptations_deployed: deployed,
            final_distribution,
            obs: obs.as_ref().map(Obs::report),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::{DataType, DistributionVector, Field, QueryId, Schema, SubplanId, Value};
    use gridq_engine::distributed::{
        ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
    };
    use gridq_engine::evaluator::{HashJoinFactory, ServiceCallFactory};
    use gridq_engine::service::{FnService, Service, ServiceRegistry};
    use gridq_engine::table::Table;
    use gridq_engine::Expr;

    fn int_table(name: &str, n: usize) -> Arc<Table> {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let rows = (0..n)
            .map(|i| Tuple::new(vec![Value::Int(i as i64)]))
            .collect();
        Arc::new(Table::new(name, schema, rows).unwrap())
    }

    fn square() -> Arc<dyn Service> {
        Arc::new(FnService::new(
            "Square",
            vec![DataType::Int],
            DataType::Int,
            1.0,
            |args| Ok(Value::Int(args[0].as_int().unwrap().pow(2))),
        ))
    }

    fn call_plan(table: &Arc<Table>, partitions: usize) -> DistributedPlan {
        let factory = ServiceCallFactory::new(
            table.schema(),
            square(),
            vec![Expr::col(0)],
            "sq",
            false,
            ServiceRegistry::new(),
        );
        DistributedPlan {
            query: QueryId::new(1),
            sources: vec![SourceSpec {
                table: table.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Single,
                scan_cost_ms: 0.4,
            }],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: (0..partitions).map(|i| NodeId::new(i as u32 + 1)).collect(),
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::Weighted {
                        initial: DistributionVector::uniform(partitions),
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        }
    }

    fn catalog(tables: &[&Arc<Table>]) -> Catalog {
        let mut c = Catalog::new();
        for t in tables {
            c.register(Arc::clone(t));
        }
        c
    }

    #[test]
    fn static_run_produces_all_results() {
        let table = int_table("t", 200);
        let plan = call_plan(&table, 2);
        let exec = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        let report = exec.run(&plan).unwrap();
        assert_eq!(report.results.len(), 200);
        assert_eq!(report.per_partition_processed.iter().sum::<u64>(), 200);
        assert_eq!(report.adaptations_deployed, 0);
        // Spot-check a value.
        let mut values: Vec<i64> = report
            .results
            .iter()
            .map(|t| t.value(0).as_int().unwrap())
            .collect();
        values.sort_unstable();
        assert_eq!(values[0], 0);
        assert_eq!(values[199], 199 * 199);
    }

    #[test]
    fn adaptive_run_shifts_load_away_from_perturbed_node() {
        let table = int_table("t", 400);
        let plan = call_plan(&table, 2);
        let mut perturbations = HashMap::new();
        perturbations.insert(NodeId::new(2), Perturbation::CostFactor(10.0));
        let exec = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::default(),
                cost_scale: 0.01,
                perturbations,
                receive_cost_ms: 1.0,
                obs: ObsConfig::default(),
            },
        );
        let report = exec.run(&plan).unwrap();
        assert_eq!(report.results.len(), 400);
        assert!(report.adaptations_deployed >= 1, "must adapt: {report:?}");
        // The obs layer must have witnessed every deployed adaptation,
        // with a causal chain back to a detector notification and a raw
        // event, stamped with wall-clock time.
        let obs = report.obs.as_ref().expect("obs enabled by default");
        let deploys: Vec<_> = obs
            .events
            .iter()
            .filter(|e| matches!(e.kind, TimelineKind::Deploy { .. }))
            .collect();
        assert_eq!(deploys.len() as u64, report.adaptations_deployed);
        for deploy in deploys {
            assert!(deploy.wall_ms.is_some(), "threaded events carry wall time");
            let TimelineKind::Deploy { diagnosis_seq, .. } = &deploy.kind else {
                unreachable!()
            };
            let diagnosis = obs
                .events
                .iter()
                .find(|e| e.seq == *diagnosis_seq)
                .expect("diagnosis in timeline");
            let TimelineKind::Diagnosis { notify_seq, .. } = &diagnosis.kind else {
                panic!("deploy must link a diagnosis, got {:?}", diagnosis.kind)
            };
            let notify = obs
                .events
                .iter()
                .find(|e| e.seq == *notify_seq)
                .expect("notification in timeline");
            assert!(matches!(notify.kind, TimelineKind::DetectorNotify { .. }));
        }
        assert_eq!(
            obs.metrics.counters.get("exec.tuples_processed"),
            Some(&400),
            "consumer threads record into the shared registry"
        );
        let tracked = obs
            .metrics
            .gauges
            .get("adapt.tracked_streams_at_teardown")
            .expect("teardown gauge recorded");
        assert!(
            *tracked > 0.0,
            "an adaptive run tracks at least one stream before eviction"
        );
        assert!(
            report.final_distribution[0] > 0.6,
            "router must favour the fast node: {:?}",
            report.final_distribution
        );
        assert!(
            report.per_partition_processed[0] > report.per_partition_processed[1],
            "fast node should process more: {:?}",
            report.per_partition_processed
        );
        assert!(report.raw_m1_events > 0);
    }

    #[test]
    fn invalid_config_is_rejected_before_spawning() {
        let table = int_table("t", 10);
        let plan = call_plan(&table, 2);
        let bad_configs = [
            ThreadedConfig {
                cost_scale: 0.0,
                ..Default::default()
            },
            ThreadedConfig {
                cost_scale: f64::NAN,
                ..Default::default()
            },
            ThreadedConfig {
                receive_cost_ms: -1.0,
                ..Default::default()
            },
            ThreadedConfig {
                adaptivity: AdaptivityConfig {
                    detector_window: 0,
                    ..Default::default()
                },
                ..Default::default()
            },
            ThreadedConfig {
                obs: ObsConfig {
                    enabled: true,
                    timeline_capacity: 0,
                },
                ..Default::default()
            },
        ];
        for bad in bad_configs {
            let exec = ThreadedExecutor::new(catalog(&[&table]), bad);
            assert!(
                matches!(exec.run(&plan), Err(GridError::Config(_))),
                "invalid config must be rejected"
            );
        }
    }

    #[test]
    fn panicking_service_yields_error_not_deadlock() {
        let table = int_table("t", 50);
        let factory = ServiceCallFactory::new(
            table.schema(),
            Arc::new(FnService::new(
                "Boom",
                vec![DataType::Int],
                DataType::Int,
                1.0,
                |_| panic!("service crashed"),
            )),
            vec![Expr::col(0)],
            "boom",
            false,
            ServiceRegistry::new(),
        );
        let plan = DistributedPlan {
            query: QueryId::new(3),
            sources: vec![SourceSpec {
                table: table.name().to_string(),
                node: NodeId::new(0),
                stream: StreamTag::Single,
                scan_cost_ms: 0.1,
            }],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: vec![NodeId::new(1), NodeId::new(2)],
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::Weighted {
                        initial: DistributionVector::uniform(2),
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        };
        let exec = ThreadedExecutor::new(
            catalog(&[&table]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        // Both consumers die on their first tuple; the run must still
        // join every thread and surface a typed error instead of hanging
        // or poisoning the shared router.
        match exec.run(&plan) {
            Err(GridError::Execution(msg)) => {
                assert!(msg.contains("panicked"), "unexpected message: {msg}")
            }
            other => panic!("expected execution error, got {other:?}"),
        }
    }

    #[test]
    fn stateful_plan_with_r1_is_rejected() {
        let build = int_table("b", 20);
        let probe = int_table("p", 20);
        let factory = HashJoinFactory::new(build.schema(), probe.schema(), 0, 0, 0.1, 0.5);
        let plan = DistributedPlan {
            query: QueryId::new(2),
            sources: vec![
                SourceSpec {
                    table: "b".into(),
                    node: NodeId::new(0),
                    stream: StreamTag::Build,
                    scan_cost_ms: 0.1,
                },
                SourceSpec {
                    table: "p".into(),
                    node: NodeId::new(0),
                    stream: StreamTag::Probe,
                    scan_cost_ms: 0.1,
                },
            ],
            stages: vec![ParallelStageSpec {
                id: SubplanId::new(1),
                factory: Arc::new(factory),
                nodes: vec![NodeId::new(1), NodeId::new(2)],
                exchange: ExchangeSpec {
                    routing: RoutingPolicy::HashBuckets {
                        bucket_count: 16,
                        initial: DistributionVector::uniform(2),
                        keys: StreamKeys {
                            build: Some(0),
                            probe: Some(0),
                            single: None,
                        },
                    },
                    buffer_tuples: 10,
                },
            }],
            collect_node: NodeId::new(0),
        };
        let adapt = AdaptivityConfig {
            response: ResponsePolicy::R1,
            ..Default::default()
        };
        let exec = ThreadedExecutor::new(
            catalog(&[&build, &probe]),
            ThreadedConfig {
                adaptivity: adapt,
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        assert!(exec.run(&plan).is_err());
        // But the same stateful plan runs fine statically.
        let static_exec = ThreadedExecutor::new(
            catalog(&[&build, &probe]),
            ThreadedConfig {
                adaptivity: AdaptivityConfig::disabled(),
                cost_scale: 0.002,
                ..Default::default()
            },
        );
        let report = static_exec.run(&plan).unwrap();
        assert_eq!(report.results.len(), 20);
    }
}
