//! The drain-barrier recall protocol for retrospective (R1) responses
//! on the threaded substrate.
//!
//! The simulator realises R1 by editing its virtual-time event queue; on
//! real threads the same effect needs a coordination protocol. The
//! adaptivity thread acts as the recall coordinator:
//!
//! 1. **Pause.** It raises [`RecallGate::begin_pause`]; every producer
//!    parks at its next [`RecallGate::pause_point`] (between tuples, or
//!    just before its final flush). Once all *active* producers are
//!    parked no new tuples can enter the exchange channels.
//! 2. **Drain.** It broadcasts a `Drain` marker to every consumer. The
//!    channels are FIFO, so the marker arrives after every tuple sent
//!    before the pause; a consumer replying `Drained` has processed (or
//!    shelved) everything addressed to it under the old distribution.
//! 3. **Swap.** With the exchange quiescent it swaps the routing table
//!    under the router lock and computes which hash buckets each old
//!    owner must surrender.
//! 4. **Migrate.** It sends each consumer a `Migrate` command; consumers
//!    extract the surrendered bucket state, re-route it (and any held
//!    probe tuples) directly to the new owners, retire the corresponding
//!    recovery-log entries, and reply `MigrateDone`.
//! 5. **Resume.** It bumps the gate epoch and releases the producers,
//!    which notice the epoch change and restage their unsent buffers
//!    under the new distribution before continuing.
//!
//! The gate uses a plain `std` mutex/condvar pair (not the workspace's
//! poison-recovering wrapper) because the coordinator must keep working
//! even if a producer panics while parked; every acquisition recovers
//! from poisoning explicitly.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Control-plane replies from consumers to the recall coordinator.
/// `token` identifies the recall attempt, so replies from an aborted
/// attempt cannot satisfy a later barrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Ctrl {
    /// The consumer has observed the `Drain` marker: every tuple sent to
    /// it before the pause has been processed or shelved.
    Drained {
        /// Recall attempt the reply belongs to.
        token: u64,
    },
    /// The consumer finished migrating its surrendered state.
    MigrateDone {
        /// Recall attempt the reply belongs to.
        token: u64,
        /// Operator-state tuples shipped to new owners.
        state_moved: u64,
        /// Held (not yet processed) tuples re-routed to new owners.
        recalled: u64,
    },
}

#[derive(Debug)]
struct GateState {
    /// Coordinator wants producers parked.
    pause_requested: bool,
    /// Bumped once per completed recall; producers restage their unsent
    /// buffers when they wake under a new epoch.
    epoch: u64,
    /// Producers that have not finished their stream (or panicked).
    active: usize,
    /// Producers currently parked at a pause point.
    parked: usize,
}

/// The barrier producers and the recall coordinator synchronise on.
#[derive(Debug)]
pub(crate) struct RecallGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl RecallGate {
    pub(crate) fn new(active_producers: usize) -> Self {
        RecallGate {
            state: Mutex::new(GateState {
                pause_requested: false,
                epoch: 0,
                active: active_producers,
                parked: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, GateState> {
        // A panicked producer poisons the mutex; the state itself stays
        // consistent (every mutation is a single field write), so recover.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Producer side: parks while a pause is requested, then returns the
    /// current epoch. Called between tuples and immediately before the
    /// final flush, so a producer can neither send nor finish while a
    /// recall is in flight.
    pub(crate) fn pause_point(&self) -> u64 {
        let mut s = self.lock();
        while s.pause_requested {
            s.parked += 1;
            self.cv.notify_all();
            s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            s.parked -= 1;
        }
        s.epoch
    }

    /// Producer side: the stream is finished (or the thread is
    /// unwinding). Idempotence is the caller's responsibility — use
    /// [`ProducerGuard`] so unwinds are counted too.
    pub(crate) fn producer_done(&self) {
        let mut s = self.lock();
        s.active = s.active.saturating_sub(1);
        self.cv.notify_all();
    }

    /// Coordinator side: requests a pause and waits until every active
    /// producer is parked. Returns the number of parked producers, or
    /// `None` on timeout (the pause request is withdrawn first, so a
    /// `None` leaves the gate open).
    pub(crate) fn begin_pause(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut s = self.lock();
        s.pause_requested = true;
        self.cv.notify_all();
        while s.parked < s.active {
            let now = Instant::now();
            if now >= deadline {
                s.pause_requested = false;
                self.cv.notify_all();
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            s = guard;
        }
        Some(s.parked)
    }

    /// Coordinator side: abandons a pause without changing the epoch.
    pub(crate) fn abort_pause(&self) {
        let mut s = self.lock();
        s.pause_requested = false;
        self.cv.notify_all();
    }

    /// Coordinator side: completes a recall — installs the new epoch and
    /// releases the parked producers.
    pub(crate) fn resume(&self, new_epoch: u64) {
        let mut s = self.lock();
        s.epoch = new_epoch;
        s.pause_requested = false;
        self.cv.notify_all();
    }

    /// The current redistribution epoch.
    pub(crate) fn epoch(&self) -> u64 {
        self.lock().epoch
    }
}

/// Decrements the gate's active-producer count when dropped, so a
/// producer that panics mid-stream cannot leave the coordinator waiting
/// on a barrier that can never fill.
pub(crate) struct ProducerGuard {
    gate: std::sync::Arc<RecallGate>,
}

impl ProducerGuard {
    pub(crate) fn new(gate: std::sync::Arc<RecallGate>) -> Self {
        ProducerGuard { gate }
    }
}

impl Drop for ProducerGuard {
    fn drop(&mut self) {
        self.gate.producer_done();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn pause_parks_all_active_producers_and_resume_bumps_epoch() {
        let gate = Arc::new(RecallGate::new(2));
        let mut workers = Vec::new();
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            workers.push(thread::spawn(move || {
                let _guard = ProducerGuard::new(Arc::clone(&gate));
                let mut last_epoch = gate.pause_point();
                // Spin through pause points until the epoch moves.
                let deadline = Instant::now() + Duration::from_secs(10);
                while last_epoch == 0 && Instant::now() < deadline {
                    last_epoch = gate.pause_point();
                }
                last_epoch
            }));
        }
        let parked = gate
            .begin_pause(Duration::from_secs(10))
            .expect("both producers must park");
        assert_eq!(parked, 2);
        gate.resume(1);
        for w in workers {
            assert_eq!(w.join().unwrap(), 1, "producers observe the new epoch");
        }
        assert_eq!(gate.epoch(), 1);
    }

    #[test]
    fn finished_producers_do_not_block_the_barrier() {
        let gate = Arc::new(RecallGate::new(2));
        // One producer finishes immediately.
        gate.producer_done();
        let gate2 = Arc::clone(&gate);
        let worker = thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut epoch = gate2.pause_point();
            while epoch == 0 && Instant::now() < deadline {
                epoch = gate2.pause_point();
            }
            gate2.producer_done();
            epoch
        });
        let parked = gate.begin_pause(Duration::from_secs(10)).unwrap();
        assert_eq!(parked, 1, "only the live producer parks");
        gate.resume(7);
        assert_eq!(worker.join().unwrap(), 7);
    }

    #[test]
    fn abort_reopens_the_gate_without_an_epoch_change() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let gate = Arc::new(RecallGate::new(1));
        let released = Arc::new(AtomicBool::new(false));
        let (gate2, released2) = (Arc::clone(&gate), Arc::clone(&released));
        let worker = thread::spawn(move || {
            // Keep hitting pause points until the coordinator is done.
            while !released2.load(Ordering::Acquire) {
                gate2.pause_point();
            }
            gate2.producer_done();
        });
        // Wait for the producer to park, then abort instead of resuming.
        assert_eq!(gate.begin_pause(Duration::from_secs(10)), Some(1));
        gate.abort_pause();
        released.store(true, Ordering::Release);
        worker.join().unwrap();
        assert_eq!(gate.epoch(), 0, "epoch unchanged after abort");
    }

    #[test]
    fn begin_pause_times_out_and_withdraws_the_request() {
        // One producer is registered but never reaches a pause point.
        let gate = RecallGate::new(1);
        assert_eq!(gate.begin_pause(Duration::from_millis(20)), None);
        // The request was withdrawn: a producer arriving later passes
        // straight through.
        assert_eq!(gate.pause_point(), 0);
    }

    /// Forced spurious wakeups: notifying the condvar without changing
    /// the predicate is, to a waiter, exactly a spurious wakeup. A
    /// parked producer must re-check `pause_requested` and re-park every
    /// time, keeping the externally observable parked count stable (the
    /// decrement/re-increment in `pause_point` happens inside one
    /// critical section).
    #[test]
    fn spurious_wakeups_do_not_release_a_parked_producer() {
        let gate = Arc::new(RecallGate::new(1));
        let gate2 = Arc::clone(&gate);
        let worker = thread::spawn(move || {
            let _guard = ProducerGuard::new(Arc::clone(&gate2));
            let deadline = Instant::now() + Duration::from_secs(10);
            let mut epoch = gate2.pause_point();
            while epoch == 0 && Instant::now() < deadline {
                epoch = gate2.pause_point();
            }
            epoch
        });
        assert_eq!(gate.begin_pause(Duration::from_secs(10)), Some(1));
        for _ in 0..1_000 {
            gate.cv.notify_all();
            let s = gate.lock();
            assert!(s.pause_requested, "hammering must not withdraw the pause");
            assert_eq!(s.parked, 1, "a spuriously woken producer re-parks");
        }
        gate.resume(3);
        assert_eq!(worker.join().unwrap(), 3, "the real resume still lands");
    }

    /// The coordinator's barrier wait must also survive spurious
    /// wakeups: a chaos thread hammers the condvar while two producers
    /// park only after a delay, and `begin_pause` must neither return
    /// early nor miscount.
    #[test]
    fn coordinator_barrier_tolerates_spurious_wakeups() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let gate = Arc::new(RecallGate::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let (gate_chaos, stop_chaos) = (Arc::clone(&gate), Arc::clone(&stop));
        let chaos = thread::spawn(move || {
            while !stop_chaos.load(Ordering::Acquire) {
                gate_chaos.cv.notify_all();
                thread::yield_now();
            }
        });
        let mut workers = Vec::new();
        for i in 0..2 {
            let gate = Arc::clone(&gate);
            workers.push(thread::spawn(move || {
                let _guard = ProducerGuard::new(Arc::clone(&gate));
                // Stagger arrivals so the barrier waits through plenty
                // of spurious notifications before it can fill.
                thread::sleep(Duration::from_millis(20 * (i + 1)));
                let deadline = Instant::now() + Duration::from_secs(10);
                let mut epoch = gate.pause_point();
                while epoch == 0 && Instant::now() < deadline {
                    epoch = gate.pause_point();
                }
                epoch
            }));
        }
        let parked = gate.begin_pause(Duration::from_secs(10));
        assert_eq!(parked, Some(2), "barrier must fill exactly, never early");
        gate.resume(1);
        stop.store(true, Ordering::Release);
        chaos.join().unwrap();
        for w in workers {
            assert_eq!(w.join().unwrap(), 1);
        }
    }

    #[test]
    fn guard_counts_a_panicking_producer_as_done() {
        let gate = Arc::new(RecallGate::new(1));
        let gate2 = Arc::clone(&gate);
        let worker = thread::spawn(move || {
            let _guard = ProducerGuard::new(gate2);
            panic!("producer crashed");
        });
        assert!(worker.join().is_err());
        // The barrier fills trivially: no active producers remain.
        assert_eq!(gate.begin_pause(Duration::from_secs(10)), Some(0));
        gate.abort_pause();
    }
}
