//! Bounded consumer-side deduplication for the at-least-once data plane.
//!
//! Resilient runs (chaos installed, or failover enabled) deliver tuple
//! blocks at-least-once: chaos duplicates blocks outright, and producers
//! retransmit recovery-log windows whose acknowledgements never arrived.
//! Consumers must therefore process effectively-once, which previously
//! meant two `HashSet`s — per-tuple `(source, seq)` keys and whole-block
//! range keys — that grew *per delivered tuple for the lifetime of the
//! run*. Under sustained duplication chaos that is an O(input) memory
//! leak dressed up as a filter.
//!
//! [`DedupFilter`] keeps the same two-granularity filter but bounds it by
//! the same thing that bounds the producers: the recovery-log window.
//! Every tuple and block key is associated with the checkpoint window
//! that will cover it (the next marker from its source observed at this
//! consumer). When that window's acknowledgement is accepted by the log,
//! no retransmission of it can ever be issued again — the producer's
//! retry epilogue only retransmits *unacknowledged* windows — so the
//! entries are evicted. The only duplicates that can outlive eviction are
//! stragglers of a block that carried the window's own marker (chaos
//! duplication is adjacent on a FIFO ring, retransmissions always repack
//! tuples with their marker), and those are rejected by the acked-window
//! skip mask: a marker id that was already acknowledged marks every tuple
//! ahead of it in the block as covered.
//!
//! Live size is O(unacked windows × window size), not O(tuples ever
//! delivered); the acked-id mask per source is a contiguous floor plus
//! any out-of-order ids above it, which collapses to two integers in the
//! common in-order case.

use std::collections::{BTreeSet, HashMap, HashSet};

/// A whole-block dedup key: `(first_seq, last_seq, count)` over the
/// block's tuples.
pub(crate) type BlockKey = (u64, u64, u64);

/// Entries awaiting their covering window's acknowledgement.
#[derive(Debug, Default)]
struct PendingEntries {
    seqs: Vec<u64>,
    blocks: Vec<BlockKey>,
}

/// Acknowledged checkpoint ids for one source at this consumer: every id
/// strictly below `floor` plus the sparse out-of-order ids in `above`.
/// Marker ids are per-destination monotonic from zero (matching the
/// recovery log's own `acked_floor`), so `above` drains into `floor` as
/// gaps close and the set stays near-empty on healthy runs.
#[derive(Debug, Default)]
struct AckedIds {
    floor: u64,
    above: BTreeSet<u64>,
}

impl AckedIds {
    fn contains(&self, id: u64) -> bool {
        id < self.floor || self.above.contains(&id)
    }

    fn insert(&mut self, id: u64) {
        if id < self.floor {
            return;
        }
        self.above.insert(id);
        while self.above.remove(&self.floor) {
            self.floor += 1;
        }
    }
}

/// The bounded effectively-once filter shared by the threaded consumer
/// and the socket worker.
#[derive(Debug, Default)]
pub(crate) struct DedupFilter {
    /// Per-tuple `(source, seq)` keys of live (unacked-window) entries.
    seen: HashSet<(usize, u64)>,
    /// Whole-block `(source, first, last, count)` keys of live entries.
    seen_blocks: HashSet<(usize, BlockKey)>,
    /// Entries delivered since the last marker from each source; they
    /// roll into `windows` when that marker arrives.
    open: HashMap<usize, PendingEntries>,
    /// Entries covered by a specific not-yet-acknowledged window.
    windows: HashMap<(usize, u64), PendingEntries>,
    /// The skip mask: window ids whose acknowledgement was accepted.
    acked: HashMap<usize, AckedIds>,
    /// High-water mark of `seen.len() + seen_blocks.len()`.
    peak: usize,
}

impl DedupFilter {
    pub(crate) fn new() -> Self {
        DedupFilter::default()
    }

    fn note_peak(&mut self) {
        self.peak = self.peak.max(self.seen.len() + self.seen_blocks.len());
    }

    /// Registers a block's range key. Returns `true` when an identical
    /// block from this source was already delivered (and its window is
    /// still live): closed windows only shrink on retransmission, so an
    /// equal `(first, last, count)` means an equal tuple set.
    pub(crate) fn block_is_dup(&mut self, source: usize, key: BlockKey) -> bool {
        if !self.seen_blocks.insert((source, key)) {
            return true;
        }
        self.open.entry(source).or_default().blocks.push(key);
        self.note_peak();
        false
    }

    /// Registers a tuple. Returns `true` when `(source, seq)` was already
    /// delivered into a still-live window.
    pub(crate) fn tuple_is_dup(&mut self, source: usize, seq: u64) -> bool {
        if !self.seen.insert((source, seq)) {
            return true;
        }
        self.open.entry(source).or_default().seqs.push(seq);
        self.note_peak();
        false
    }

    /// Records a recall/failover re-delivery (`Migrated` traffic), which
    /// is always processed — the barrier carries exactly-once for that
    /// path — but must still shadow later retransmissions of the same
    /// sequence number.
    pub(crate) fn note_delivered(&mut self, source: usize, seq: u64) {
        if self.seen.insert((source, seq)) {
            self.open.entry(source).or_default().seqs.push(seq);
            self.note_peak();
        }
    }

    /// A marker for window `(source, id)` arrived: everything delivered
    /// from that source since the previous marker is covered by it.
    /// Rolls the open entries into the window (evicting immediately when
    /// the window was already acknowledged — a late retransmission).
    pub(crate) fn close_window(&mut self, source: usize, id: u64) {
        let entries = self.open.remove(&source).unwrap_or_default();
        if self.is_acked(source, id) {
            self.evict_entries(source, entries);
            return;
        }
        let slot = self.windows.entry((source, id)).or_default();
        slot.seqs.extend(entries.seqs);
        slot.blocks.extend(entries.blocks);
    }

    /// True when window `(source, id)` has already been acknowledged at
    /// this consumer — the skip mask consulted before processing tuples
    /// that ride ahead of a marker in a late-retransmitted block.
    pub(crate) fn is_acked(&self, source: usize, id: u64) -> bool {
        self.acked.get(&source).is_some_and(|a| a.contains(id))
    }

    /// The log accepted window `(source, id)`'s acknowledgement: no
    /// retransmission of it can be issued anymore, so its entries leave
    /// the live sets and the id joins the skip mask.
    pub(crate) fn window_acked(&mut self, source: usize, id: u64) {
        self.acked.entry(source).or_default().insert(id);
        if let Some(entries) = self.windows.remove(&(source, id)) {
            self.evict_entries(source, entries);
        }
    }

    fn evict_entries(&mut self, source: usize, entries: PendingEntries) {
        for seq in entries.seqs {
            self.seen.remove(&(source, seq));
        }
        for key in entries.blocks {
            self.seen_blocks.remove(&(source, key));
        }
    }

    /// Live filter entries right now (tuple keys plus block keys).
    #[cfg(test)]
    pub(crate) fn live(&self) -> usize {
        self.seen.len() + self.seen_blocks.len()
    }

    /// High-water mark of live filter entries over the filter's lifetime.
    pub(crate) fn peak(&self) -> u64 {
        self.peak as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_are_caught_while_the_window_is_live() {
        let mut d = DedupFilter::new();
        assert!(!d.tuple_is_dup(0, 1));
        assert!(!d.tuple_is_dup(0, 2));
        assert!(d.tuple_is_dup(0, 1), "redelivery before ack is a dup");
        assert!(!d.block_is_dup(0, (1, 2, 2)));
        assert!(d.block_is_dup(0, (1, 2, 2)));
        assert!(!d.tuple_is_dup(1, 1), "sources are independent");
    }

    #[test]
    fn acked_windows_evict_their_entries_and_mask_stragglers() {
        let mut d = DedupFilter::new();
        for seq in 1..=8 {
            assert!(!d.tuple_is_dup(0, seq));
        }
        assert!(!d.block_is_dup(0, (1, 8, 8)));
        d.close_window(0, 1);
        assert_eq!(d.live(), 9);
        d.window_acked(0, 1);
        assert_eq!(d.live(), 0, "acked window evicts everything it covers");
        // The skip mask shadows the evicted entries: a late block carrying
        // marker 1 is recognised without per-tuple state.
        assert!(d.is_acked(0, 1));
        assert!(!d.is_acked(0, 2));
        assert!(!d.is_acked(1, 1));
    }

    #[test]
    fn late_marker_for_an_acked_window_evicts_immediately() {
        let mut d = DedupFilter::new();
        d.close_window(0, 1);
        d.window_acked(0, 1);
        // A retransmitted copy of window 1 arrives after eviction: its
        // entries must not take up residence again once its (already
        // acked) marker closes it.
        assert!(!d.tuple_is_dup(0, 5));
        assert!(!d.block_is_dup(0, (5, 5, 1)));
        d.close_window(0, 1);
        assert_eq!(d.live(), 0);
    }

    #[test]
    fn out_of_order_acks_keep_the_mask_compact() {
        let mut d = DedupFilter::new();
        assert!(!d.is_acked(0, 0), "nothing is acked before any ack");
        for id in [3u64, 0, 2, 4, 1] {
            d.close_window(0, id);
            d.window_acked(0, id);
        }
        let mask = &d.acked[&0];
        assert_eq!(mask.floor, 5, "contiguous ids collapse into the floor");
        assert!(mask.above.is_empty());
        for id in 0..5 {
            assert!(d.is_acked(0, id));
        }
        assert!(!d.is_acked(0, 5));
    }

    #[test]
    fn live_size_tracks_unacked_windows_not_history() {
        let mut d = DedupFilter::new();
        let window = 8u64;
        for id in 0..100u64 {
            for seq in (id * window)..((id + 1) * window) {
                assert!(!d.tuple_is_dup(0, seq));
            }
            d.close_window(0, id);
            d.window_acked(0, id);
        }
        assert_eq!(d.live(), 0);
        assert!(
            d.peak() <= 2 * window,
            "peak {} must be O(window), not O(history)",
            d.peak()
        );
    }
}
