//! The scheduler: partitioning a logical plan across Grid resources.
//!
//! Mirrors the role of the GDQS optimiser: it consults the resource
//! registry for candidate machines, places scans on data nodes, and
//! partitions the expensive operator (operation call or hash join) across
//! the selected evaluation nodes — the intra-operator parallelism whose
//! balance the adaptivity architecture then maintains at run time.

use std::sync::Arc;

use gridq_common::{DistributionVector, GridError, NodeId, QueryId, Result, SubplanId};
use gridq_engine::distributed::{
    DistributedPlan, ExchangeSpec, ParallelStageSpec, RoutingPolicy, SourceSpec, StreamKeys,
};
use gridq_engine::evaluator::{FilterMapFactory, HashJoinFactory, ServiceCallFactory, StreamTag};
use gridq_engine::service::ServiceRegistry;
use gridq_engine::LogicalPlan;
use gridq_grid::ResourceRegistry;

/// Cost and shape parameters the scheduler bakes into the distributed
/// plan.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Evaluation nodes to partition the expensive operator across
    /// (`None` = all available compute nodes).
    pub parallelism: Option<usize>,
    /// Per-tuple scan cost at data nodes, ms.
    pub scan_cost_ms: f64,
    /// Base per-tuple hash-join build cost, ms.
    pub join_build_cost_ms: f64,
    /// Base per-tuple hash-join probe cost, ms.
    pub join_probe_cost_ms: f64,
    /// Base per-tuple cost of filter/project stages, ms.
    pub map_cost_ms: f64,
    /// Tuples per exchange buffer.
    pub buffer_tuples: usize,
    /// Hash buckets for stateful exchanges.
    pub bucket_count: u32,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            parallelism: None,
            scan_cost_ms: 1.0,
            join_build_cost_ms: 2.0,
            join_probe_cost_ms: 4.0,
            map_cost_ms: 0.5,
            buffer_tuples: 100,
            bucket_count: 64,
        }
    }
}

fn pick_nodes(
    registry: &ResourceRegistry,
    config: &SchedulerConfig,
) -> Result<(NodeId, Vec<NodeId>)> {
    let data_node = registry
        .data_nodes()
        .first()
        .map(|n| n.id)
        .ok_or_else(|| GridError::Schedule("no data node registered".into()))?;
    let available = registry.nodes().iter().filter(|n| !n.hosts_data).count();
    if available == 0 {
        return Err(GridError::Schedule("no compute nodes registered".into()));
    }
    let want = config.parallelism.unwrap_or(available);
    let picked = registry.select_compute_nodes(want)?;
    Ok((data_node, picked.iter().map(|n| n.id).collect()))
}

/// Schedules a logical plan onto the Grid, producing a partitioned
/// distributed plan.
///
/// Supported shapes (the paper's query class):
/// - `Call(Scan)` — Q1: the operation call is partitioned (weighted
///   routing, stateless).
/// - `Project(Join(Scan, Scan))` and bare `Join(Scan, Scan)` — Q2: the
///   hash join is partitioned (hash-bucket routing, stateful; any
///   projection is pushed into the join partitions).
/// - `Filter(Scan)` / `Project(Scan)` / `Project(Filter(Scan))` — the
///   filter/projection pipeline is partitioned (weighted, stateless).
///
/// Other shapes are rejected with a `Schedule` error; execute them
/// locally via [`gridq_engine::physical::execute_local`].
pub fn schedule(
    query: QueryId,
    plan: &LogicalPlan,
    registry: &ResourceRegistry,
    services: &ServiceRegistry,
    config: &SchedulerConfig,
) -> Result<DistributedPlan> {
    let (data_node, eval_nodes) = pick_nodes(registry, config)?;
    let parallelism = eval_nodes.len();
    let stage_id = SubplanId::new(1);

    match plan {
        LogicalPlan::Call {
            input,
            service,
            args,
            output_name,
            keep_input,
            ..
        } => {
            let LogicalPlan::Scan { table, schema, .. } = input.as_ref() else {
                return Err(GridError::Schedule(
                    "operation calls are schedulable over a single scan".into(),
                ));
            };
            let svc = Arc::clone(services.get(service)?);
            let factory = ServiceCallFactory::new(
                schema,
                svc,
                args.clone(),
                output_name,
                *keep_input,
                services.clone(),
            );
            Ok(DistributedPlan {
                query,
                sources: vec![SourceSpec {
                    table: table.clone(),
                    node: data_node,
                    stream: StreamTag::Single,
                    scan_cost_ms: config.scan_cost_ms,
                }],
                stages: vec![ParallelStageSpec {
                    id: stage_id,
                    factory: Arc::new(factory),
                    nodes: eval_nodes,
                    exchange: ExchangeSpec {
                        routing: RoutingPolicy::Weighted {
                            initial: DistributionVector::uniform(parallelism),
                        },
                        buffer_tuples: config.buffer_tuples,
                    },
                }],
                collect_node: data_node,
            })
        }
        LogicalPlan::Join { .. } => {
            schedule_join(query, plan, None, data_node, eval_nodes, services, config)
        }
        LogicalPlan::Project {
            input,
            exprs,
            fields,
        } if matches!(input.as_ref(), LogicalPlan::Join { .. }) => schedule_join(
            query,
            input,
            Some((exprs.clone(), fields.clone())),
            data_node,
            eval_nodes,
            services,
            config,
        ),
        LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => {
            schedule_map(query, plan, data_node, eval_nodes, services, config)
        }
        LogicalPlan::Scan { .. } => Err(GridError::Schedule(
            "bare scans have no partitionable operator; run locally".into(),
        )),
    }
}

#[allow(clippy::too_many_arguments)]
fn schedule_join(
    query: QueryId,
    join: &LogicalPlan,
    projection: Option<(Vec<gridq_engine::Expr>, Vec<gridq_common::Field>)>,
    data_node: NodeId,
    eval_nodes: Vec<NodeId>,
    services: &ServiceRegistry,
    config: &SchedulerConfig,
) -> Result<DistributedPlan> {
    let LogicalPlan::Join {
        left,
        right,
        left_key,
        right_key,
    } = join
    else {
        unreachable!("caller matched Join");
    };
    let (
        LogicalPlan::Scan {
            table: left_table,
            schema: left_schema,
            ..
        },
        LogicalPlan::Scan {
            table: right_table,
            schema: right_schema,
            ..
        },
    ) = (left.as_ref(), right.as_ref())
    else {
        return Err(GridError::Schedule(
            "joins are schedulable over two base-table scans".into(),
        ));
    };
    let parallelism = eval_nodes.len();
    let mut factory = HashJoinFactory::new(
        left_schema,
        right_schema,
        *left_key,
        *right_key,
        config.join_build_cost_ms,
        config.join_probe_cost_ms,
    );
    if let Some((exprs, fields)) = projection {
        factory = factory.with_projection(exprs, fields, services.clone());
    }
    let bucket_count = config.bucket_count.max(parallelism as u32);
    Ok(DistributedPlan {
        query,
        sources: vec![
            SourceSpec {
                table: left_table.clone(),
                node: data_node,
                stream: StreamTag::Build,
                scan_cost_ms: config.scan_cost_ms,
            },
            SourceSpec {
                table: right_table.clone(),
                node: data_node,
                stream: StreamTag::Probe,
                scan_cost_ms: config.scan_cost_ms,
            },
        ],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: eval_nodes,
            exchange: ExchangeSpec {
                routing: RoutingPolicy::HashBuckets {
                    bucket_count,
                    initial: DistributionVector::uniform(parallelism),
                    keys: StreamKeys {
                        build: Some(*left_key),
                        probe: Some(*right_key),
                        single: None,
                    },
                },
                buffer_tuples: config.buffer_tuples,
            },
        }],
        collect_node: data_node,
    })
}

fn schedule_map(
    query: QueryId,
    plan: &LogicalPlan,
    data_node: NodeId,
    eval_nodes: Vec<NodeId>,
    services: &ServiceRegistry,
    config: &SchedulerConfig,
) -> Result<DistributedPlan> {
    // Accepted pipelines over one scan: Filter(Scan), Project(Scan),
    // Project(Filter(Scan)).
    let (projection, below) = match plan {
        LogicalPlan::Project {
            input,
            exprs,
            fields,
        } => (Some((exprs.clone(), fields.clone())), input.as_ref()),
        other => (None, other),
    };
    let (predicate, scan) = match below {
        LogicalPlan::Filter { input, predicate } => (Some(predicate.clone()), input.as_ref()),
        other => (None, other),
    };
    let LogicalPlan::Scan { table, schema, .. } = scan else {
        return Err(GridError::Schedule(
            "filter/projection pipelines are schedulable over a single scan".into(),
        ));
    };
    let parallelism = eval_nodes.len();
    let factory = FilterMapFactory::new(
        schema,
        predicate,
        projection,
        config.map_cost_ms,
        services.clone(),
    );
    Ok(DistributedPlan {
        query,
        sources: vec![SourceSpec {
            table: table.clone(),
            node: data_node,
            stream: StreamTag::Single,
            scan_cost_ms: config.scan_cost_ms,
        }],
        stages: vec![ParallelStageSpec {
            id: SubplanId::new(1),
            factory: Arc::new(factory),
            nodes: eval_nodes,
            exchange: ExchangeSpec {
                routing: RoutingPolicy::Weighted {
                    initial: DistributionVector::uniform(parallelism),
                },
                buffer_tuples: config.buffer_tuples,
            },
        }],
        collect_node: data_node,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_common::{DataType, Field, Schema};
    use gridq_engine::service::FnService;
    use gridq_engine::Expr;
    use gridq_grid::NodeSpec;

    fn registry(computes: usize) -> ResourceRegistry {
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::data(NodeId::new(0), "store")).unwrap();
        for i in 0..computes {
            r.register(NodeSpec::compute(
                NodeId::new(i as u32 + 1),
                format!("c{i}"),
            ))
            .unwrap();
        }
        r
    }

    fn services() -> ServiceRegistry {
        let mut s = ServiceRegistry::new();
        s.register(Arc::new(FnService::new(
            "F",
            vec![DataType::Str],
            DataType::Float,
            1.0,
            |_| Ok(gridq_common::Value::Float(0.0)),
        )));
        s
    }

    fn scan(table: &str, cols: &[(&str, DataType)]) -> LogicalPlan {
        let fields = cols
            .iter()
            .map(|(c, t)| Field::new(format!("{table}.{c}"), *t))
            .collect();
        LogicalPlan::Scan {
            table: table.into(),
            alias: table.into(),
            schema: Schema::new(fields),
        }
    }

    #[test]
    fn schedules_call_over_scan() {
        let plan = LogicalPlan::Call {
            input: Box::new(scan("t", &[("s", DataType::Str)])),
            service: "F".into(),
            args: vec![Expr::col(0)],
            output_name: "f".into(),
            keep_input: false,
            schema: Schema::new(vec![Field::new("f", DataType::Float)]),
        };
        let dp = schedule(
            QueryId::new(1),
            &plan,
            &registry(3),
            &services(),
            &SchedulerConfig::default(),
        )
        .unwrap();
        assert_eq!(dp.sources.len(), 1);
        assert_eq!(dp.stages[0].nodes.len(), 3);
        assert!(matches!(
            dp.stages[0].exchange.routing,
            RoutingPolicy::Weighted { .. }
        ));
        dp.validate().unwrap();
    }

    #[test]
    fn parallelism_limits_nodes() {
        let plan = LogicalPlan::Call {
            input: Box::new(scan("t", &[("s", DataType::Str)])),
            service: "F".into(),
            args: vec![Expr::col(0)],
            output_name: "f".into(),
            keep_input: false,
            schema: Schema::new(vec![Field::new("f", DataType::Float)]),
        };
        let config = SchedulerConfig {
            parallelism: Some(2),
            ..Default::default()
        };
        let dp = schedule(QueryId::new(1), &plan, &registry(3), &services(), &config).unwrap();
        assert_eq!(dp.stages[0].nodes.len(), 2);
    }

    #[test]
    fn schedules_projected_join() {
        let join = LogicalPlan::Join {
            left: Box::new(scan("p", &[("orf", DataType::Str)])),
            right: Box::new(scan(
                "i",
                &[("orf1", DataType::Str), ("orf2", DataType::Str)],
            )),
            left_key: 0,
            right_key: 0,
        };
        let plan = LogicalPlan::Project {
            input: Box::new(join),
            exprs: vec![Expr::col(2)],
            fields: vec![Field::new("orf2", DataType::Str)],
        };
        let dp = schedule(
            QueryId::new(2),
            &plan,
            &registry(2),
            &services(),
            &SchedulerConfig::default(),
        )
        .unwrap();
        assert_eq!(dp.sources.len(), 2);
        assert!(dp.stages[0].factory.stateful());
        assert_eq!(dp.stages[0].factory.schema().len(), 1);
        assert!(matches!(
            dp.stages[0].exchange.routing,
            RoutingPolicy::HashBuckets { .. }
        ));
        dp.validate().unwrap();
    }

    #[test]
    fn schedules_filter_pipeline() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t", &[("x", DataType::Int)])),
            predicate: Expr::col(0).eq(Expr::lit(1i64)),
        };
        let dp = schedule(
            QueryId::new(3),
            &plan,
            &registry(2),
            &services(),
            &SchedulerConfig::default(),
        )
        .unwrap();
        assert!(!dp.stages[0].factory.stateful());
    }

    #[test]
    fn unsupported_shapes_rejected() {
        let bare = scan("t", &[("x", DataType::Int)]);
        assert!(schedule(
            QueryId::new(4),
            &bare,
            &registry(2),
            &services(),
            &SchedulerConfig::default()
        )
        .is_err());
    }

    #[test]
    fn missing_resources_rejected() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t", &[("x", DataType::Int)])),
            predicate: Expr::lit(true),
        };
        // No compute nodes.
        let mut only_data = ResourceRegistry::new();
        only_data
            .register(NodeSpec::data(NodeId::new(0), "store"))
            .unwrap();
        assert!(schedule(
            QueryId::new(5),
            &plan,
            &only_data,
            &services(),
            &SchedulerConfig::default()
        )
        .is_err());
        // No data node.
        let mut only_compute = ResourceRegistry::new();
        only_compute
            .register(NodeSpec::compute(NodeId::new(1), "c"))
            .unwrap();
        assert!(schedule(
            QueryId::new(6),
            &plan,
            &only_compute,
            &services(),
            &SchedulerConfig::default()
        )
        .is_err());
    }
}
