//! The `GridQueryProcessor`: SQL in, adaptive distributed execution out.

use std::sync::Arc;

use gridq_adapt::AdaptivityConfig;
use gridq_common::{QueryId, Result};
use gridq_engine::physical::{execute_local, Catalog};
use gridq_engine::service::{Service, ServiceRegistry};
use gridq_engine::LogicalPlan;
use gridq_grid::GridEnvironment;
use gridq_sim::{ExecutionReport, Simulation, SimulationConfig};
use gridq_sql::plan_sql;
use gridq_workload::EntropyAnalyser;

use crate::scheduler::{schedule, SchedulerConfig};

/// Per-query execution options.
#[derive(Debug, Clone)]
pub struct ExecutionOptions {
    /// Adaptivity configuration (defaults to the paper's defaults with
    /// adaptivity enabled).
    pub adaptivity: AdaptivityConfig,
    /// Scheduler cost model and shape parameters.
    pub scheduler: SchedulerConfig,
    /// Per-tuple receive cost at evaluators (simulation cost model), ms.
    pub receive_cost_ms: f64,
    /// Whether to keep the full result set in the report.
    pub collect_results: bool,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for ExecutionOptions {
    fn default() -> Self {
        ExecutionOptions {
            adaptivity: AdaptivityConfig::default(),
            scheduler: SchedulerConfig::default(),
            receive_cost_ms: 4.5,
            collect_results: false,
            seed: 0x6009,
        }
    }
}

impl ExecutionOptions {
    /// Options with adaptivity disabled (the static system).
    pub fn static_system() -> Self {
        ExecutionOptions {
            adaptivity: AdaptivityConfig::disabled(),
            ..Default::default()
        }
    }

    /// Builder: sets the adaptivity configuration.
    pub fn with_adaptivity(mut self, adaptivity: AdaptivityConfig) -> Self {
        self.adaptivity = adaptivity;
        self
    }

    /// Builder: limits stage parallelism.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.scheduler.parallelism = Some(parallelism);
        self
    }

    /// Builder: retains result tuples in the report.
    pub fn keep_results(mut self) -> Self {
        self.collect_results = true;
        self
    }
}

/// The distributed query service: owns the Grid environment, catalog,
/// and service registry, and runs queries end to end.
pub struct GridQueryProcessor {
    env: GridEnvironment,
    catalog: Catalog,
    services: ServiceRegistry,
    next_query: u32,
}

impl GridQueryProcessor {
    /// Creates a processor over an explicit Grid environment.
    pub fn new(env: GridEnvironment) -> Self {
        GridQueryProcessor {
            env,
            catalog: Catalog::new(),
            services: ServiceRegistry::new(),
            next_query: 1,
        }
    }

    /// Creates a processor over a demo Grid: one data node plus
    /// `evaluators` compute nodes on a 100 Mbps LAN, with the
    /// `EntropyAnalyser` web service registered.
    pub fn with_demo_grid(evaluators: usize) -> Self {
        let mut qp = GridQueryProcessor::new(GridEnvironment::demo(evaluators));
        qp.register_service(Arc::new(EntropyAnalyser::new(2.5)));
        qp
    }

    /// Replaces the metadata catalog.
    pub fn register_catalog(&mut self, catalog: Catalog) {
        self.catalog = catalog;
    }

    /// Registers a table.
    pub fn register_table(&mut self, table: Arc<gridq_engine::Table>) {
        self.catalog.register(table);
    }

    /// Registers a callable service.
    pub fn register_service(&mut self, service: Arc<dyn Service>) {
        self.services.register(service);
    }

    /// The Grid environment.
    pub fn env(&self) -> &GridEnvironment {
        &self.env
    }

    /// The Grid environment (mutable, e.g. to install perturbations).
    pub fn env_mut(&mut self) -> &mut GridEnvironment {
        &mut self.env
    }

    /// The metadata catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The service registry.
    pub fn services(&self) -> &ServiceRegistry {
        &self.services
    }

    /// Parses and binds SQL into a logical plan.
    pub fn plan(&self, sql: &str) -> Result<LogicalPlan> {
        plan_sql(sql, &self.catalog, &self.services)
    }

    /// Explains a query: the bound logical plan and the schedule.
    pub fn explain(&mut self, sql: &str, options: &ExecutionOptions) -> Result<String> {
        let logical = self.plan(sql)?;
        let query = QueryId::new(self.next_query);
        let distributed = schedule(
            query,
            &logical,
            self.env.registry(),
            &self.services,
            &options.scheduler,
        )?;
        let stage = &distributed.stages[0];
        let nodes: Vec<String> = stage.nodes.iter().map(ToString::to_string).collect();
        let sources: Vec<String> = distributed
            .sources
            .iter()
            .map(|s| format!("{} on {}", s.table, s.node))
            .collect();
        Ok(format!(
            "Logical plan:\n{}\nSchedule:\n  sources: [{}]\n  stage {}: {} over {} partitions on [{}]\n  collect at {}\n",
            logical.display_tree(),
            sources.join(", "),
            stage.id,
            stage.factory.name(),
            stage.nodes.len(),
            nodes.join(", "),
            distributed.collect_node,
        ))
    }

    /// Runs SQL on the distributed Grid with the configured adaptivity,
    /// returning the execution report.
    pub fn run_sql(&mut self, sql: &str, options: ExecutionOptions) -> Result<ExecutionReport> {
        let logical = self.plan(sql)?;
        let query = QueryId::new(self.next_query);
        self.next_query += 1;
        let distributed = schedule(
            query,
            &logical,
            self.env.registry(),
            &self.services,
            &options.scheduler,
        )?;
        let sim_config = SimulationConfig {
            adaptivity: options.adaptivity,
            receive_cost_ms: options.receive_cost_ms,
            collect_results: options.collect_results,
            seed: options.seed,
            ..Default::default()
        };
        let sim = Simulation::new(self.env.clone(), self.catalog.clone(), sim_config)?;
        sim.run(&distributed)
    }

    /// Runs SQL locally on a single node (the reference path for result
    /// correctness; also the fallback for plan shapes the scheduler does
    /// not partition).
    pub fn run_local(&self, sql: &str) -> Result<Vec<gridq_common::Tuple>> {
        let logical = self.plan(sql)?;
        execute_local(&logical, &self.catalog, &self.services)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridq_adapt::{AssessmentPolicy, ResponsePolicy};
    use gridq_common::NodeId;
    use gridq_grid::Perturbation;
    use gridq_workload::demo_catalog;
    use std::collections::HashMap;

    fn processor(evaluators: usize, seqs: usize, inters: usize) -> GridQueryProcessor {
        let mut qp = GridQueryProcessor::with_demo_grid(evaluators);
        qp.register_catalog(demo_catalog(seqs, inters, 32, 11));
        qp
    }

    const Q1: &str = "select EntropyAnalyser(p.sequence) from protein_sequences p";
    const Q2: &str = "select i.ORF2 from protein_sequences p, protein_interactions i \
                      where i.ORF1 = p.ORF";

    fn multiset(tuples: &[gridq_common::Tuple]) -> HashMap<String, usize> {
        let mut m = HashMap::new();
        for t in tuples {
            *m.entry(t.to_string()).or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn q1_runs_and_matches_local_reference() {
        let mut qp = processor(2, 120, 150);
        let report = qp
            .run_sql(Q1, ExecutionOptions::static_system().keep_results())
            .unwrap();
        assert_eq!(report.tuples_output, 120);
        let local = qp.run_local(Q1).unwrap();
        assert_eq!(multiset(&report.results), multiset(&local));
    }

    #[test]
    fn q2_runs_and_matches_local_reference() {
        let mut qp = processor(2, 100, 140);
        let report = qp
            .run_sql(Q2, ExecutionOptions::static_system().keep_results())
            .unwrap();
        let local = qp.run_local(Q2).unwrap();
        assert_eq!(report.tuples_output as usize, local.len());
        assert_eq!(multiset(&report.results), multiset(&local));
    }

    #[test]
    fn q2_with_r1_adaptivity_stays_correct_under_perturbation() {
        let mut qp = processor(2, 150, 220);
        qp.env_mut()
            .perturb(NodeId::new(2), Perturbation::SleepMs(12.0));
        let options = ExecutionOptions::default()
            .with_adaptivity(AdaptivityConfig::with_policies(
                AssessmentPolicy::A1,
                ResponsePolicy::R1,
            ))
            .keep_results();
        let report = qp.run_sql(Q2, options).unwrap();
        let local = qp.run_local(Q2).unwrap();
        assert_eq!(multiset(&report.results), multiset(&local));
    }

    #[test]
    fn q2_defaults_to_r1_requirement() {
        // The default response policy is R2; a stateful stage must be
        // rejected rather than silently corrupting results.
        let mut qp = processor(2, 50, 60);
        let err = qp.run_sql(Q2, ExecutionOptions::default()).unwrap_err();
        assert!(err.to_string().contains("retrospective"));
    }

    #[test]
    fn explain_mentions_stage_and_nodes() {
        let mut qp = processor(3, 10, 10);
        let text = qp.explain(Q1, &ExecutionOptions::default()).unwrap();
        assert!(text.contains("op_call"));
        assert!(text.contains("3 partitions"));
        assert!(text.contains("protein_sequences"));
    }

    #[test]
    fn parallelism_option_respected() {
        let mut qp = processor(3, 40, 10);
        let report = qp
            .run_sql(Q1, ExecutionOptions::static_system().with_parallelism(2))
            .unwrap();
        assert_eq!(report.per_partition_processed.len(), 2);
    }

    #[test]
    fn unknown_sql_objects_error_cleanly() {
        let mut qp = processor(2, 10, 10);
        assert!(qp
            .run_sql("select x from nope n", ExecutionOptions::default())
            .is_err());
        assert!(qp
            .run_local("select Nope(p.orf) from protein_sequences p")
            .is_err());
    }

    #[test]
    fn filter_pipeline_is_schedulable() {
        let mut qp = processor(2, 60, 10);
        let sql = "select p.orf from protein_sequences p where p.orf <> 'ORF000000'";
        let report = qp
            .run_sql(sql, ExecutionOptions::static_system().keep_results())
            .unwrap();
        assert_eq!(report.tuples_output, 59);
        let local = qp.run_local(sql).unwrap();
        assert_eq!(multiset(&report.results), multiset(&local));
    }
}
