#![warn(missing_docs)]

//! The distributed query service façade — the GDQS of the paper.
//!
//! A [`GridQueryProcessor`] owns the resource registry, metadata catalog,
//! and service registry; accepts SQL; parses and binds it (via
//! `gridq-sql`); schedules the logical plan over the available Grid
//! nodes with intra-operator parallelism (via [`scheduler`]); and
//! executes the partitioned plan on the virtual-time Grid with the
//! adaptivity components attached (via `gridq-sim`).
//!
//! ```
//! use gridq_core::{ExecutionOptions, GridQueryProcessor};
//! use gridq_workload::demo_catalog;
//!
//! let mut qp = GridQueryProcessor::with_demo_grid(2);
//! qp.register_catalog(demo_catalog(300, 470, 64, 42));
//! let report = qp
//!     .run_sql(
//!         "select EntropyAnalyser(p.sequence) from protein_sequences p",
//!         ExecutionOptions::default(),
//!     )
//!     .expect("query runs");
//! assert_eq!(report.tuples_output, 300);
//! ```

pub mod processor;
pub mod scheduler;

pub use processor::{ExecutionOptions, GridQueryProcessor};
pub use scheduler::{schedule, SchedulerConfig};
