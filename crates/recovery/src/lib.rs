#![warn(missing_docs)]

//! Recovery logs with a checkpoint/acknowledgement protocol.
//!
//! This crate reproduces the state-management substrate that the paper
//! borrows from its companion fault-tolerance work (Smith & Watson,
//! *Fault-tolerance in distributed query processing*, Newcastle TR
//! CS-TR-893): exchange **producers** insert checkpoint markers into the
//! stream of tuples they send to each consumer and keep a copy of the
//! outgoing tuples in a local *recovery log*. When the tuples between two
//! checkpoints have finished processing downstream (and are no longer
//! needed by operators higher in the plan), the consumer returns an
//! acknowledgement and the producer prunes the covered log prefix.
//!
//! At any point the log therefore holds exactly the tuples that have *not*
//! finished being processed: all in-transit tuples plus the tuples that
//! make up downstream operator state. That is what makes **retrospective
//! (R1) repartitioning** possible — the Responder can extract the
//! unacknowledged tuples and re-send them under a new distribution policy.
//!
//! The log is generic over the logged item so it can be tested in
//! isolation; the execution substrates instantiate it with
//! `(StreamTag, Tuple)` pairs.

use std::collections::VecDeque;

use gridq_common::{GridError, Result};

/// A checkpoint marker emitted into a destination's stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Checkpoint {
    /// The destination partition this checkpoint was sent to.
    pub dest: u32,
    /// Monotonically increasing checkpoint id within that destination.
    pub id: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    /// The id of the checkpoint that closes this entry's window. Entries
    /// recorded after the latest checkpoint carry the id the *next*
    /// checkpoint will take.
    cp: u64,
    item: T,
}

#[derive(Debug, Clone)]
struct DestLog<T> {
    entries: VecDeque<Entry<T>>,
    /// Id the next checkpoint will take; all ids below it are emitted.
    next_cp: u64,
    /// Entries recorded since the last checkpoint.
    since_last: usize,
    /// Highest acknowledged checkpoint id (`None` before the first ack).
    acked: Option<u64>,
}

impl<T> DestLog<T> {
    fn new() -> Self {
        DestLog {
            entries: VecDeque::new(),
            next_cp: 0,
            since_last: 0,
            acked: None,
        }
    }
}

/// Per-destination recovery logs for one exchange producer.
///
/// The log keeps its own conservation counters (see [`RecoveryLog::audit`]):
/// drained entries count as *retired* because every drain path re-delivers
/// them outside the ack protocol (failure resends, retrospective recalls),
/// and entries re-recorded afterwards count as freshly recorded — so
/// [`LogAudit::conserved`] holds across drains and re-records.
#[derive(Debug, Clone)]
pub struct RecoveryLog<T> {
    dests: Vec<DestLog<T>>,
    interval: usize,
    recorded: u64,
    pruned: u64,
    retired: u64,
    acks_accepted: u64,
    acks_dropped: u64,
}

impl<T> RecoveryLog<T> {
    /// Creates logs for `dest_count` destinations with a checkpoint every
    /// `interval` recorded tuples per destination. `interval` must be
    /// positive.
    pub fn new(dest_count: usize, interval: usize) -> Result<Self> {
        if interval == 0 {
            return Err(GridError::Config(
                "checkpoint interval must be positive".into(),
            ));
        }
        Ok(RecoveryLog {
            dests: (0..dest_count).map(|_| DestLog::new()).collect(),
            interval,
            recorded: 0,
            pruned: 0,
            retired: 0,
            acks_accepted: 0,
            acks_dropped: 0,
        })
    }

    /// Number of destinations.
    pub fn dest_count(&self) -> usize {
        self.dests.len()
    }

    /// The checkpoint interval.
    pub fn interval(&self) -> usize {
        self.interval
    }

    fn dest(&self, dest: u32) -> Result<&DestLog<T>> {
        self.dests
            .get(dest as usize)
            .ok_or_else(|| GridError::Execution(format!("recovery log has no destination {dest}")))
    }

    fn dest_mut(&mut self, dest: u32) -> Result<&mut DestLog<T>> {
        self.dests
            .get_mut(dest as usize)
            .ok_or_else(|| GridError::Execution(format!("recovery log has no destination {dest}")))
    }

    /// Records an outgoing item for `dest`. Returns a checkpoint marker to
    /// insert into the stream when this record completes a window of
    /// `interval` items.
    pub fn record(&mut self, dest: u32, item: T) -> Result<Option<Checkpoint>> {
        let interval = self.interval;
        let log = self.dest_mut(dest)?;
        log.entries.push_back(Entry {
            cp: log.next_cp,
            item,
        });
        log.since_last += 1;
        let cp = if log.since_last >= interval {
            let id = log.next_cp;
            log.next_cp += 1;
            log.since_last = 0;
            Some(Checkpoint { dest, id })
        } else {
            None
        };
        self.recorded += 1;
        Ok(cp)
    }

    /// Forces a checkpoint covering any items recorded since the last
    /// one; used when a stream ends mid-window. Returns `None` if the
    /// window is empty.
    pub fn force_checkpoint(&mut self, dest: u32) -> Result<Option<Checkpoint>> {
        let log = self.dest_mut(dest)?;
        if log.since_last == 0 {
            return Ok(None);
        }
        let id = log.next_cp;
        log.next_cp += 1;
        log.since_last = 0;
        Ok(Some(Checkpoint { dest, id }))
    }

    /// Acknowledges checkpoint `id` on `dest`, pruning every entry whose
    /// window it (or an earlier checkpoint) closes. Acknowledging an
    /// unemitted or already-acknowledged checkpoint is an error.
    pub fn acknowledge(&mut self, dest: u32, id: u64) -> Result<usize> {
        let result = {
            let log = self.dest_mut(dest)?;
            if id >= log.next_cp {
                Err(GridError::Execution(format!(
                    "acknowledging unemitted checkpoint {id} on dest {dest}"
                )))
            } else if log.acked.is_some_and(|acked| id <= acked) {
                Err(GridError::Execution(format!(
                    "checkpoint {id} on dest {dest} already acknowledged"
                )))
            } else {
                log.acked = Some(id);
                let mut pruned = 0;
                while log.entries.front().is_some_and(|e| e.cp <= id) {
                    log.entries.pop_front();
                    pruned += 1;
                }
                Ok(pruned)
            }
        };
        match &result {
            Ok(pruned) => {
                self.pruned += *pruned as u64;
                self.acks_accepted += 1;
            }
            Err(_) => self.acks_dropped += 1,
        }
        result
    }

    /// Number of unacknowledged items logged for `dest`.
    pub fn unacked_len(&self, dest: u32) -> usize {
        self.dest(dest).map(|l| l.entries.len()).unwrap_or(0)
    }

    /// Total unacknowledged items across all destinations.
    pub fn total_unacked(&self) -> usize {
        self.dests.iter().map(|l| l.entries.len()).sum()
    }

    /// Iterates over the unacknowledged items for `dest`, oldest first.
    pub fn iter_unacked(&self, dest: u32) -> impl Iterator<Item = &T> {
        self.dests
            .get(dest as usize)
            .into_iter()
            .flat_map(|l| l.entries.iter().map(|e| &e.item))
    }

    /// Removes and returns every unacknowledged item for `dest`, oldest
    /// first. The open checkpoint window resets (a retrospective
    /// redistribution re-sends these items under new ownership, so the old
    /// stream's windows are void).
    pub fn drain_all(&mut self, dest: u32) -> Result<Vec<T>> {
        let drained: Vec<T> = {
            let log = self.dest_mut(dest)?;
            log.since_last = 0;
            log.entries.drain(..).map(|e| e.item).collect()
        };
        self.retired += drained.len() as u64;
        Ok(drained)
    }

    /// Removes and returns the unacknowledged items for `dest` matching
    /// `pred`, preserving order among both kept and drained items.
    pub fn drain_matching(
        &mut self,
        dest: u32,
        mut pred: impl FnMut(&T) -> bool,
    ) -> Result<Vec<T>> {
        let drained = {
            let log = self.dest_mut(dest)?;
            let mut drained = Vec::new();
            let mut kept = VecDeque::with_capacity(log.entries.len());
            for entry in log.entries.drain(..) {
                if pred(&entry.item) {
                    drained.push(entry.item);
                } else {
                    kept.push_back(entry);
                }
            }
            log.entries = kept;
            drained
        };
        self.retired += drained.len() as u64;
        Ok(drained)
    }

    /// Snapshot of this log's conservation counters. Drained entries
    /// appear as `retired` (every drain path re-delivers them outside the
    /// ack protocol); entries re-recorded after a drain count as freshly
    /// `recorded`, so [`LogAudit::conserved`] holds across both.
    pub fn audit(&self) -> LogAudit {
        LogAudit {
            recorded: self.recorded,
            pruned: self.pruned,
            retired: self.retired,
            unacked: self.total_unacked() as u64,
            acks_accepted: self.acks_accepted,
            acks_dropped: self.acks_dropped,
        }
    }
}

/// Outcome of an epoch-guarded acknowledgement on a [`SharedRecoveryLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// The acknowledgement was applied; this many entries were pruned.
    Accepted(usize),
    /// The acknowledgement carried a stale epoch (it was issued before a
    /// window-voiding drain) and was dropped.
    Stale,
    /// The acknowledgement raced a drain that already emptied its window
    /// (or duplicated an earlier ack) and was ignored.
    Ignored,
}

/// A point-in-time conservation audit of a [`SharedRecoveryLog`].
///
/// Every recorded entry must be accounted for exactly once: pruned by an
/// acknowledgement, retired by a retrospective migration, or still
/// unacknowledged in the log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LogAudit {
    /// Entries recorded (including entries re-recorded by migration).
    pub recorded: u64,
    /// Entries pruned by acknowledgements.
    pub pruned: u64,
    /// Entries retired by retrospective migration (the migration traffic
    /// itself carries the exactly-once guarantee for them).
    pub retired: u64,
    /// Entries still unacknowledged.
    pub unacked: u64,
    /// Acknowledgements accepted.
    pub acks_accepted: u64,
    /// Acknowledgements dropped as stale or ignored as races.
    pub acks_dropped: u64,
}

impl LogAudit {
    /// True when every recorded entry is accounted for exactly once.
    pub fn conserved(&self) -> bool {
        self.recorded == self.pruned + self.retired + self.unacked
    }
}

#[derive(Debug)]
struct SharedInner<T> {
    log: RecoveryLog<T>,
    epoch: u64,
    recorded: u64,
    pruned: u64,
    retired: u64,
    acks_accepted: u64,
    acks_dropped: u64,
}

/// A [`RecoveryLog`] shared between real threads.
///
/// The simulator owns its logs outright and mutates them from the single
/// event loop; the threaded executor instead shares each producer's log
/// with the consumers that acknowledge checkpoints into it and with the
/// recall coordinator that migrates entries during a retrospective
/// redistribution. This wrapper adds the three things real concurrency
/// needs on top of [`RecoveryLog`]:
///
/// - interior mutability behind a poison-recovering mutex;
/// - an **epoch** guard on acknowledgements: checkpoints are stamped with
///   the epoch under which their window was opened, and an ack whose
///   epoch predates a window-voiding drain is dropped instead of pruning
///   entries it no longer covers (a retrospective recall *preserves*
///   windows, so it does not bump the epoch; only a drain that voids
///   windows — e.g. failure recovery — must);
/// - conservation counters, so a run can assert after the fact that no
///   tuple was lost or double-accounted ([`LogAudit::conserved`]).
#[derive(Debug)]
pub struct SharedRecoveryLog<T> {
    inner: gridq_common::sync::Mutex<SharedInner<T>>,
}

impl<T> SharedRecoveryLog<T> {
    /// Creates a shared log for `dest_count` destinations checkpointing
    /// every `interval` records per destination.
    pub fn new(dest_count: usize, interval: usize) -> Result<Self> {
        Ok(SharedRecoveryLog {
            inner: gridq_common::sync::Mutex::new(SharedInner {
                log: RecoveryLog::new(dest_count, interval)?,
                epoch: 0,
                recorded: 0,
                pruned: 0,
                retired: 0,
                acks_accepted: 0,
                acks_dropped: 0,
            }),
        })
    }

    /// The current epoch; checkpoints emitted now should carry it.
    pub fn epoch(&self) -> u64 {
        self.inner.lock().epoch
    }

    /// Bumps the epoch, invalidating in-flight acknowledgements. Call
    /// only when checkpoint windows are voided (a drain that re-records
    /// entries under fresh windows), never for a window-preserving
    /// migration.
    pub fn bump_epoch(&self) -> u64 {
        let mut inner = self.inner.lock();
        inner.epoch += 1;
        inner.epoch
    }

    /// Records an outgoing item for `dest`; returns the checkpoint marker
    /// to insert into the stream when this record closes a window.
    pub fn record(&self, dest: u32, item: T) -> Result<Option<Checkpoint>> {
        let mut inner = self.inner.lock();
        let cp = inner.log.record(dest, item)?;
        inner.recorded += 1;
        Ok(cp)
    }

    /// Forces a checkpoint covering the open window on `dest`, if any.
    pub fn force_checkpoint(&self, dest: u32) -> Result<Option<Checkpoint>> {
        self.inner.lock().log.force_checkpoint(dest)
    }

    /// Applies an acknowledgement of checkpoint `id` on `dest` stamped
    /// with `epoch`. Stale epochs and benign races (windows emptied by a
    /// concurrent drain, duplicated acks) are dropped, not errors: under
    /// real threads an ack can always cross a redistribution in flight.
    pub fn acknowledge(&self, dest: u32, id: u64, epoch: u64) -> AckOutcome {
        let mut inner = self.inner.lock();
        if epoch != inner.epoch {
            inner.acks_dropped += 1;
            return AckOutcome::Stale;
        }
        match inner.log.acknowledge(dest, id) {
            Ok(pruned) => {
                inner.pruned += pruned as u64;
                inner.acks_accepted += 1;
                AckOutcome::Accepted(pruned)
            }
            Err(_) => {
                inner.acks_dropped += 1;
                AckOutcome::Ignored
            }
        }
    }

    /// Migrates the entries on `from` matching `pred` to `to`, preserving
    /// their unacknowledged status (checkpoint windows on `from` stay
    /// valid for the entries left behind). Used when a producer restages
    /// its own unsent buffers under a new distribution: the producer is
    /// still alive, so a later (or forced end-of-stream) checkpoint on
    /// `to` closes the migrated entries' window. Returns how many entries
    /// moved.
    pub fn migrate_matching(
        &self,
        from: u32,
        to: u32,
        pred: impl FnMut(&T) -> bool,
    ) -> Result<usize> {
        let mut inner = self.inner.lock();
        let drained = inner.log.drain_matching(from, pred)?;
        let moved = drained.len();
        for item in drained {
            // Re-recorded entries ride existing windows: any marker id
            // silently consumed here is covered by a later or forced
            // checkpoint on `to` (acks prune every earlier window).
            let _ = inner.log.record(to, item)?;
        }
        Ok(moved)
    }

    /// Retires the entries on `dest` matching `pred`: they leave the log
    /// for good because the recall protocol re-delivered them directly
    /// (migrated operator state, re-routed held tuples). The migration
    /// traffic carries the exactly-once guarantee, so for the audit they
    /// count as accounted-for, like a pruned entry. Returns how many
    /// entries were retired.
    pub fn retire_matching(&self, dest: u32, pred: impl FnMut(&T) -> bool) -> Result<usize> {
        let mut inner = self.inner.lock();
        let drained = inner.log.drain_matching(dest, pred)?;
        inner.retired += drained.len() as u64;
        Ok(drained.len())
    }

    /// Number of unacknowledged entries logged for `dest`.
    pub fn unacked_len(&self, dest: u32) -> usize {
        self.inner.lock().log.unacked_len(dest)
    }

    /// Total unacknowledged entries across destinations.
    pub fn total_unacked(&self) -> usize {
        self.inner.lock().log.total_unacked()
    }

    /// The checkpoint interval.
    pub fn interval(&self) -> usize {
        self.inner.lock().log.interval()
    }

    /// Snapshot of the conservation counters.
    pub fn audit(&self) -> LogAudit {
        let inner = self.inner.lock();
        LogAudit {
            recorded: inner.recorded,
            pruned: inner.pruned,
            retired: inner.retired,
            unacked: inner.log.total_unacked() as u64,
            acks_accepted: inner.acks_accepted,
            acks_dropped: inner.acks_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(dests: usize, interval: usize) -> RecoveryLog<u64> {
        RecoveryLog::new(dests, interval).unwrap()
    }

    #[test]
    fn zero_interval_rejected() {
        assert!(RecoveryLog::<u64>::new(2, 0).is_err());
    }

    #[test]
    fn checkpoint_every_interval() {
        let mut l = log(1, 3);
        assert_eq!(l.record(0, 10).unwrap(), None);
        assert_eq!(l.record(0, 11).unwrap(), None);
        assert_eq!(
            l.record(0, 12).unwrap(),
            Some(Checkpoint { dest: 0, id: 0 })
        );
        assert_eq!(l.record(0, 13).unwrap(), None);
        assert_eq!(l.unacked_len(0), 4);
    }

    #[test]
    fn checkpoints_are_per_destination() {
        let mut l = log(2, 2);
        assert_eq!(l.record(0, 1).unwrap(), None);
        assert_eq!(l.record(1, 2).unwrap(), None);
        assert_eq!(l.record(1, 3).unwrap(), Some(Checkpoint { dest: 1, id: 0 }));
        assert_eq!(l.record(0, 4).unwrap(), Some(Checkpoint { dest: 0, id: 0 }));
    }

    #[test]
    fn acknowledge_prunes_covered_prefix() {
        let mut l = log(1, 2);
        for i in 0..6 {
            l.record(0, i).unwrap();
        }
        // Checkpoints 0 (items 0,1), 1 (items 2,3), 2 (items 4,5).
        assert_eq!(l.unacked_len(0), 6);
        assert_eq!(l.acknowledge(0, 0).unwrap(), 2);
        assert_eq!(l.unacked_len(0), 4);
        // Ack of cp 2 covers cp 1's window too.
        assert_eq!(l.acknowledge(0, 2).unwrap(), 4);
        assert_eq!(l.unacked_len(0), 0);
    }

    #[test]
    fn acknowledge_unemitted_or_duplicate_fails() {
        let mut l = log(1, 2);
        l.record(0, 1).unwrap();
        assert!(l.acknowledge(0, 0).is_err()); // not yet emitted
        l.record(0, 2).unwrap(); // emits cp 0
        assert_eq!(l.acknowledge(0, 0).unwrap(), 2);
        assert!(l.acknowledge(0, 0).is_err()); // duplicate
    }

    #[test]
    fn force_checkpoint_closes_open_window() {
        let mut l = log(1, 10);
        l.record(0, 1).unwrap();
        l.record(0, 2).unwrap();
        let cp = l.force_checkpoint(0).unwrap().unwrap();
        assert_eq!(cp.id, 0);
        assert_eq!(l.force_checkpoint(0).unwrap(), None); // window empty
        assert_eq!(l.acknowledge(0, cp.id).unwrap(), 2);
    }

    #[test]
    fn drain_all_returns_in_order_and_clears() {
        let mut l = log(1, 2);
        for i in 0..5 {
            l.record(0, i).unwrap();
        }
        l.acknowledge(0, 0).unwrap(); // prune items 0,1
        let drained = l.drain_all(0).unwrap();
        assert_eq!(drained, vec![2, 3, 4]);
        assert_eq!(l.unacked_len(0), 0);
        // After a drain the open window restarts cleanly.
        assert_eq!(l.record(0, 9).unwrap(), None);
        assert_eq!(l.record(0, 10).unwrap().unwrap().id, 2);
    }

    #[test]
    fn drain_matching_splits_correctly() {
        let mut l = log(1, 100);
        for i in 0..10 {
            l.record(0, i).unwrap();
        }
        let evens = l.drain_matching(0, |x| x % 2 == 0).unwrap();
        assert_eq!(evens, vec![0, 2, 4, 6, 8]);
        let kept: Vec<u64> = l.iter_unacked(0).copied().collect();
        assert_eq!(kept, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn drain_matching_keeps_ack_semantics_for_rest() {
        let mut l = log(1, 2);
        for i in 0..4 {
            l.record(0, i).unwrap();
        }
        // cp0 covers {0,1}, cp1 covers {2,3}.
        let _ = l.drain_matching(0, |x| *x == 1).unwrap();
        // Acking cp0 prunes the remaining item 0 only.
        assert_eq!(l.acknowledge(0, 0).unwrap(), 1);
        assert_eq!(l.unacked_len(0), 2);
    }

    #[test]
    fn unknown_destination_errors() {
        let mut l = log(1, 2);
        assert!(l.record(5, 1).is_err());
        assert!(l.acknowledge(5, 0).is_err());
        assert!(l.drain_all(5).is_err());
        assert_eq!(l.unacked_len(5), 0);
    }

    #[test]
    fn total_unacked_sums_destinations() {
        let mut l = log(3, 10);
        l.record(0, 1).unwrap();
        l.record(1, 2).unwrap();
        l.record(1, 3).unwrap();
        assert_eq!(l.total_unacked(), 3);
    }

    #[test]
    fn duplicate_ack_is_rejected_without_losing_items() {
        let mut l = log(1, 2);
        for i in 0..4 {
            l.record(0, i).unwrap();
        }
        assert_eq!(l.acknowledge(0, 0).unwrap(), 2);
        assert!(l.acknowledge(0, 0).is_err(), "duplicate ack must error");
        // The failed ack must not have pruned anything.
        assert_eq!(l.unacked_len(0), 2);
        assert_eq!(l.acknowledge(0, 1).unwrap(), 2);
    }

    #[test]
    fn out_of_order_ack_covers_skipped_windows() {
        let mut l = log(1, 2);
        for i in 0..6 {
            l.record(0, i).unwrap();
        }
        // Checkpoints 0, 1, 2 are all emitted; acking 2 directly (acks 0
        // and 1 lost in transit) prunes everything they covered.
        assert_eq!(l.acknowledge(0, 2).unwrap(), 6);
        assert_eq!(l.unacked_len(0), 0);
        // A late ack for a superseded checkpoint is stale, not a prune.
        assert!(l.acknowledge(0, 1).is_err());
    }

    #[test]
    fn ack_of_unemitted_checkpoint_is_rejected() {
        let mut l = log(1, 5);
        l.record(0, 1).unwrap();
        // No checkpoint has been emitted yet (window not full).
        assert!(l.acknowledge(0, 0).is_err());
        assert_eq!(l.unacked_len(0), 1);
    }

    #[test]
    fn drain_resets_open_window() {
        let mut l = log(1, 3);
        l.record(0, 1).unwrap();
        l.record(0, 2).unwrap();
        assert_eq!(l.drain_all(0).unwrap(), vec![1, 2]);
        // The open window was voided: the next checkpoint needs a full
        // interval of fresh records.
        assert_eq!(l.record(0, 3).unwrap(), None);
        assert_eq!(l.record(0, 4).unwrap(), None);
        assert!(l.record(0, 5).unwrap().is_some());
    }

    #[test]
    fn plain_log_audit_conserves_across_drain_and_rerecord() {
        let mut l = log(1, 2);
        for i in 0..5 {
            l.record(0, i).unwrap();
        }
        assert_eq!(l.acknowledge(0, 0).unwrap(), 2);
        assert!(l.acknowledge(0, 0).is_err()); // duplicate → dropped
        let drained = l.drain_all(0).unwrap();
        assert_eq!(drained.len(), 3);
        // Re-record the drained items (the failure-resend pattern).
        for i in drained {
            l.record(0, i).unwrap();
        }
        let audit = l.audit();
        assert_eq!(audit.recorded, 8, "5 original + 3 re-recorded");
        assert_eq!(audit.pruned, 2);
        assert_eq!(audit.retired, 3);
        assert_eq!(audit.unacked, 3);
        assert_eq!(audit.acks_accepted, 1);
        assert_eq!(audit.acks_dropped, 1);
        assert!(audit.conserved(), "not conserved: {audit:?}");
    }

    #[test]
    fn force_checkpoint_on_empty_window_is_none() {
        let mut l = log(1, 3);
        assert_eq!(l.force_checkpoint(0).unwrap(), None);
        l.record(0, 1).unwrap();
        let cp = l.force_checkpoint(0).unwrap().unwrap();
        assert_eq!(cp.dest, 0);
        assert_eq!(l.force_checkpoint(0).unwrap(), None);
    }
}

#[cfg(test)]
mod shared_tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cross_thread_record_and_ack_conserve() {
        let log = Arc::new(SharedRecoveryLog::<u64>::new(1, 5).unwrap());
        let producer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                let mut cps = Vec::new();
                for i in 0..100u64 {
                    if let Some(cp) = log.record(0, i).unwrap() {
                        cps.push(cp);
                    }
                }
                cps
            })
        };
        let cps = producer.join().unwrap();
        assert_eq!(cps.len(), 20);
        let consumer = {
            let log = Arc::clone(&log);
            std::thread::spawn(move || {
                for cp in cps {
                    assert!(matches!(
                        log.acknowledge(cp.dest, cp.id, 0),
                        AckOutcome::Accepted(_)
                    ));
                }
            })
        };
        consumer.join().unwrap();
        let audit = log.audit();
        assert!(audit.conserved(), "not conserved: {audit:?}");
        assert_eq!(audit.recorded, 100);
        assert_eq!(audit.pruned, 100);
        assert_eq!(audit.unacked, 0);
        assert_eq!(audit.acks_accepted, 20);
    }

    #[test]
    fn stale_epoch_ack_is_dropped() {
        let log = SharedRecoveryLog::<u64>::new(1, 2).unwrap();
        log.record(0, 1).unwrap();
        let cp = log.record(0, 2).unwrap().unwrap();
        assert_eq!(log.bump_epoch(), 1);
        // The ack was issued under epoch 0; after the bump it must not
        // prune anything.
        assert_eq!(log.acknowledge(cp.dest, cp.id, 0), AckOutcome::Stale);
        assert_eq!(log.total_unacked(), 2);
        // A current-epoch ack still works: the window itself survives.
        assert_eq!(log.acknowledge(cp.dest, cp.id, 1), AckOutcome::Accepted(2));
        assert!(log.audit().conserved());
    }

    #[test]
    fn duplicate_ack_is_ignored_not_fatal() {
        let log = SharedRecoveryLog::<u64>::new(1, 1).unwrap();
        let cp = log.record(0, 7).unwrap().unwrap();
        assert_eq!(log.acknowledge(0, cp.id, 0), AckOutcome::Accepted(1));
        assert_eq!(log.acknowledge(0, cp.id, 0), AckOutcome::Ignored);
        let audit = log.audit();
        assert_eq!(audit.acks_dropped, 1);
        assert!(audit.conserved());
    }

    #[test]
    fn migrate_preserves_unacked_and_later_checkpoint_covers() {
        let log = SharedRecoveryLog::<u64>::new(2, 10).unwrap();
        for i in 0..4 {
            log.record(0, i).unwrap();
        }
        // Entries 0 and 2 move to destination 1 (distribution changed).
        assert_eq!(log.migrate_matching(0, 1, |x| x % 2 == 0).unwrap(), 2);
        assert_eq!(log.unacked_len(0), 2);
        assert_eq!(log.unacked_len(1), 2);
        let audit = log.audit();
        assert_eq!(audit.recorded, 4, "migration must not double-count");
        assert!(audit.conserved());
        // The producer finishing the stream closes both open windows.
        let cp0 = log.force_checkpoint(0).unwrap().unwrap();
        let cp1 = log.force_checkpoint(1).unwrap().unwrap();
        assert!(matches!(
            log.acknowledge(0, cp0.id, 0),
            AckOutcome::Accepted(2)
        ));
        assert!(matches!(
            log.acknowledge(1, cp1.id, 0),
            AckOutcome::Accepted(2)
        ));
        assert_eq!(log.total_unacked(), 0);
        assert!(log.audit().conserved());
    }

    #[test]
    fn retire_accounts_entries_as_delivered() {
        let log = SharedRecoveryLog::<u64>::new(1, 100).unwrap();
        for i in 0..6 {
            log.record(0, i).unwrap();
        }
        assert_eq!(log.retire_matching(0, |x| *x < 4).unwrap(), 4);
        let audit = log.audit();
        assert_eq!(audit.retired, 4);
        assert_eq!(audit.unacked, 2);
        assert!(audit.conserved());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use gridq_common::check::{shrink_vec, Check, Gen};

    /// The log never loses or duplicates an item: at any point,
    /// pruned + drained + still-logged counts add up, and every
    /// recorded value is accounted for exactly once.
    #[test]
    fn conservation() {
        Check::new("recovery log conserves items").run_shrink(
            |rng| rng.vec_of(1, 200, |r| r.i64_in(0, 4) as u8),
            |ops: &Vec<u8>| shrink_vec(ops),
            |ops| {
                if ops.is_empty() {
                    return Ok(()); // shrinking may empty the op list
                }
                let mut log = RecoveryLog::<u64>::new(1, 3).unwrap();
                let mut next_item = 0u64;
                let mut emitted_cps: Vec<u64> = Vec::new();
                let mut acked_upto: Option<u64> = None;
                let mut accounted = 0usize; // pruned or drained
                for &op in ops {
                    match op {
                        0 | 1 => {
                            if let Some(cp) = log.record(0, next_item).unwrap() {
                                emitted_cps.push(cp.id);
                            }
                            next_item += 1;
                        }
                        2 => {
                            // Ack the next unacked emitted checkpoint, if any.
                            let candidate = emitted_cps
                                .iter()
                                .copied()
                                .filter(|id| acked_upto.is_none_or(|a| *id > a))
                                .min();
                            if let Some(id) = candidate {
                                accounted += log.acknowledge(0, id).unwrap();
                                acked_upto = Some(id);
                            }
                        }
                        _ => {
                            accounted += log.drain_all(0).unwrap().len();
                        }
                    }
                    if accounted + log.unacked_len(0) != next_item as usize {
                        return Err(format!(
                            "items not conserved: {} accounted + {} logged != {} recorded",
                            accounted,
                            log.unacked_len(0),
                            next_item
                        ));
                    }
                }
                Ok(())
            },
        );
    }

    /// drain_matching partitions the log: drained ∪ kept equals the
    /// previous contents with order preserved within each side.
    #[test]
    fn drain_matching_partitions() {
        Check::new("drain_matching partitions the log").run_shrink(
            |rng| rng.vec_of(0, 50, |r| r.i64_in(0, 100) as u64),
            |items: &Vec<u64>| shrink_vec(items),
            |items| {
                let mut log = RecoveryLog::<u64>::new(1, 7).unwrap();
                for &i in items {
                    log.record(0, i).unwrap();
                }
                let drained = log.drain_matching(0, |x| x % 3 == 0).unwrap();
                let kept: Vec<u64> = log.iter_unacked(0).copied().collect();
                let expect_drained: Vec<u64> =
                    items.iter().copied().filter(|x| x % 3 == 0).collect();
                let expect_kept: Vec<u64> = items.iter().copied().filter(|x| x % 3 != 0).collect();
                if drained != expect_drained {
                    return Err(format!("drained {drained:?} != {expect_drained:?}"));
                }
                if kept != expect_kept {
                    return Err(format!("kept {kept:?} != {expect_kept:?}"));
                }
                Ok(())
            },
        );
    }
}
